"""Command-line interface: run the study's experiments from a shell.

Usage::

    python -m repro.cli scan                 # one Internet-wide scan
    python -m repro.cli campaign --weeks 20  # Fig. 1/2 longitudinal study
    python -m repro.cli fingerprint          # Tables 3 and 4
    python -m repro.cli snoop --sample 300   # §2.6 utilization
    python -m repro.cli classify --set Adult # §4 pipeline for one set
    python -m repro.cli audit 1.2.3.4        # audit one resolver

Common options: ``--scale`` (1:N of the paper's Internet, default 20000)
and ``--seed``.  All output is plain text on stdout.
"""

import argparse
import os
import sys

from repro.perf import PerfRegistry
from repro.scenario import ScenarioConfig, build_scenario


def _positive_int(text):
    """Argparse type for knobs that must be strictly positive.

    Rejecting at parse time turns ``--probe-batch 0`` into a one-line
    usage error instead of a deep traceback out of the scan core.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not an integer" % text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "must be a positive integer (got %d)" % value)
    return value


def _non_negative_int(text):
    """Argparse type for count knobs where zero is meaningful
    (``--retries 0`` is the single-probe fast path) but negatives are
    nonsense."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not an integer" % text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be a non-negative integer (got %d)" % value)
    return value


def _positive_float(text):
    """Argparse type for strictly positive real-valued knobs.

    Rejects zero, negatives, and NaN: a ``--probe-timeout 0`` would
    otherwise time out every probe instantly and report an empty
    Internet with a straight face.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not a number" % text)
    if not value > 0:  # also catches NaN, which fails every comparison
        raise argparse.ArgumentTypeError(
            "must be a positive number (got %r)" % text)
    return value


def _fraction(text):
    """Argparse type for (0, 1) shares (audit fraction, drift budget)."""
    value = _positive_float(text)
    if value >= 1:
        raise argparse.ArgumentTypeError(
            "must be a positive fraction below 1 (got %r)" % text)
    return value


def _store_dir(text):
    """Argparse type for the observatory store directory.

    The directory need not exist yet (ingest creates it), but a path to
    an existing *file* is rejected here rather than as an OSError out of
    the generation writer.
    """
    if not text or not text.strip():
        raise argparse.ArgumentTypeError("store directory must be "
                                         "a non-empty path")
    if os.path.exists(text) and not os.path.isdir(text):
        raise argparse.ArgumentTypeError(
            "%r exists and is not a directory" % text)
    return text


def _endpoint(text):
    """Argparse type for ``host:port`` listen addresses.

    Returns ``(host, port)``; port 0 is allowed (the OS picks a free
    port — useful under test), anything outside 0-65535 is not.
    """
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            "%r is not host:port (e.g. 127.0.0.1:8053)" % text)
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "%r has a non-integer port" % text)
    if not 0 <= port <= 65535:
        raise argparse.ArgumentTypeError(
            "port must be 0-65535 (got %d)" % port)
    return (host, port)


def _add_common(parser):
    parser.add_argument("--scale", type=int, default=20000,
                        help="1:N scale of the simulated Internet")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=_positive_int, default=1,
                        help="scan worker processes (fork-based)")
    parser.add_argument("--pipeline-shards", type=_positive_int,
                        default=1, metavar="N",
                        help="worker processes for the classification "
                             "pipeline's domain scan (classify/audit/"
                             "fullstudy)")
    parser.add_argument("--perf", action="store_true",
                        help="print a throughput report to stderr")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault plan: a profile name "
                             "(none/mild/aggressive) plus overrides, "
                             "e.g. 'aggressive,loss_rate=0.2,kill=0'")
    parser.add_argument("--retries", type=_non_negative_int, default=0,
                        help="probe retransmissions per unanswered "
                             "target (exponential backoff)")
    parser.add_argument("--probe-timeout", type=_positive_float,
                        default=None,
                        metavar="SEC",
                        help="base per-probe response timeout; grows "
                             "with backoff, floored at the target's "
                             "round-trip estimate")
    parser.add_argument("--probe-batch", type=_positive_int, default=4096,
                        metavar="N",
                        help="targets per columnar scan batch (bulk "
                             "triage granularity; results are "
                             "batch-size independent)")
    parser.add_argument("--stream-results", action="store_true",
                        help="stream per-shard results as fixed-size "
                             "chunks spilled through the snapshot store "
                             "instead of holding whole-shard frames "
                             "(memory bounded by chunk size; results "
                             "are bit-identical)")
    parser.add_argument("--lazy-population", action="store_true",
                        help="materialize resolver nodes on first probe "
                             "from compact per-pool specs instead of "
                             "building every node up front (memory "
                             "bounded by --node-cache)")
    parser.add_argument("--node-cache", type=_positive_int, default=8192,
                        metavar="N",
                        help="live materialized nodes kept per worker "
                             "under --lazy-population (LRU-evicted "
                             "beyond this)")
    parser.add_argument("--backoff", type=float, default=2.0,
                        metavar="FACTOR",
                        help="retransmission timeout growth factor "
                             "(each retry waits FACTOR times longer)")
    parser.add_argument("--pacing", choices=("off", "adaptive"),
                        default="off",
                        help="probe-rate controller: 'adaptive' runs an "
                             "AIMD rate per /16 window with a circuit "
                             "breaker against defensive middleboxes")
    parser.add_argument("--max-pps", type=float, default=None,
                        metavar="PPS",
                        help="declared probe-rate ceiling; also the "
                             "adaptive controller's upper bound")


def _add_delta(parser):
    parser.add_argument("--delta", action="store_true",
                        help="differential campaign: carry the prior "
                             "week's verdicts in stable prefixes, "
                             "re-probe only churn-forecast prefixes, "
                             "audit a seeded sample of carried data, "
                             "and escalate to full sweeps on drift")
    parser.add_argument("--audit-fraction", type=_fraction, default=None,
                        metavar="SHARE",
                        help="share of carried-forward responders "
                             "re-verified by audit probes each delta "
                             "week (default 0.05)")
    parser.add_argument("--drift-budget", type=_fraction, default=None,
                        metavar="SHARE",
                        help="audited failure share beyond which a "
                             "window (or, in aggregate, the whole "
                             "campaign) escalates to a full sweep "
                             "(default 0.1)")
    parser.add_argument("--full-sweep-every", type=_positive_int,
                        default=None, metavar="WEEKS",
                        help="scheduled full-sweep re-baselining "
                             "interval under --delta (default 4)")


def _delta_arg(args):
    """The --delta flag family as a new_campaign keyword value."""
    if args is None or not getattr(args, "delta", False):
        return {"delta": None}
    from repro.scanner import normalize_delta
    return {"delta": normalize_delta(
        True, audit_fraction=getattr(args, "audit_fraction", None),
        drift_budget=getattr(args, "drift_budget", None),
        full_sweep_every=getattr(args, "full_sweep_every", None))}


def _add_trace(parser):
    parser.add_argument("--trace", action="store_true",
                        help="record spans and wire-level flight events "
                             "(see 'repro trace' for rendering)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="trace export path (JSONL; implies --trace; "
                             "default trace.jsonl)")


def _install_obs(args, scenario):
    """Attach the observability bundle when tracing was requested."""
    if not (getattr(args, "trace", False)
            or getattr(args, "trace_out", None)):
        return None
    from repro.obs import Observability
    obs = Observability(clock=scenario.network.clock, seed=args.seed)
    obs.install(scenario.network)
    return obs


def _export_trace(args, obs, perf=None):
    """Write the recorded trace (also on the injected-crash path, so a
    crashed run's partial trace survives for inspection)."""
    if obs is None:
        return
    path = getattr(args, "trace_out", None) or "trace.jsonl"
    meta = {"command": args.command, "scale": args.scale,
            "seed": args.seed}
    spans, events = obs.export(path, perf=perf, meta=meta)
    print("trace: %d spans, %d flight events written to %s"
          % (spans, events, path), file=sys.stderr)


def _add_checkpoint(parser):
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="directory for the crash-safe write-ahead "
                             "journal and per-unit snapshots; completed "
                             "weeks/stages/shards are committed durably "
                             "as they finish")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted run from "
                             "--checkpoint-dir, re-entering at the "
                             "first incomplete unit of work")


def _open_checkpoint(args, scenario, perf, extra_meta=None):
    """Build the CheckpointedRun for this command, or ``None``."""
    directory = getattr(args, "checkpoint_dir", None)
    if not directory:
        if getattr(args, "resume", False):
            raise SystemExit("--resume requires --checkpoint-dir")
        return None
    from repro.checkpoint import CheckpointedRun
    meta = {"command": args.command, "scale": args.scale,
            "seed": args.seed, "shards": args.shards,
            "faults": getattr(args, "faults", None) or None}
    meta.update(extra_meta or {})
    checkpoint = CheckpointedRun(
        directory, meta=meta, resume=getattr(args, "resume", False),
        fault_plan=getattr(scenario.network, "faults", None), perf=perf)
    if checkpoint.provenance["journal_records_replayed"] or \
            checkpoint.provenance["journal_records_quarantined"]:
        print("checkpoint: replayed %d journal records "
              "(%d quarantined) from %s"
              % (checkpoint.provenance["journal_records_replayed"],
                 checkpoint.provenance["journal_records_quarantined"],
                 directory), file=sys.stderr)
    return checkpoint


def _finish_checkpoint(checkpoint, crashed=None):
    """Write provenance and report the run's durability outcome."""
    if checkpoint is None:
        return 0
    from repro.reporting import format_resume_provenance
    path = checkpoint.write_provenance()
    if crashed is not None:
        print("injected crash: %s (checkpoint preserved in %s; "
              "rerun with --resume)" % (crashed, checkpoint.directory),
              file=sys.stderr)
    print(format_resume_provenance(checkpoint.provenance),
          file=sys.stderr)
    print("checkpoint provenance written to %s" % path, file=sys.stderr)
    checkpoint.close()
    if crashed is not None:
        from repro.faults import CRASH_EXIT_CODE
        return CRASH_EXIT_CODE
    return 0


def _build(args):
    print("building 1:%d world (seed %d)..." % (args.scale, args.seed),
          file=sys.stderr)
    scenario = build_scenario(ScenarioConfig(
        scale=args.scale, seed=args.seed,
        lazy_population=getattr(args, "lazy_population", False),
        node_cache=getattr(args, "node_cache", 8192)))
    if getattr(args, "faults", None):
        from repro.faults import FaultPlan, parse_fault_spec
        plan = FaultPlan(parse_fault_spec(args.faults), seed=args.seed)
        scenario.network.install_faults(plan)
        print("fault plan: %r" % plan, file=sys.stderr)
    return scenario


def _perf_registry(args):
    return PerfRegistry() if getattr(args, "perf", False) else None


def _report_perf(args, perf):
    if perf is not None:
        print(perf.format_report("perf %s" % args.command),
              file=sys.stderr)


def _pacing_arg(args):
    """The --pacing/--max-pps pair as new_campaign keyword values."""
    if args is None:
        return {"pacing": None, "max_pps": None}
    pacing = getattr(args, "pacing", "off")
    return {"pacing": None if pacing in (None, "off") else pacing,
            "max_pps": getattr(args, "max_pps", None)}


def _check_shards(scenario, shards):
    """Reject shard counts the target space cannot cover.

    A shard with zero targets would fork a worker for nothing; worse,
    the error would surface as a confusing range assertion deep in the
    engine instead of at the flag that caused it.
    """
    targets = len(scenario.target_space())
    if shards > targets:
        raise SystemExit(
            "error: --shards %d exceeds the %d scan targets at this "
            "scale; use at most one shard per target" % (shards, targets))


def _scan(scenario, args=None, perf=None):
    shards = getattr(args, "shards", 1) if args is not None else 1
    _check_shards(scenario, shards)
    campaign = scenario.new_campaign(
        verify=False, shards=shards, perf=perf,
        retries=getattr(args, "retries", 0) if args is not None else 0,
        probe_timeout=(getattr(args, "probe_timeout", None)
                       if args is not None else None),
        backoff=(getattr(args, "backoff", 2.0)
                 if args is not None else 2.0),
        probe_batch=(getattr(args, "probe_batch", 4096)
                     if args is not None else 4096),
        stream_results=(getattr(args, "stream_results", False)
                        if args is not None else False),
        **_pacing_arg(args))
    return campaign.run_week()


def cmd_scan(args):
    scenario = _build(args)
    perf = _perf_registry(args)
    obs = _install_obs(args, scenario)
    snapshot = _scan(scenario, args, perf)
    counts = snapshot.result.counts()
    print("probes sent:      %d" % snapshot.result.probes_sent)
    print("responders:       %d" % counts["all"])
    print("  NOERROR:        %d" % counts["noerror"])
    print("  REFUSED:        %d" % counts["refused"])
    print("  SERVFAIL:       %d" % counts["servfail"])
    print("divergent source: %d" % len(snapshot.result.divergent_sources))
    if snapshot.result.retransmissions:
        print("retransmissions:  %d" % snapshot.result.retransmissions)
    degraded = snapshot.result.degraded_shards
    if degraded:
        print("degraded shards:  %d" % len(degraded))
    if snapshot.result.suppressed:
        print("suppressed:       %d targets (pacing gave windows up)"
              % snapshot.result.suppressed_targets)
    _report_perf(args, perf)
    _export_trace(args, obs, perf)
    return 0


def cmd_campaign(args):
    from repro.analysis.churn import churn_survival, format_survival
    from repro.analysis.magnitude import (
        decline_ratio,
        format_series,
        magnitude_series,
    )
    from repro.faults import InjectedCrash
    scenario = _build(args)
    perf = _perf_registry(args)
    checkpoint = _open_checkpoint(args, scenario, perf,
                                  extra_meta={"weeks": args.weeks})
    obs = _install_obs(args, scenario)
    _check_shards(scenario, args.shards)
    campaign = scenario.new_campaign(verify=False, shards=args.shards,
                                     perf=perf, retries=args.retries,
                                     probe_timeout=args.probe_timeout,
                                     backoff=args.backoff,
                                     probe_batch=args.probe_batch,
                                     stream_results=args.stream_results,
                                     **_pacing_arg(args),
                                     **_delta_arg(args))
    try:
        campaign.run(args.weeks, checkpoint=checkpoint)
    except InjectedCrash as crash:
        _export_trace(args, obs, perf)
        return _finish_checkpoint(checkpoint, crashed=crash)
    series = magnitude_series(campaign.snapshots)
    print(format_series(series))
    print("decline ratio: %.2f" % decline_ratio(series))
    print()
    print(format_survival(churn_survival(campaign.snapshots)))
    if campaign.delta is not None:
        from repro.scanner.delta import delta_summary
        totals = delta_summary(campaign.snapshots)
        print()
        print("delta: %d delta weeks / %d full sweeps, %d verdicts "
              "carried, %d audited (%d failed), %d refreshed, "
              "%d window escalations, %d global escalations"
              % (totals["delta_weeks"], totals["full_weeks"],
                 totals["carried"], totals["audited"],
                 totals["audit_failures"], totals["refreshed"],
                 totals["escalated_windows"],
                 totals["global_escalations"]))
    _report_perf(args, perf)
    _export_trace(args, obs, perf)
    return _finish_checkpoint(checkpoint)


def cmd_fingerprint(args):
    from repro.analysis.devices import device_table, format_device_table
    from repro.analysis.software import (
        format_software_table,
        software_table,
    )
    from repro.scanner import (
        BannerGrabber,
        ChaosScanner,
        FingerprintMatcher,
    )
    scenario = _build(args)
    resolvers = sorted(_scan(scenario, args).result.noerror)
    chaos = ChaosScanner(scenario.network, scenario.scanner_ip)
    print(format_software_table(software_table(chaos.scan(resolvers))))
    print()
    grabber = BannerGrabber(scenario.network, scenario.scanner_ip)
    classifications = FingerprintMatcher().classify_all(
        grabber.grab_all(resolvers))
    print(format_device_table(device_table(classifications,
                                           total_scanned=len(resolvers))))
    return 0


def cmd_snoop(args):
    from repro.analysis.utilization import (
        format_utilization,
        utilization_summary,
    )
    from repro.datasets import SNOOPING_TLDS
    from repro.scanner import CacheSnoopingProber
    scenario = _build(args)
    resolvers = sorted(_scan(scenario, args).result.noerror)[:args.sample]
    prober = CacheSnoopingProber(scenario.network, scenario.scanner_ip,
                                 SNOOPING_TLDS,
                                 duration_hours=args.hours)
    print(format_utilization(utilization_summary(prober.run(resolvers))))
    return 0


def cmd_classify(args):
    from collections import Counter
    from repro.datasets import ALL_CATEGORIES, DOMAIN_SETS
    if args.set not in DOMAIN_SETS:
        print("unknown domain set %r; choose from: %s"
              % (args.set, ", ".join(ALL_CATEGORIES)), file=sys.stderr)
        return 2
    scenario = _build(args)
    perf = _perf_registry(args)
    resolvers = sorted(_scan(scenario, args, perf).result.noerror)
    pipeline = scenario.new_pipeline(
        shards=args.pipeline_shards, perf=perf,
        stream_observations=args.stream_results)
    report = pipeline.run(resolvers, list(DOMAIN_SETS[args.set]))
    stats = report.prefilter.stats()
    print("domain set:    %s" % args.set)
    print("observations:  %d" % stats["observations"])
    print("legitimate:    %.1f%%" % (100 * stats["legitimate_share"]))
    print("empty answers: %.1f%%" % (100 * stats["empty_share"]))
    print("unexpected:    %.1f%%" % (100 * stats["unknown_share"]))
    print("clusters:      %d" % len(report.clusters))
    for (label, sublabel), count in Counter(
            (l.label, l.sublabel) for l in report.labeled).most_common():
        name = label if not sublabel else "%s (%s)" % (label, sublabel)
        print("  %-36s %d" % (name, count))
    print("classified:    %.1f%%" % (100 * report.classified_share()))
    _report_perf(args, perf)
    return 0


def cmd_audit(args):
    from collections import Counter
    from repro.datasets import DOMAIN_SETS
    scenario = _build(args)
    resolver_ip = args.resolver
    if scenario.network.node_at(resolver_ip) is None:
        # Pick an actual resolver when the requested address is empty
        # (addresses differ per seed/scale).
        resolver_ip = scenario.online_resolver_ips()[0]
        print("no host at %s; auditing %s instead"
              % (args.resolver, resolver_ip), file=sys.stderr)
    domains = (list(DOMAIN_SETS["Banking"]) + list(DOMAIN_SETS["Alexa"])
               + list(DOMAIN_SETS["Adult"]) + list(DOMAIN_SETS["Gambling"])
               + list(DOMAIN_SETS["NX"]))
    pipeline = scenario.new_pipeline(
        shards=args.pipeline_shards,
        stream_observations=args.stream_results)
    report = pipeline.run([resolver_ip], domains)
    labels = Counter((l.label, l.sublabel) for l in report.labeled)
    print("resolver:   %s" % resolver_ip)
    print("responses:  %d" % report.observation_count)
    print("suspicious: %d tuples" % len(report.prefilter.unknown))
    if not labels:
        print("verdict:    CLEAN")
    else:
        print("verdict:    MANIPULATING")
        for (label, sublabel), count in labels.most_common():
            name = label if not sublabel else "%s/%s" % (label, sublabel)
            print("  %-30s x%d" % (name, count))
    return 0


def cmd_fullstudy(args):
    from repro.faults import InjectedCrash
    from repro.reporting import render_markdown, run_full_study
    scenario = _build(args)
    perf = _perf_registry(args)
    checkpoint = _open_checkpoint(
        args, scenario, perf,
        extra_meta={"weeks": args.weeks,
                    "snoop_sample": args.snoop_sample,
                    "pipeline_shards": args.pipeline_shards})
    obs = _install_obs(args, scenario)
    _check_shards(scenario, args.shards)
    try:
        results = run_full_study(
            scenario, weeks=args.weeks, snoop_sample=args.snoop_sample,
            pipeline_shards=args.pipeline_shards, shards=args.shards,
            checkpoint=checkpoint, perf=perf, backoff=args.backoff,
            progress=lambda message: print(message, file=sys.stderr),
            **_pacing_arg(args), **_delta_arg(args))
    except InjectedCrash as crash:
        _export_trace(args, obs, perf)
        return _finish_checkpoint(checkpoint, crashed=crash)
    report = render_markdown(results, scenario=scenario)
    if args.out:
        # Atomic replace: a crash mid-write must never leave a torn
        # report where a complete one (from a previous run) stood.
        from repro.checkpoint import atomic_write_text
        atomic_write_text(args.out, report + "\n")
        print("report written to %s" % args.out, file=sys.stderr)
    else:
        print(report)
    _report_perf(args, perf)
    _export_trace(args, obs, perf)
    return _finish_checkpoint(checkpoint)


def cmd_trace(args):
    from repro.obs import (TraceSchemaError, read_trace,
                           render_trace_report, validate_trace)
    try:
        records = read_trace(args.file)
        summary = validate_trace(records)
    except (OSError, TraceSchemaError) as error:
        print("invalid trace: %s" % error, file=sys.stderr)
        return 2
    if args.validate_only:
        print("valid trace: %d spans, %d flight events, "
              "%d losses (%d attributed)"
              % (summary["spans"], summary["flight_events"],
                 summary["losses"], summary["losses_attributed"]))
        return 0
    print(render_trace_report(records))
    return 0


def _open_store(args, create=False):
    from repro.observatory import ObservatoryError, ResolverStore
    try:
        if create:
            return ResolverStore.open_or_create(args.store_dir)
        return ResolverStore.open(args.store_dir)
    except ObservatoryError as error:
        raise SystemExit("error: %s" % error)


def _observe_geo(args):
    """Geography enrichment for ingest, rebuilt from the checkpoint's
    own recorded scale/seed — the scenario's prefix->country/AS mapping
    is deterministic, so this is the world the campaign scanned."""
    if getattr(args, "no_geo", False):
        return None
    from repro.checkpoint import CheckpointFeed
    from repro.observatory import scenario_geo
    meta = CheckpointFeed(args.source).meta
    scale, seed = meta.get("scale"), meta.get("seed")
    if not scale or seed is None:
        print("observe: checkpoint meta lacks scale/seed; "
              "skipping geography", file=sys.stderr)
        return None
    print("building 1:%d world (seed %d) for geography..."
          % (scale, seed), file=sys.stderr)
    scenario = build_scenario(ScenarioConfig(scale=scale, seed=seed))
    return scenario_geo(scenario)


def _observe_tracer(args):
    if not (getattr(args, "trace", False)
            or getattr(args, "trace_out", None)):
        return None
    from repro.obs import Tracer
    return Tracer(seed=getattr(args, "seed", None))


def _export_observe_trace(args, tracer, perf):
    if tracer is None:
        return
    from repro.obs import export_trace
    path = getattr(args, "trace_out", None) or "trace.jsonl"
    meta = {"command": "observe-%s" % args.observe_command}
    spans, events = export_trace(path, tracer=tracer, perf=perf,
                                 meta=meta)
    print("trace: %d spans, %d flight events written to %s"
          % (spans, events, path), file=sys.stderr)


def _ingest_once(store, args, geo, perf, tracer):
    from repro.observatory import ingest_checkpoint
    report = ingest_checkpoint(store, args.source, geo=geo, perf=perf,
                               tracer=tracer)
    if report.changed():
        print("ingest: folded %d units (%d weeks, %d fingerprints, "
              "%d verdicts) -> generation %s"
              % (report.units_folded, len(report.weeks_folded),
                 report.fingerprints, report.verdicts,
                 report.generation), file=sys.stderr)
    else:
        print("ingest: nothing new (%d units already folded)"
              % report.units_skipped, file=sys.stderr)
    return report


def cmd_observe_ingest(args):
    import time
    if not os.path.isdir(args.source):
        raise SystemExit("error: no checkpoint directory at %s"
                         % args.source)
    store = _open_store(args, create=True)
    geo = _observe_geo(args)
    perf = _perf_registry(args)
    tracer = _observe_tracer(args)
    try:
        _ingest_once(store, args, geo, perf, tracer)
        while args.watch:
            time.sleep(args.ingest_poll)
            _ingest_once(store, args, geo, perf, tracer)
    except KeyboardInterrupt:
        pass
    print("store: %d resolvers, %d weeks, generation %d in %s"
          % (len(store), len(store.weeks()), store.generation,
             args.store_dir))
    _report_perf(args, perf)
    _export_observe_trace(args, tracer, perf)
    return 0


def cmd_observe_lookup(args):
    import json
    from repro.observatory import Observatory
    store = _open_store(args)
    try:
        record = Observatory(store).lookup(args.resolver)
    except ValueError as error:
        raise SystemExit("error: %s" % error)
    if record is None:
        print("unknown resolver %s" % args.resolver, file=sys.stderr)
        return 1
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def cmd_observe_rankings(args):
    from repro.analysis.geography import format_fluctuation
    from repro.observatory import Observatory
    observatory = Observatory(_open_store(args))
    try:
        rows, top_share = observatory.country_rankings(top=args.top)
    except LookupError as error:
        raise SystemExit("error: %s" % error)
    print(format_fluctuation(rows, "Country"))
    print("top %d countries: %.1f%% of first-scan resolvers"
          % (len(rows), top_share))
    print()
    print(format_fluctuation(observatory.rir_rankings(), "RIR"))
    return 0


def cmd_observe_survival(args):
    from repro.analysis.churn import format_survival
    from repro.observatory import Observatory
    observatory = Observatory(_open_store(args))
    print(format_survival(observatory.survival()))
    return 0


def cmd_observe_timeline(args):
    from repro.observatory import Observatory
    observatory = Observatory(_open_store(args))
    try:
        rows = observatory.timeline(args.prefix)
    except ValueError as error:
        raise SystemExit("error: %s" % error)
    print("week  responders      new     gone  mode   carried")
    for row in rows:
        print("%4d  %10d %8d %8d  %-5s %8d"
              % (row["week"], row["responders"], row["new"],
                 row["gone"], row["mode"], row["carried"]))
    return 0


def cmd_observe_stats(args):
    import json
    from repro.observatory import Observatory
    print(json.dumps(Observatory(_open_store(args)).stats(),
                     indent=2, sort_keys=True))
    return 0


def cmd_observe_serve(args):
    import time
    from repro.observatory import Observatory, ObservatoryServer
    if args.source and not os.path.isdir(args.source):
        raise SystemExit("error: no checkpoint directory at %s"
                         % args.source)
    store = _open_store(args, create=bool(args.source))
    perf = PerfRegistry()
    tracer = _observe_tracer(args)
    geo = _observe_geo(args) if args.source else None
    observatory = Observatory(store, perf=perf, tracer=tracer)
    if args.source:
        _ingest_once(store, args, geo, perf, tracer)
    host, port = args.listen
    server = ObservatoryServer(observatory, host=host, port=port)
    server.start()
    print("observatory: %d resolvers, %d weeks; listening on %s"
          % (len(store), len(store.weeks()), server.url),
          file=sys.stderr)
    try:
        while True:
            time.sleep(args.ingest_poll)
            if args.source:
                with server.lock:
                    _ingest_once(store, args, geo, perf, tracer)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    _export_observe_trace(args, tracer, perf)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Going Wild: Large-Scale "
                    "Classification of Open DNS Resolvers' (IMC 2015)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    scan = subparsers.add_parser("scan", help="one Internet-wide scan")
    _add_common(scan)
    _add_trace(scan)
    scan.set_defaults(func=cmd_scan)

    campaign = subparsers.add_parser("campaign",
                                     help="weekly scan campaign")
    _add_common(campaign)
    _add_checkpoint(campaign)
    _add_trace(campaign)
    _add_delta(campaign)
    campaign.add_argument("--weeks", type=int, default=12)
    campaign.set_defaults(func=cmd_campaign)

    fingerprint = subparsers.add_parser(
        "fingerprint", help="software + device fingerprinting")
    _add_common(fingerprint)
    fingerprint.set_defaults(func=cmd_fingerprint)

    snoop = subparsers.add_parser("snoop", help="cache-snooping survey")
    _add_common(snoop)
    snoop.add_argument("--sample", type=int, default=250)
    snoop.add_argument("--hours", type=int, default=36)
    snoop.set_defaults(func=cmd_snoop)

    classify = subparsers.add_parser(
        "classify", help="manipulation pipeline for one domain set")
    _add_common(classify)
    classify.add_argument("--set", default="Banking")
    classify.set_defaults(func=cmd_classify)

    fullstudy = subparsers.add_parser(
        "fullstudy", help="run every experiment, emit one report")
    _add_common(fullstudy)
    _add_checkpoint(fullstudy)
    _add_trace(fullstudy)
    _add_delta(fullstudy)
    fullstudy.add_argument("--weeks", type=int, default=20)
    fullstudy.add_argument("--snoop-sample", type=int, default=200)
    fullstudy.add_argument("--out", default=None)
    fullstudy.set_defaults(func=cmd_fullstudy)

    audit = subparsers.add_parser("audit", help="audit one resolver")
    _add_common(audit)
    audit.add_argument("resolver")
    audit.set_defaults(func=cmd_audit)

    trace = subparsers.add_parser(
        "trace", help="validate and render an exported trace")
    trace.add_argument("file", help="JSONL trace from --trace-out")
    trace.add_argument("--validate-only", action="store_true",
                       help="schema-check the trace and print a summary "
                            "instead of the full report")
    trace.set_defaults(func=cmd_trace)

    observe = subparsers.add_parser(
        "observe", help="resident query plane over campaign results")
    observe_sub = observe.add_subparsers(dest="observe_command",
                                         required=True)

    def _observe_store_arg(sub):
        sub.add_argument("--store-dir", type=_store_dir, required=True,
                         metavar="DIR",
                         help="observatory store directory "
                              "(MANIFEST.json + generations)")

    def _observe_source_args(sub, required):
        sub.add_argument("--from", dest="source", required=required,
                         default=None, metavar="DIR",
                         help="campaign/fullstudy --checkpoint-dir "
                              "whose journal to tail")
        sub.add_argument("--ingest-poll", type=_positive_float,
                         default=2.0, metavar="SEC",
                         help="seconds between journal polls "
                              "(--watch / serve)")
        sub.add_argument("--no-geo", action="store_true",
                         help="skip geography enrichment (no world "
                              "rebuild; records show ??/???)")

    ingest = observe_sub.add_parser(
        "ingest", help="fold a checkpoint journal into the store")
    _observe_store_arg(ingest)
    _observe_source_args(ingest, required=True)
    ingest.add_argument("--watch", action="store_true",
                        help="keep polling the journal for new commits "
                             "until interrupted")
    ingest.add_argument("--perf", action="store_true",
                        help="print a throughput report to stderr")
    _add_trace(ingest)
    ingest.set_defaults(func=cmd_observe_ingest)

    lookup = observe_sub.add_parser(
        "lookup", help="one resolver's record as JSON")
    _observe_store_arg(lookup)
    lookup.add_argument("resolver", help="dotted-quad resolver address")
    lookup.set_defaults(func=cmd_observe_lookup)

    rankings = observe_sub.add_parser(
        "rankings", help="Table 1/2 fluctuation rankings from the store")
    _observe_store_arg(rankings)
    rankings.add_argument("--top", type=_positive_int, default=10,
                          help="countries to rank (Table 1 rows)")
    rankings.set_defaults(func=cmd_observe_rankings)

    survival = observe_sub.add_parser(
        "survival", help="Figure 2 cohort survival from the store")
    _observe_store_arg(survival)
    survival.set_defaults(func=cmd_observe_survival)

    timeline = observe_sub.add_parser(
        "timeline", help="week-by-week churn inside one CIDR prefix")
    _observe_store_arg(timeline)
    timeline.add_argument("prefix", help="CIDR prefix, e.g. 10.8.0.0/16")
    timeline.set_defaults(func=cmd_observe_timeline)

    stats = observe_sub.add_parser(
        "stats", help="store facts as JSON")
    _observe_store_arg(stats)
    stats.set_defaults(func=cmd_observe_stats)

    serve = observe_sub.add_parser(
        "serve", help="embedded HTTP/JSON API over the store")
    _observe_store_arg(serve)
    _observe_source_args(serve, required=False)
    serve.add_argument("--listen", type=_endpoint,
                       default=("127.0.0.1", 8053), metavar="HOST:PORT",
                       help="listen address (port 0: OS-assigned)")
    _add_trace(serve)
    serve.set_defaults(func=cmd_observe_serve)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
