"""Invariants of the built scenario world (session-scoped small build)."""

import pytest

from repro.datasets import (
    DOMAIN_SETS,
    GROUND_TRUTH_DOMAIN,
    MEASUREMENT_DOMAIN,
    all_domains,
)
from repro.netsim.gfw import GreatFirewall
from repro.scenario import COUNTRY_PLAN, ScenarioConfig, build_scenario
from repro.websim.pages import CENSOR_COUNTRIES


class TestDomainSets:
    def test_paper_category_sizes(self):
        sizes = {category: len(domains)
                 for category, domains in DOMAIN_SETS.items()}
        assert sizes == {
            "Ads": 9, "Adult": 4, "Alexa": 20, "Antivirus": 15,
            "Banking": 20, "Dating": 3, "Filesharing": 5, "Gambling": 4,
            "Malware": 13, "MX": 13, "NX": 21, "Tracking": 5, "Misc": 22,
        }

    def test_total_with_ground_truth_is_155(self):
        assert len(all_domains()) + 1 == 155

    def test_no_duplicate_domains(self):
        names = [d.name for d in all_domains()]
        assert len(names) == len(set(names))

    def test_nx_domains_flagged(self):
        for domain in DOMAIN_SETS["NX"]:
            assert not domain.exists

    def test_mx_domains_are_mail(self):
        for domain in DOMAIN_SETS["MX"]:
            assert domain.kind == "mail"

    def test_paper_named_domains_present(self):
        names = {d.name for d in all_domains()}
        for name in ("irc.zief.pl", "kickass.to", "thepiratebay.se",
                     "match.com", "bet-at-home.com", "rswkllf.twitter.com",
                     "amason.com", "ghoogle.com", "wikipeida.org",
                     "rotten.com", "wikileaks.org", "okcupid.com",
                     "adultfinder.com", "youporn.com", "blogspot.com",
                     "torproject.org", "paypal.com", "alipay.com"):
            assert name in names, name


class TestCountryPlan:
    def test_top10_matches_table1(self):
        top10 = [(c, n) for c, n, __ in COUNTRY_PLAN[:10]]
        assert top10 == [
            ("US", 2958640), ("CN", 2418949), ("TR", 1439736),
            ("VN", 1393618), ("MX", 1372934), ("IN", 1269714),
            ("TH", 1214042), ("IT", 1172001), ("CO", 1062080),
            ("TW", 1061218)]

    def test_table1_changes(self):
        changes = {c: delta for c, __, delta in COUNTRY_PLAN}
        assert changes["US"] == pytest.approx(-0.142)
        assert changes["IN"] == pytest.approx(+0.127)
        assert changes["TW"] == pytest.approx(-0.573)
        assert changes["AR"] == pytest.approx(-0.750)
        assert changes["MY"] == pytest.approx(+0.597)
        assert changes["LB"] == pytest.approx(+0.767)

    def test_total_near_paper(self):
        total = sum(count for __, count, __d in COUNTRY_PLAN)
        assert 25e6 < total < 30e6

    def test_top10_share_near_491(self):
        total = sum(count for __, count, __d in COUNTRY_PLAN)
        top10 = sum(count for __, count, __d in COUNTRY_PLAN[:10])
        assert 0.45 < top10 / total < 0.53


class TestBuiltWorld:
    def test_population_scaled(self, small_scenario):
        expected = sum(count for __, count, __d in COUNTRY_PLAN) \
            / small_scenario.config.scale
        built = len(small_scenario.population.resolvers)
        assert built == pytest.approx(expected, rel=0.6)

    def test_every_existing_web_domain_resolvable(self, small_scenario):
        scenario = small_scenario
        missing = []
        for domain in all_domains():
            if not domain.exists or domain.kind != "web":
                continue
            if domain.category == "Malware":
                continue  # deliberately dead/sinkholed/parked
            result = scenario.service.resolve_trusted(scenario.network,
                                                      domain.name)
            if result.rcode != 0 or not result.addresses:
                missing.append(domain.name)
        assert not missing

    def test_ground_truth_domain_resolves(self, small_scenario):
        result = small_scenario.service.resolve_trusted(
            small_scenario.network, GROUND_TRUTH_DOMAIN)
        assert result.addresses

    def test_measurement_domain_wildcard(self, small_scenario):
        result = small_scenario.service.resolve_trusted(
            small_scenario.network, "r123.00010203." + MEASUREMENT_DOMAIN)
        assert result.addresses

    def test_gfw_installed_over_cn(self, small_scenario):
        gfw = small_scenario.gfw
        assert isinstance(gfw, GreatFirewall)
        assert gfw.censors_name("facebook.com")
        cn_resolvers = small_scenario.population.by_country["CN"]
        inside = sum(1 for node in cn_resolvers if gfw._inside(node.ip))
        assert inside / len(cn_resolvers) > 0.8

    def test_landing_pages_for_all_censor_countries(self, small_scenario):
        assert set(small_scenario.landing_ips) == set(CENSOR_COUNTRIES)
        for ips in small_scenario.landing_ips.values():
            assert len(ips) == \
                small_scenario.config.landing_ips_per_country

    def test_case_study_groups_nonempty(self, small_scenario):
        groups = small_scenario.case_study_resolvers
        for name in ("ad_inject", "phish_paypal", "proxy_http",
                     "malware", "mail_banner_copy"):
            assert groups[name], name

    def test_case_study_resolvers_not_forwarders(self):
        # A forwarding proxy relays queries verbatim: behaviors stuck on
        # it would never fire, silently shrinking the case studies.
        # (Fresh scenario: the session fixture may have churned IPs.)
        scenario = build_scenario(ScenarioConfig(scale=60000, seed=23))
        nodes = {node.ip: node
                 for node in scenario.population.resolvers}
        for name, ips in scenario.case_study_resolvers.items():
            for ip in ips:
                node = nodes.get(ip)
                assert node is not None and node.forward_to is None, \
                    (name, ip)

    def test_mail_hostnames_resolve_to_mail_servers(self, small_scenario):
        scenario = small_scenario
        result = scenario.service.resolve_trusted(scenario.network,
                                                  "imap.gmail.com")
        assert result.addresses
        node = scenario.network.node_at(result.addresses[0])
        assert 143 in node.tcp_ports()

    def test_cdn_domains_have_pools(self, small_scenario):
        pools = small_scenario.service.cdn_pools
        assert "facebook.com" in pools
        assert len(pools["facebook.com"]) >= 6

    def test_self_ip_resolvers_have_login_pages(self, small_scenario):
        from repro.resolvers.behaviors import SelfIpBehavior
        count = 0
        for node in small_scenario.population.resolvers:
            if any(isinstance(b, SelfIpBehavior) for b in node.behaviors):
                count += 1
                body = node.device_page or (node.device.http_body
                                            if node.device else None)
                assert body
        assert count > 0

    def test_scanner_ips_distinct(self, small_scenario):
        assert small_scenario.scanner_ip != \
            small_scenario.verification_scanner_ip
        # The verification scanner lives in a different /8 (§2.2).
        assert small_scenario.scanner_ip.split(".")[0] != \
            small_scenario.verification_scanner_ip.split(".")[0]


class TestPoolApportionment:
    """Per-AS broadband splits must conserve every country's hosts.

    Regression for the independent-``int(round(...))`` split, which
    drifted from the country total on ~24% of counts.  Checked at every
    published benchmark scale, including 1:27 (the million-resolver
    profile), where counts are large enough that a one-host drift would
    silently change the world population.
    """

    SCALES = (2000, 200, 27)

    @pytest.mark.parametrize("scale", SCALES)
    def test_splits_conserve_country_totals(self, scale):
        from repro.scenario import (BROADBAND_SPLIT_SHARES,
                                    split_pool_counts)
        from repro.util import apportion
        config = ScenarioConfig(scale=scale)
        for country, paper_count, change in COUNTRY_PLAN:
            count = config.scaled(paper_count)
            pool_counts, grown_counts = split_pool_counts(count, change)
            raw = apportion(count, BROADBAND_SPLIT_SHARES)
            assert sum(raw) == count, country
            # Minimum floors may only ever add hosts, never drop them.
            assert sum(pool_counts) >= count, country
            assert all(n >= 2 for n in pool_counts), country
            if all(share >= 2 for share in raw):
                assert pool_counts == raw, country
            # Growth never shrinks a pool, and growing countries
            # apportion the grown total exactly (before floors).
            assert all(g >= p for g, p in
                       zip(grown_counts, pool_counts)), country
            if change > 0:
                grown_total = int(round(count * (1 + change)))
                assert sum(apportion(grown_total,
                                     BROADBAND_SPLIT_SHARES)) \
                    == grown_total, country
