"""Tests for HTTP/mail data acquisition."""

import pytest

from repro.core.acquisition import DataAcquirer
from repro.core.prefilter import ResponseTuple
from repro.datasets import ScanDomain
from repro.resolvers import ResolverNode, StaticIpBehavior
from repro.websim import MailServer
from repro.websim.httpserver import StaticPageServer


@pytest.fixture
def world(mini):
    mini.web_ip = mini.infra.address_at(40001)
    mini.add_web_domain("example.com", mini.web_ip)
    mini.acquirer = DataAcquirer(mini.network, mini.client_ip)
    return mini


def tuple_for(world, domain="example.com", ip=None, resolver="5.5.5.5"):
    return ResponseTuple(domain, ip or world.web_ip, resolver)


class TestHttpFetch:
    def test_basic_fetch(self, world):
        capture = world.acquirer.fetch_http(tuple_for(world))
        assert capture.fetched
        assert capture.status == 200
        assert capture.body == world.sites.page_for("example.com")

    def test_host_header_drives_content(self, world):
        # Ask the SAME IP for a different domain: 404 error page.
        capture = world.acquirer.fetch_http(
            tuple_for(world, domain="other.net"))
        assert capture.status == 404

    def test_lan_ip_not_fetched(self, world):
        capture = world.acquirer.fetch_http(
            tuple_for(world, ip="192.168.1.1"))
        assert not capture.fetched
        assert capture.failure == "lan"

    def test_unreachable_ip(self, world):
        capture = world.acquirer.fetch_http(
            tuple_for(world, ip=world.infra.address_at(49999)))
        assert not capture.fetched
        assert capture.failure == "unreachable"

    def test_redirect_followed_and_resolved_at_resolver(self, world):
        # A server redirecting to portal.example; the new domain must be
        # resolved at the ORIGINAL resolver, which lies about it.
        redirect_ip = world.infra.address_at(40002)
        portal_ip = world.infra.address_at(40003)
        world.network.register(StaticPageServer(
            redirect_ip, "", redirect_to="http://portal.example/login"))
        world.network.register(StaticPageServer(
            portal_ip, "<html><title>Portal</title></html>"))
        resolver = ResolverNode(world.infra.address_at(40004),
                                resolution_service=world.service,
                                behaviors=[StaticIpBehavior(portal_ip)])
        world.network.register(resolver)
        capture = world.acquirer.fetch_http(ResponseTuple(
            "example.com", redirect_ip, resolver.ip))
        assert capture.fetched
        assert "Portal" in capture.body
        assert capture.redirects == ["http://portal.example/login"]
        assert capture.final_host == "portal.example"

    def test_iframe_followed(self, world):
        frame_ip = world.infra.address_at(40005)
        inner_ip = world.infra.address_at(40006)
        world.network.register(StaticPageServer(
            frame_ip,
            '<html><body><iframe src="http://inner.example/f"></iframe>'
            "</body></html>"))
        world.network.register(StaticPageServer(
            inner_ip, "<html><title>Inner</title></html>"))
        resolver = ResolverNode(world.infra.address_at(40007),
                                resolution_service=world.service,
                                behaviors=[StaticIpBehavior(inner_ip)])
        world.network.register(resolver)
        capture = world.acquirer.fetch_http(ResponseTuple(
            "example.com", frame_ip, resolver.ip))
        assert "Inner" in capture.body

    def test_redirect_limit(self, world):
        # A loop of redirects must stop after max_redirects.
        loop_ip = world.infra.address_at(40008)
        world.network.register(StaticPageServer(
            loop_ip, "", redirect_to="/again"))
        capture = world.acquirer.fetch_http(tuple_for(world, ip=loop_ip))
        assert len(capture.redirects) <= world.acquirer.max_redirects

    def test_relative_redirect_same_host(self, world):
        ip = world.infra.address_at(40009)
        world.network.register(StaticPageServer(ip, "",
                                                redirect_to="/moved"))
        capture = world.acquirer.fetch_http(tuple_for(world, ip=ip))
        assert capture.final_host == "example.com"


class TestMailFetch:
    def test_banners_collected(self, world):
        mail_ip = world.infra.address_at(40010)
        world.network.register(MailServer(mail_ip, provider="gmail.com"))
        capture = world.acquirer.fetch_mail(ResponseTuple(
            "imap.gmail.com", mail_ip, "5.5.5.5"))
        assert capture.fetched
        assert set(capture.banners) == {"imap", "pop3", "smtp"}

    def test_non_mail_host(self, world):
        capture = world.acquirer.fetch_mail(tuple_for(world))
        assert not capture.fetched


class TestBatchAcquire:
    def test_mail_domains_get_both_treatments(self, world):
        mail_ip = world.infra.address_at(40011)
        world.network.register(MailServer(mail_ip, provider="gmail.com"))
        catalog = {"imap.gmail.com": ScanDomain("imap.gmail.com", "MX",
                                                kind="mail"),
                   "example.com": ScanDomain("example.com", "Alexa")}
        tuples = [ResponseTuple("imap.gmail.com", mail_ip, "5.5.5.5"),
                  tuple_for(world)]
        http_captures, mail_captures = world.acquirer.acquire(
            tuples, catalog)
        assert len(mail_captures) == 1
        assert len(http_captures) == 2  # mail tuple also fetched via HTTP

    def test_https_catalog_entry_fetched_https_first(self, world):
        # The catalog says example.com serves HTTPS; batch acquisition
        # must pass that through so the capture records the https
        # scheme (regression: the flag used to be dropped and every
        # fetch went http-first).
        catalog = {"example.com": ScanDomain("example.com", "Alexa")}
        http_captures, __ = world.acquirer.acquire(
            [tuple_for(world)], catalog)
        assert http_captures[0].fetched
        assert http_captures[0].scheme == "https"

    def test_plain_http_catalog_entry_stays_http_first(self, world):
        catalog = {"example.com": ScanDomain("example.com", "Alexa",
                                             https=False)}
        http_captures, __ = world.acquirer.acquire(
            [tuple_for(world)], catalog)
        assert http_captures[0].fetched
        assert http_captures[0].scheme == "http"

    def test_cache_reuses_fetch(self, world):
        tuples = [tuple_for(world, resolver="5.5.5.%d" % i)
                  for i in range(10)]
        before = world.acquirer.http_fetches
        http_captures, __ = world.acquirer.acquire(tuples, {})
        assert len(http_captures) == 10
        # One real fetch; nine served from the (domain, ip) cache.
        assert world.acquirer.http_fetches - before <= 2
        resolvers = {c.resolver_ip for c in http_captures}
        assert len(resolvers) == 10
