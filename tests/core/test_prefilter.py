"""Tests for the DNS-based prefilter rules."""

import pytest

from repro.core.prefilter import Prefilterer, registrable_suffix
from repro.datasets import ScanDomain
from repro.dnswire.constants import RCODE_NOERROR, RCODE_NXDOMAIN, \
    RCODE_REFUSED
from repro.scanner.domainscan import DnsObservation
from repro.websim import WebServer


@pytest.fixture
def world(mini):
    # Host the legitimate site inside the infra AS so the AS rule has
    # something to match against.
    mini.legit_ip = mini.infra.address_at(40123)
    mini.legit_server = mini.add_web_domain("example.com", mini.legit_ip)
    # A second AS hosting an unrelated address.
    mini.foreign = mini.allocator.allocate(24)
    return mini


def make_prefilter(world, **kwargs):
    from repro.inetmodel import AsRegistry, AutonomousSystem
    registry = AsRegistry()
    registry.add(AutonomousSystem(64500, "Infra", "US",
                                  prefixes=[world.infra]))
    registry.add(AutonomousSystem(64501, "Foreign", "TR",
                                  prefixes=[world.foreign]))
    world.as_registry = registry
    return Prefilterer(world.network, world.service, registry,
                       world.rdns, ca=world.ca,
                       known_cdn_common_names=["edgesuite-cdn.net"],
                       probe_source_ip=world.client_ip, **kwargs)


def observation(domain, addresses, resolver="5.5.5.5",
                rcode=RCODE_NOERROR):
    return DnsObservation(domain, resolver, rcode, addresses)


CATALOG = {
    "example.com": ScanDomain("example.com", "Alexa"),
    "missing.net": ScanDomain("missing.net", "NX", exists=False),
}


class TestAsRule:
    def test_same_as_accepted(self, world):
        prefilter = make_prefilter(world)
        # Another IP in the infra AS (same AS as the trusted answer).
        sibling = world.infra.address_at(777)
        assert prefilter.address_is_legitimate("example.com", sibling)

    def test_foreign_as_rejected(self, world):
        prefilter = make_prefilter(world)
        foreign_ip = world.foreign.address_at(5)
        assert not prefilter.address_is_legitimate("example.com",
                                                   foreign_ip)

    def test_exact_trusted_ip_accepted(self, world):
        prefilter = make_prefilter(world)
        assert prefilter.address_is_legitimate("example.com",
                                               world.legit_ip)


class TestRdnsRule:
    def test_forward_confirmed_accepted(self, world):
        prefilter = make_prefilter(world, enable_as_rule=False,
                                   enable_cert_rule=False)
        ip = world.foreign.address_at(9)
        world.rdns.set_ptr(ip, "web2.example.com")
        assert prefilter.address_is_legitimate("example.com", ip)

    def test_unconfirmed_rejected(self, world):
        prefilter = make_prefilter(world, enable_as_rule=False,
                                   enable_cert_rule=False)
        ip = world.foreign.address_at(9)
        # Anyone can write a PTR; without the confirming A it's spoofable.
        world.rdns.set_ptr(ip, "web2.example.com",
                           forward_confirmed=False)
        assert not prefilter.address_is_legitimate("example.com", ip)

    def test_unrelated_ptr_rejected(self, world):
        prefilter = make_prefilter(world, enable_as_rule=False,
                                   enable_cert_rule=False)
        ip = world.foreign.address_at(9)
        world.rdns.set_ptr(ip, "host.other-isp.net")
        assert not prefilter.address_is_legitimate("example.com", ip)

    def test_registrable_suffix(self):
        assert registrable_suffix("web1.example.com") == "example.com"
        assert registrable_suffix("example.com") == "example.com"
        assert registrable_suffix("com") == "com"


class TestCertRule:
    def test_valid_sni_cert_accepted(self, world):
        prefilter = make_prefilter(world, enable_as_rule=False,
                                   enable_rdns_rule=False)
        # A server in a foreign AS presenting a valid cert for the domain
        # (a CDN edge).
        ip = world.foreign.address_at(10)
        server = WebServer(ip, world.sites, ["example.com"],
                           certificate=world.ca.issue("example.com"))
        world.network.register(server)
        assert prefilter.address_is_legitimate("example.com", ip)

    def test_self_signed_rejected(self, world):
        from repro.websim import CertificateAuthority
        from repro.websim.httpserver import StaticPageServer
        prefilter = make_prefilter(world, enable_as_rule=False,
                                   enable_rdns_rule=False)
        ip = world.foreign.address_at(11)
        world.network.register(StaticPageServer(
            ip, "<html>phish</html>",
            certificate=CertificateAuthority.self_signed("example.com")))
        assert not prefilter.address_is_legitimate("example.com", ip)

    def test_known_cdn_default_cert_accepted(self, world):
        from repro.websim.httpserver import StaticPageServer
        prefilter = make_prefilter(world, enable_as_rule=False,
                                   enable_rdns_rule=False)
        ip = world.foreign.address_at(12)
        world.network.register(StaticPageServer(
            ip, "<html>edge</html>",
            certificate=world.ca.issue("*.edgesuite-cdn.net")))
        assert prefilter.address_is_legitimate("example.com", ip)

    def test_unknown_default_cert_rejected(self, world):
        from repro.websim.httpserver import StaticPageServer
        prefilter = make_prefilter(world, enable_as_rule=False,
                                   enable_rdns_rule=False)
        ip = world.foreign.address_at(13)
        world.network.register(StaticPageServer(
            ip, "<html>x</html>",
            certificate=world.ca.issue("some-other-host.net")))
        assert not prefilter.address_is_legitimate("example.com", ip)

    def test_no_tls_rejected(self, world):
        prefilter = make_prefilter(world, enable_as_rule=False,
                                   enable_rdns_rule=False)
        assert not prefilter.address_is_legitimate(
            "example.com", world.foreign.address_at(14))


class TestProcess:
    def test_buckets(self, world):
        prefilter = make_prefilter(world)
        bogus_ip = world.foreign.address_at(20)
        observations = [
            observation("example.com", [world.legit_ip]),        # legit
            observation("example.com", [bogus_ip]),              # unknown
            observation("example.com", []),                      # empty
            observation("example.com", [], rcode=RCODE_REFUSED),  # error
            observation("missing.net", [], rcode=RCODE_NXDOMAIN),  # nx ok
            observation("missing.net", []),                      # nx ok
            observation("missing.net", [bogus_ip]),              # unknown
        ]
        result = prefilter.process(observations, CATALOG)
        assert result.observations == 7
        assert len(result.legitimate) == 1
        assert len(result.unknown) == 2
        assert len(result.empty) == 1
        assert len(result.errors) == 1
        assert len(result.nx_correct) == 2

    def test_mixed_answer_all_unknown(self, world):
        # One bogus address taints the whole answer: every IP of the
        # observation becomes an unknown tuple (never filter bogus).
        prefilter = make_prefilter(world)
        bogus_ip = world.foreign.address_at(20)
        result = prefilter.process(
            [observation("example.com", [world.legit_ip, bogus_ip])],
            CATALOG)
        assert len(result.unknown) == 2
        assert not result.legitimate

    def test_stats_shares(self, world):
        prefilter = make_prefilter(world)
        result = prefilter.process(
            [observation("example.com", [world.legit_ip])] * 9
            + [observation("example.com", [world.foreign.address_at(20)])],
            CATALOG)
        stats = result.stats()
        assert stats["legitimate_share"] == pytest.approx(0.9)
        assert stats["unknown_share"] == pytest.approx(0.1)

    def test_verdicts_cached(self, world):
        prefilter = make_prefilter(world)
        prefilter.process(
            [observation("example.com", [world.legit_ip])] * 5, CATALOG)
        # Trusted resolution happens once, not five times.
        assert len(prefilter._trusted_cache) == 1
