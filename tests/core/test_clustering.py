"""Tests for agglomerative hierarchical clustering."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import (
    Cluster,
    cluster_deduplicated,
    hierarchical_cluster,
)


def scalar_distance(a, b):
    return abs(a - b)


class TestBasics:
    def test_empty(self):
        clusters, dendrogram = hierarchical_cluster([], scalar_distance,
                                                    1.0)
        assert clusters == []
        assert len(dendrogram) == 0

    def test_singleton(self):
        clusters, __ = hierarchical_cluster([5], scalar_distance, 1.0)
        assert len(clusters) == 1
        assert clusters[0].items == [5]

    def test_two_groups(self):
        items = [0.0, 0.1, 0.2, 10.0, 10.1]
        clusters, __ = hierarchical_cluster(items, scalar_distance, 1.0)
        assert len(clusters) == 2
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [2, 3]

    def test_threshold_zero_keeps_singletons(self):
        clusters, __ = hierarchical_cluster([1, 2, 3], scalar_distance,
                                            -1.0)
        assert len(clusters) == 3

    def test_huge_threshold_single_cluster(self):
        clusters, __ = hierarchical_cluster([1, 5, 9], scalar_distance,
                                            100.0)
        assert len(clusters) == 1
        assert sorted(clusters[0].items) == [1, 5, 9]

    def test_unknown_linkage_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_cluster([1], scalar_distance, 1.0,
                                 linkage="median")

    def test_dendrogram_records_merges(self):
        __, dendrogram = hierarchical_cluster([0.0, 0.1, 10.0],
                                              scalar_distance, 100.0)
        assert len(dendrogram) == 2
        distances = dendrogram.merge_distances()
        assert distances[0] <= distances[1]

    def test_cluster_representative(self):
        cluster = Cluster([0, 1], ["a", "b"])
        assert cluster.representative() == "a"
        assert list(cluster) == ["a", "b"]


class TestAverageLinkageExactness:
    def test_upgma_matches_brute_force(self):
        # After merging {0.0, 1.0}, average distance to 5.0 must be 4.5.
        items = [0.0, 1.0, 5.0]
        __, dendrogram = hierarchical_cluster(items, scalar_distance,
                                              100.0)
        assert dendrogram.merges[0][2] == 1.0
        assert dendrogram.merges[1][2] == pytest.approx(4.5)

    def test_weighted_average_with_uneven_sizes(self):
        # Merge {0, 0} first (distance 0), then {0,0,3}: avg to 10 is
        # (10+10+7)/3 = 9.
        items = [0.0, 0.0, 3.0, 10.0]
        __, dendrogram = hierarchical_cluster(items, scalar_distance,
                                              100.0)
        final = dendrogram.merges[-1][2]
        assert final == pytest.approx(9.0)

    def test_single_linkage(self):
        items = [0.0, 2.0, 3.9]
        clusters, __ = hierarchical_cluster(items, scalar_distance, 2.0,
                                            linkage="single")
        # Chaining: 0-2 (d=2), then cluster-3.9 at min(1.9) merges too.
        assert len(clusters) == 1

    def test_complete_linkage(self):
        items = [0.0, 2.0, 3.9]
        clusters, __ = hierarchical_cluster(items, scalar_distance, 2.0,
                                            linkage="complete")
        # Complete linkage: cluster{0,2} to 3.9 is max(3.9,1.9)=3.9 > 2.
        assert len(clusters) == 2

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=2, max_size=12),
           st.floats(min_value=0.1, max_value=50))
    def test_property_clusters_partition_items(self, values, threshold):
        clusters, __ = hierarchical_cluster(values, scalar_distance,
                                            threshold)
        indices = sorted(i for cluster in clusters
                         for i in cluster.indices)
        assert indices == list(range(len(values)))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=2, max_size=10))
    def test_property_merge_distances_below_threshold(self, values):
        threshold = 5.0
        __, dendrogram = hierarchical_cluster(values, scalar_distance,
                                              threshold)
        assert all(d <= threshold for d in dendrogram.merge_distances())


class TestNnChainEquivalence:
    """NN-chain must reproduce the pair-scan oracle's output exactly."""

    def both(self, values, threshold, linkage="average"):
        chain = hierarchical_cluster(values, scalar_distance, threshold,
                                     linkage=linkage,
                                     algorithm="nn-chain")
        scan = hierarchical_cluster(values, scalar_distance, threshold,
                                    linkage=linkage,
                                    algorithm="pair-scan")
        return chain, scan

    def assert_equivalent(self, chain, scan):
        chain_clusters, chain_dendrogram = chain
        scan_clusters, scan_dendrogram = scan
        assert [frozenset(c.indices) for c in chain_clusters] \
            == [frozenset(c.indices) for c in scan_clusters]
        # Merge order is sorted-by-distance in both; distances can only
        # differ by float accumulation order in tied averages.
        assert chain_dendrogram.merge_distances() \
            == pytest.approx(scan_dendrogram.merge_distances())

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_cluster([1], scalar_distance, 1.0,
                                 algorithm="slink")

    def test_small_example_identical_history(self):
        chain, scan = self.both([0.0, 0.1, 0.2, 10.0, 10.1, 50.0], 1.0)
        self.assert_equivalent(chain, scan)
        assert chain[1].merges == scan[1].merges

    def test_threshold_boundary_merge_kept(self):
        # A merge at exactly the threshold is accepted by the oracle;
        # the chain must agree.
        chain, scan = self.both([0.0, 1.0, 10.0], 1.0)
        self.assert_equivalent(chain, scan)
        assert len(chain[1]) == 1

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=2, max_size=14),
           st.floats(min_value=0.1, max_value=60),
           st.sampled_from(["average", "single", "complete"]))
    def test_property_matches_pair_scan(self, values, threshold,
                                        linkage):
        chain, scan = self.both(values, threshold, linkage=linkage)
        self.assert_equivalent(chain, scan)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_property_random_fixtures_full_tree(self, seed):
        import random
        rng = random.Random(seed)
        values = [round(rng.uniform(0, 100), 3)
                  for __ in range(rng.randint(2, 20))]
        chain, scan = self.both(values, 1000.0)
        self.assert_equivalent(chain, scan)
        # Full agglomeration: both record exactly n - 1 merges.
        assert len(chain[1]) == len(values) - 1


class TestDeduplication:
    def test_duplicates_collapse_and_expand(self):
        keyed = [("a", 1.0), ("a", 1.0), ("b", 50.0), ("a", 1.0)]
        calls = []

        def counting_distance(x, y):
            calls.append((x, y))
            return abs(x - y)

        clusters, __ = cluster_deduplicated(keyed, counting_distance, 5.0)
        # Only one distance computed: between the two unique values.
        assert len(calls) == 1
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 3]

    def test_indices_preserved(self):
        keyed = [("a", 1.0), ("b", 50.0), ("a", 1.0)]
        clusters, __ = cluster_deduplicated(keyed, scalar_distance, 5.0)
        by_size = {len(c): c for c in clusters}
        assert by_size[2].indices == [0, 2]
        assert by_size[1].indices == [1]

    def test_merging_of_near_duplicates(self):
        keyed = [("a", 1.0), ("b", 1.4), ("c", 99.0)]
        clusters, __ = cluster_deduplicated(keyed, scalar_distance, 1.0)
        assert sorted(len(c) for c in clusters) == [1, 2]


class TestDendrogramRendering:
    def test_render_empty(self):
        from repro.core.clustering import Dendrogram, render_dendrogram
        assert render_dendrogram(Dendrogram()) == "(no merges)"

    def test_render_merges_with_labels(self):
        from repro.core.clustering import render_dendrogram
        __, dendrogram = hierarchical_cluster(
            [0.0, 0.1, 5.0], scalar_distance, 100.0)
        text = render_dendrogram(dendrogram, labels={0: "errors",
                                                     2: "parking"})
        lines = text.split("\n")
        assert lines[0].startswith("merge")
        assert len(lines) == 3  # header + two merges
        assert "errors" in text
        assert "parking" in text
        assert "#" in text

    def test_render_bar_scales_with_distance(self):
        from repro.core.clustering import render_dendrogram
        __, dendrogram = hierarchical_cluster(
            [0.0, 0.1, 50.0], scalar_distance, 100.0)
        lines = render_dendrogram(dendrogram).split("\n")[1:]
        first_bar = lines[0].count("#")
        last_bar = lines[-1].count("#")
        assert last_bar > first_bar
