"""Tests for cluster labeling rules."""

import pytest

from repro.core.acquisition import HttpCapture
from repro.core.clustering import Cluster
from repro.core.labeling import (
    ClusterLabeler,
    LABEL_BLOCKING,
    LABEL_CENSORSHIP,
    LABEL_HTTP_ERROR,
    LABEL_LOGIN,
    LABEL_MISC,
    LABEL_PARKING,
    LABEL_SEARCH,
    SUBLABEL_AD_BLANKING,
    SUBLABEL_AD_INJECTION,
    SUBLABEL_FAKE_SEARCH_ADS,
    SUBLABEL_MALWARE,
    SUBLABEL_PHISHING,
    SUBLABEL_PROXY,
    SUBLABEL_UNCLASSIFIED,
)
from repro.websim import SiteLibrary
from repro.websim import pages


def capture(body, domain="example.com", status=200, ip="9.9.9.9"):
    return HttpCapture(domain, ip, "5.5.5.5", status=status, body=body)


@pytest.fixture
def labeler():
    return ClusterLabeler()


class TestRules:
    def test_censorship(self, labeler):
        label, __ = labeler.label_capture(
            capture(pages.censorship_landing("TR")))
        assert label == LABEL_CENSORSHIP

    def test_blocking(self, labeler):
        label, __ = labeler.label_capture(
            capture(pages.isp_blocking_page()))
        assert label == LABEL_BLOCKING

    def test_http_error_by_status(self, labeler):
        label, __ = labeler.label_capture(
            capture(pages.error_page(404), status=404))
        assert label == LABEL_HTTP_ERROR

    def test_http_error_by_title(self, labeler):
        label, __ = labeler.label_capture(capture(pages.error_page(503)))
        assert label == LABEL_HTTP_ERROR

    def test_parking(self, labeler):
        label, __ = labeler.label_capture(
            capture(pages.parking_page("dead.com")))
        assert label == LABEL_PARKING

    def test_search(self, labeler):
        label, __ = labeler.label_capture(capture(pages.search_page()))
        assert label == LABEL_SEARCH

    def test_login_router(self, labeler):
        label, __ = labeler.label_capture(
            capture(pages.router_login("ZyXEL")))
        assert label == LABEL_LOGIN

    def test_login_captive_portal(self, labeler):
        label, __ = labeler.label_capture(
            capture(pages.captive_portal("Metro ISP", "isp")))
        assert label == LABEL_LOGIN

    def test_phishing_paypal(self, labeler):
        label, sublabel = labeler.label_capture(
            capture(pages.phishing_paypal(), domain="paypal.com"))
        assert label == LABEL_MISC
        assert sublabel == SUBLABEL_PHISHING

    def test_malware_update(self, labeler):
        label, sublabel = labeler.label_capture(
            capture(pages.malware_update_page()))
        assert sublabel == SUBLABEL_MALWARE

    def test_fake_search_with_ads(self, labeler):
        label, sublabel = labeler.label_capture(
            capture(pages.fake_search_with_ads()))
        assert sublabel == SUBLABEL_FAKE_SEARCH_ADS

    def test_unclassified_fallback(self, labeler):
        label, sublabel = labeler.label_capture(
            capture("<html><title>My Cat Blog</title><body><p>meow</p>"
                    "</body></html>"))
        assert label == LABEL_MISC
        assert sublabel == SUBLABEL_UNCLASSIFIED


class TestGroundTruthRules:
    def make_labeler(self, domain="shop.example"):
        sites = SiteLibrary(seed=2)
        body = sites.page_for(domain)
        return ClusterLabeler({domain: [body]}), body

    def test_proxy_detection(self):
        labeler, body = self.make_labeler()
        label, sublabel = labeler.label_capture(
            capture(body, domain="shop.example"))
        assert label == LABEL_MISC
        assert sublabel == SUBLABEL_PROXY

    def test_ad_injection_detection(self):
        labeler, body = self.make_labeler()
        label, sublabel = labeler.label_capture(
            capture(pages.inject_ad_banner(body), domain="shop.example"))
        assert sublabel == SUBLABEL_AD_INJECTION

    def test_ad_blanking_detection(self):
        sites = SiteLibrary(seed=2)
        sites.set_category("ads.example", "Ads")
        body = sites.page_for("ads.example")
        labeler = ClusterLabeler({"ads.example": [body]})
        label, sublabel = labeler.label_capture(
            capture(pages.blank_ads(body), domain="ads.example"))
        assert sublabel == SUBLABEL_AD_BLANKING

    def test_bank_phish_via_form_swap(self):
        sites = SiteLibrary(seed=2)
        sites.set_category("bank.example", "Banking")
        body = sites.page_for("bank.example")
        labeler = ClusterLabeler({"bank.example": [body]})
        label, sublabel = labeler.label_capture(
            capture(pages.phishing_bank(body), domain="bank.example"))
        assert sublabel == SUBLABEL_PHISHING


class TestClusterLabeling:
    def test_one_decision_per_cluster(self):
        labeler = ClusterLabeler()
        censored = capture(pages.censorship_landing("ID"))
        clusters = [Cluster([0, 1], [censored, censored]),
                    Cluster([2], [capture(pages.search_page())])]
        labeled = labeler.label_clusters(clusters)
        assert len(labeled) == 3
        assert [l.label for l in labeled] == [LABEL_CENSORSHIP,
                                              LABEL_CENSORSHIP,
                                              LABEL_SEARCH]
        assert labeled[0].cluster_id == labeled[1].cluster_id
        assert labeled[2].cluster_id != labeled[0].cluster_id
