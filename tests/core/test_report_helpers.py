"""Tests for PipelineReport helpers and capture types."""

from repro.core.acquisition import HttpCapture, MailCapture
from repro.core.labeling import (
    LABEL_CENSORSHIP,
    LABEL_MISC,
    LabeledCapture,
    SUBLABEL_UNCLASSIFIED,
)
from repro.core.pipeline import ManipulationPipeline, PipelineReport
from repro.core.prefilter import ResponseTuple


def labeled(domain, ip, resolver, label, sublabel=None):
    capture = HttpCapture(domain, ip, resolver, status=200, body="x")
    return LabeledCapture(capture, label, sublabel)


class TestPipelineReport:
    def test_suspicious_resolvers(self):
        report = PipelineReport()
        report.labeled = [labeled("a.com", "1.1.1.1", "r1",
                                  LABEL_CENSORSHIP),
                          labeled("b.com", "1.1.1.2", "r1",
                                  LABEL_CENSORSHIP),
                          labeled("a.com", "1.1.1.1", "r2", LABEL_MISC)]
        assert report.suspicious_resolvers == {"r1", "r2"}

    def test_labels_by_tuple(self):
        report = PipelineReport()
        report.labeled = [labeled("A.com", "1.1.1.1", "r1",
                                  LABEL_CENSORSHIP)]
        labels = report.labels_by_tuple()
        assert labels[("a.com", "1.1.1.1", "r1")] == (LABEL_CENSORSHIP,
                                                      None)

    def test_classified_share(self):
        report = PipelineReport()
        report.labeled = [
            labeled("a.com", "1.1.1.1", "r1", LABEL_CENSORSHIP),
            labeled("b.com", "1.1.1.2", "r2", LABEL_MISC,
                    SUBLABEL_UNCLASSIFIED),
        ]
        assert report.classified_share() == 0.5

    def test_classified_share_empty(self):
        assert PipelineReport().classified_share() == 1.0


class TestCaptureTypes:
    def test_http_capture_key_and_fetched(self):
        capture = HttpCapture("a.com", "1.1.1.1", "r1", status=200,
                              body="<html></html>")
        assert capture.fetched
        assert capture.key() == ("a.com", "1.1.1.1", "r1")
        assert capture.final_host == "a.com"

    def test_http_capture_failure(self):
        capture = HttpCapture("a.com", "1.1.1.1", "r1", failure="lan")
        assert not capture.fetched

    def test_mail_capture(self):
        capture = MailCapture("imap.x.com", "1.1.1.1", "r1",
                              {"imap": "* OK"})
        assert capture.fetched
        assert not MailCapture("imap.x.com", "1.1.1.1", "r1").fetched


class TestMailClassification:
    def test_banner_copy_detected(self):
        captures = [
            MailCapture("imap.gmail.com", "9.0.0.1", "r1",
                        {"imap": "* OK Gimap ready for requests"}),
            MailCapture("imap.gmail.com", "9.0.0.2", "r2",
                        {"imap": "* OK Dovecot ready."}),
            MailCapture("imap.unknown-provider.zz", "9.0.0.3", "r3",
                        {"imap": "* OK whatever"}),
            MailCapture("imap.gmail.com", "9.0.0.4", "r4", {}),
        ]
        listeners, matches = ManipulationPipeline.classify_mail(captures)
        assert len(listeners) == 3  # the empty capture is excluded
        assert len(matches) == 1
        assert matches[0].ip == "9.0.0.1"


class TestResponseTuple:
    def test_key(self):
        response_tuple = ResponseTuple("a.com", "1.1.1.1", "r1")
        assert response_tuple.key() == ("a.com", "1.1.1.1", "r1")
