"""End-to-end tests of the manipulation pipeline on a hand-built world."""

import pytest

from repro.core.pipeline import ManipulationPipeline
from repro.datasets import ScanDomain
from repro.core.labeling import (
    LABEL_CENSORSHIP,
    LABEL_HTTP_ERROR,
    LABEL_MISC,
    SUBLABEL_PROXY,
)
from repro.inetmodel import AsRegistry, AutonomousSystem
from repro.resolvers import (
    CensorshipBehavior,
    ProxyAllBehavior,
    ResolverNode,
    StaticIpBehavior,
)
from repro.websim import TransparentProxy
from repro.websim.httpserver import StaticPageServer
from repro.websim.pages import censorship_landing


@pytest.fixture
def world(mini):
    # Legitimate site inside the infra AS.
    mini.web_ip = mini.infra.address_at(40020)
    mini.add_web_domain("blocked.example", mini.web_ip, category="Alexa")
    mini.add_web_domain("normal.example",
                        mini.infra.address_at(40021), category="Misc")
    # A censorship landing page and a transparent proxy, hosted in a
    # DIFFERENT network than the legitimate sites (otherwise the AS rule
    # would filter them as legitimate).
    foreign = mini.allocator.allocate(24)
    mini.foreign = foreign
    mini.landing_ip = foreign.address_at(1)
    mini.network.register(StaticPageServer(mini.landing_ip,
                                           censorship_landing("TR")))
    mini.proxy_ip = foreign.address_at(2)
    mini.network.register(TransparentProxy(mini.proxy_ip, mini.sites))
    # A foreign web server that 404s for the scanned domains.
    from repro.websim import WebServer
    mini.error_ip = foreign.address_at(3)
    mini.network.register(WebServer(mini.error_ip, mini.sites,
                                    ["unrelated.example"], https=False))
    # Resolvers: honest, censoring, proxying, misdirecting.
    mini.resolver_ips = {}
    for name, behaviors in (
            ("honest", []),
            ("censor", [CensorshipBehavior(["blocked.example"],
                                           [mini.landing_ip])]),
            ("proxy", [ProxyAllBehavior([mini.proxy_ip])]),
            ("misdirect", [StaticIpBehavior(mini.error_ip)])):
        ip = mini.infra.address_at(41000 + len(mini.resolver_ips))
        mini.network.register(ResolverNode(
            ip, resolution_service=mini.service, behaviors=behaviors))
        mini.resolver_ips[name] = ip
    registry = AsRegistry()
    registry.add(AutonomousSystem(64500, "Infra", "US",
                                  prefixes=[mini.infra]))
    mini.catalog = [ScanDomain("blocked.example", "Alexa"),
                    ScanDomain("normal.example", "Misc")]
    mini.pipeline = ManipulationPipeline(
        mini.network, mini.service, registry, mini.rdns, mini.ca,
        known_cdn_common_names=(), source_ip=mini.client_ip,
        domain_catalog=mini.catalog)
    return mini


class TestPipeline:
    def test_full_chain(self, world):
        report = world.pipeline.run(list(world.resolver_ips.values()),
                                    world.catalog)
        # 4 resolvers x 2 domains = 8 observations.
        assert len(report.observations) == 8
        labels = report.labels_by_tuple()

        censor = world.resolver_ips["censor"]
        assert labels[("blocked.example", world.landing_ip,
                       censor)][0] == LABEL_CENSORSHIP

        proxy = world.resolver_ips["proxy"]
        assert labels[("blocked.example", world.proxy_ip,
                       proxy)] == (LABEL_MISC, SUBLABEL_PROXY)

        misdirect = world.resolver_ips["misdirect"]
        # normal.example at the error server: a 404 error page.
        assert labels[("normal.example", world.error_ip,
                       misdirect)][0] == LABEL_HTTP_ERROR

    def test_distance_hit_rate_gauge_credits_dedup(self, world):
        from repro.perf import PerfRegistry
        perf = PerfRegistry()
        world.pipeline.perf = perf
        world.pipeline.distance.perf = perf
        world.pipeline.features.perf = perf
        world.pipeline.run(list(world.resolver_ips.values()),
                           world.catalog)
        avoided = perf.counter("pipeline_distance_evals_avoided")
        gauge = perf.gauge_value("pipeline_distance_cache_hit_rate")
        assert gauge == pytest.approx(
            world.pipeline.distance.hit_rate())
        # Duplicate capture bodies exist in this world (the proxy and
        # the honest path both fetch the genuine pages), so pairs were
        # avoided — and the gauge must reflect them instead of the
        # regression's 0.0-despite-avoided-work reading.
        assert avoided > 0
        assert gauge > 0.0
        report = world.pipeline.run(list(world.resolver_ips.values()),
                                    world.catalog)
        honest = world.resolver_ips["honest"]
        assert honest not in report.prefilter.unknown_resolvers()
        assert honest not in report.suspicious_resolvers

    def test_ground_truth_collected(self, world):
        report = world.pipeline.run(list(world.resolver_ips.values()),
                                    world.catalog)
        assert "blocked.example" in report.ground_truth_bodies
        assert report.ground_truth_bodies["blocked.example"][0] == \
            world.sites.page_for("blocked.example")

    def test_ground_truth_for_uncataloged_domain_keyed_by_name(self,
                                                               world):
        # A ScanDomain absent from the pipeline's catalog must still be
        # keyed by its name (regression: the fallback was str(domain),
        # which is the repr for ScanDomain and poisoned the key space).
        domain = ScanDomain("normal.example", "Misc")
        world.pipeline.domain_catalog.pop("normal.example")
        bodies = world.pipeline.collect_ground_truth([domain])
        assert "normal.example" in bodies
        assert not any("ScanDomain" in key for key in bodies)

    def test_everything_classified(self, world):
        report = world.pipeline.run(list(world.resolver_ips.values()),
                                    world.catalog)
        assert report.classified_share() == 1.0

    def test_clusters_group_identical_pages(self, world):
        report = world.pipeline.run(list(world.resolver_ips.values()),
                                    world.catalog)
        # Censorship page, proxied originals (x2 domains), error page:
        # handful of clusters, each internally homogeneous.
        assert 2 <= len(report.clusters) <= 6
        for cluster in report.clusters:
            bodies = {capture.body for capture in cluster}
            assert len(bodies) <= 2
