"""Tests for HTML feature extraction and the seven-feature distance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distance import (
    FeatureCache,
    MemoizedDistance,
    PageDistance,
    edit_distance,
    jaccard_distance,
    length_difference,
    normalized_edit_distance,
)
from repro.core.features import extract_features
from collections import Counter

SIMPLE = ("<html><head><title>Hello World</title>"
          "<script src=\"/app.js\"></script></head>"
          "<body><h1>Hi</h1><p>text</p>"
          "<a href=\"/next\">go</a><img src=\"/pic.png\">"
          "<script>var x = 1;</script></body></html>")


class TestFeatureExtraction:
    def test_title(self):
        assert extract_features(SIMPLE).title == "Hello World"

    def test_tag_multiset(self):
        profile = extract_features(SIMPLE)
        assert profile.tag_multiset["script"] == 2
        assert profile.tag_multiset["p"] == 1
        assert "body" in profile.tag_multiset

    def test_tag_sequence_ordered(self):
        profile = extract_features("<html><body><p></p><div></div></body>"
                                   "</html>")
        second = extract_features("<html><body><div></div><p></p></body>"
                                  "</html>")
        assert Counter(profile.tag_sequence) == Counter(
            second.tag_sequence)
        assert profile.tag_sequence != second.tag_sequence

    def test_javascript_collected(self):
        assert "var x = 1;" in extract_features(SIMPLE).javascript

    def test_resources_and_links(self):
        profile = extract_features(SIMPLE)
        assert profile.resources["/pic.png"] == 1
        assert profile.resources["/app.js"] == 1
        assert profile.links["/next"] == 1

    def test_empty_body(self):
        profile = extract_features("")
        assert profile.length == 0
        assert profile.title == ""
        assert not profile.tag_sequence

    def test_none_body(self):
        assert extract_features(None).length == 0

    def test_sequence_capped(self):
        body = "<p></p>" * 1000
        profile = extract_features(body, max_sequence=100)
        assert len(profile.tag_sequence) == 100


class TestPrimitiveDistances:
    def test_jaccard_identity(self):
        counter = Counter("aabbc")
        assert jaccard_distance(counter, counter) == 0.0

    def test_jaccard_disjoint(self):
        assert jaccard_distance(Counter("aa"), Counter("bb")) == 1.0

    def test_jaccard_empty(self):
        assert jaccard_distance(Counter(), Counter()) == 0.0
        assert jaccard_distance(Counter("a"), Counter()) == 1.0

    def test_jaccard_multiset_counts_matter(self):
        assert jaccard_distance(Counter("aa"), Counter("a")) == 0.5

    def test_edit_distance_basics(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "abc") == 0
        assert edit_distance((1, 2, 3), (1, 3)) == 1

    def test_edit_distance_cap(self):
        assert edit_distance("a" * 100, "b" * 100, cap=10) == 10

    def test_normalized_edit_range(self):
        assert normalized_edit_distance("abc", "abc") == 0.0
        assert normalized_edit_distance("abc", "xyz") == 1.0
        assert 0 < normalized_edit_distance("abc", "abd") < 1

    def test_length_difference(self):
        assert length_difference(100, 100) == 0.0
        assert length_difference(0, 100) == 1.0
        assert length_difference(0, 0) == 0.0

    @given(st.text(max_size=25), st.text(max_size=25),
           st.text(max_size=25))
    @settings(max_examples=50)
    def test_edit_distance_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= \
            edit_distance(a, b) + edit_distance(b, c)

    @given(st.text(max_size=30), st.text(max_size=30))
    @settings(max_examples=50)
    def test_edit_distance_symmetric(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)


class TestPageDistance:
    def test_identity_is_zero(self):
        distance = PageDistance()
        profile = extract_features(SIMPLE)
        assert distance(profile, profile) == 0.0

    def test_symmetric(self):
        distance = PageDistance()
        left = extract_features(SIMPLE)
        right = extract_features("<html><title>Other</title><body>"
                                 "<div>x</div></body></html>")
        assert distance(left, right) == pytest.approx(
            distance(right, left))

    def test_range(self):
        distance = PageDistance()
        left = extract_features(SIMPLE)
        right = extract_features("<table><tr><td>1</td></tr></table>")
        assert 0.0 <= distance(left, right) <= 1.0

    def test_similar_pages_closer_than_different(self):
        distance = PageDistance()
        base = extract_features(SIMPLE)
        near = extract_features(SIMPLE.replace("text", "texts"))
        far = extract_features("<html><title>404</title><body><h1>Not "
                               "Found</h1></body></html>")
        assert distance(base, near) < distance(base, far)

    def test_seven_features(self):
        distance = PageDistance()
        features = distance.feature_distances(extract_features(SIMPLE),
                                              extract_features(SIMPLE))
        assert set(features) == set(PageDistance.FEATURE_NAMES)
        assert len(features) == 7

    def test_custom_weights(self):
        title_only = PageDistance(weights={"title": 1.0})
        left = extract_features("<title>AAA</title><p>x</p>")
        right = extract_features("<title>AAA</title><div>y</div>")
        assert title_only(left, right) == 0.0

    def test_unknown_weight_rejected(self):
        with pytest.raises(ValueError):
            PageDistance(weights={"bogus": 1.0})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            PageDistance(weights={"title": 0.0})


class TestMemoizedDistance:
    def make(self, perf=None):
        calls = []

        def counting(a, b):
            calls.append((a, b))
            return abs(a - b)

        return MemoizedDistance(counting, perf=perf), calls

    def test_memoizes_by_identity(self):
        memo, calls = self.make()
        a, b = 1.0, 3.0
        assert memo(a, b) == 2.0
        assert memo(a, b) == 2.0
        assert len(calls) == 1
        assert memo.evaluations == 1
        assert memo.hits == 1

    def test_symmetric_key(self):
        memo, calls = self.make()
        a, b = 1.0, 3.0
        memo(a, b)
        assert memo(b, a) == 2.0
        assert len(calls) == 1

    def test_hit_rate(self):
        memo, __ = self.make()
        assert memo.hit_rate() == 0.0
        a, b = 1.0, 3.0
        memo(a, b)
        memo(a, b)
        memo(a, b)
        assert memo.hit_rate() == pytest.approx(2 / 3)

    def test_perf_counters_mirrored(self):
        from repro.perf import PerfRegistry
        perf = PerfRegistry()
        memo, __ = self.make(perf=perf)
        a, b = 1.0, 3.0
        memo(a, b)
        memo(a, b)
        assert perf.counter("distance_evals") == 1
        assert perf.counter("distance_cache_hits") == 1

    def test_avoided_pairs_counted_in_hit_rate(self):
        # The clustering stage deduplicates identical bodies before it
        # builds a distance matrix and then asks for each surviving
        # pair exactly once: the memo itself sees zero repeats.  The
        # dedup credit is what keeps the gauge honest (the regression
        # was a hit rate of 0.0 alongside thousands of avoided pairs).
        memo, calls = self.make()
        a, b = 1.0, 3.0
        memo(a, b)
        assert memo.hit_rate() == 0.0
        memo.credit_avoided(3)
        assert memo.avoided == 3
        assert memo.hit_rate() == pytest.approx(3 / 4)
        assert len(calls) == 1

    def test_credit_avoided_ignores_nonpositive(self):
        memo, __ = self.make()
        memo.credit_avoided(0)
        memo.credit_avoided(-5)
        assert memo.avoided == 0
        assert memo.hit_rate() == 0.0


class TestFeatureCache:
    def test_one_profile_per_body(self):
        cache = FeatureCache()
        first = cache.profile_of(SIMPLE)
        second = cache.profile_of(SIMPLE)
        # Same OBJECT: profile identity is the distance memo's key.
        assert first is second
        assert cache.extractions == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_distinct_bodies_distinct_profiles(self):
        cache = FeatureCache()
        a = cache.profile_of("<title>A</title>")
        b = cache.profile_of("<title>B</title>")
        assert a is not b
        assert len(cache) == 2

    def test_perf_counters_mirrored(self):
        from repro.perf import PerfRegistry
        perf = PerfRegistry()
        cache = FeatureCache(perf=perf)
        cache.profile_of(SIMPLE)
        cache.profile_of(SIMPLE)
        assert perf.counter("feature_extractions") == 1
        assert perf.counter("feature_cache_hits") == 1

    def test_custom_extractor(self):
        cache = FeatureCache(extractor=len)
        assert cache.profile_of("abcd") == 4
        assert cache.hit_rate() == 0.0
        cache.profile_of("abcd")
        assert cache.hit_rate() == 0.5
