"""Tests for fine-grained diff clustering."""

from repro.core.acquisition import HttpCapture
from repro.core.diffcluster import (
    DiffProfile,
    build_diff_profile,
    diff_cluster,
    tag_diff,
)

ORIGINAL = ("<html><head><title>Bank</title></head><body>"
            "<h1>Bank</h1><p>welcome</p>"
            "<form action=\"/login\"><input type=\"password\" "
            "name=\"p\"></form></body></html>")


def capture_with(body, domain="bank.example", ip="9.9.9.9"):
    return HttpCapture(domain, ip, "5.5.5.5", status=200, body=body)


class TestTagDiff:
    def test_identical_pages_no_diff(self):
        added, removed = tag_diff(ORIGINAL, ORIGINAL)
        assert not added
        assert not removed

    def test_injected_script_detected(self):
        modified = ORIGINAL.replace(
            "<body>", "<body><script src=\"http://evil/x.js\"></script>")
        added, removed = tag_diff(modified, ORIGINAL)
        assert added["script"] == 1
        assert not removed

    def test_removed_form_detected(self):
        modified = ORIGINAL.replace(
            "<form action=\"/login\"><input type=\"password\" "
            "name=\"p\"></form>", "")
        added, removed = tag_diff(modified, ORIGINAL)
        assert removed["form"] == 1
        assert removed["input"] == 1

    def test_attribute_change_is_replace(self):
        modified = ORIGINAL.replace('action="/login"',
                                    'action="http://evil/c.php"')
        added, removed = tag_diff(modified, ORIGINAL)
        assert added["form"] == 1
        assert removed["form"] == 1


class TestDiffProfile:
    def test_modification_size(self):
        modified = ORIGINAL.replace("<body>", "<body><script></script>")
        profile = build_diff_profile(capture_with(modified), [ORIGINAL])
        assert profile.modification_size == 1
        assert profile.added["script"] == 1

    def test_best_ground_truth_selected(self):
        other_truth = "<html><title>Unrelated</title><body><table>" \
            "<tr><td>x</td></tr></table></body></html>"
        modified = ORIGINAL.replace("<body>", "<body><script></script>")
        profile = build_diff_profile(capture_with(modified),
                                     [other_truth, ORIGINAL])
        # Diffed against the similar truth, not the unrelated one.
        assert profile.modification_size <= 2

    def test_requires_truth(self):
        import pytest
        with pytest.raises(ValueError):
            build_diff_profile(capture_with(ORIGINAL), [])

    def test_combined_multiset_signs(self):
        profile = DiffProfile(capture_with("x"), {"script": 2},
                              {"form": 1}, 0.9)
        combined = profile.combined_multiset()
        assert combined["+script"] == 2
        assert combined["-form"] == 1


class TestDiffClustering:
    def test_same_modification_groups_across_sites(self):
        # The same script injection on two different sites clusters
        # together; a form swap clusters separately.
        site_a = ORIGINAL
        site_b = ("<html><head><title>Shop</title></head><body>"
                  "<div>items</div><form action=\"/buy\">"
                  "<input name=\"q\"></form></body></html>")
        inject = "<script src=\"http://evil/x.js\"></script>"
        profiles = [
            build_diff_profile(
                capture_with(site_a.replace("<body>", "<body>" + inject)),
                [site_a]),
            build_diff_profile(
                capture_with(site_b.replace("<body>", "<body>" + inject),
                             domain="shop.example"), [site_b]),
            build_diff_profile(
                capture_with(site_a.replace("<p>welcome</p>",
                                            "<iframe src=\"x\"></iframe>"
                                            "<blink>y</blink>")),
                [site_a]),
        ]
        clusters, __ = diff_cluster(profiles, threshold=0.5)
        assert len(clusters) == 2
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 2]

    def test_empty_input(self):
        clusters, __ = diff_cluster([], threshold=0.5)
        assert clusters == []
