"""Pipeline degradation: partial reports instead of raised exceptions."""

import pytest

from repro.core.pipeline import ManipulationPipeline, PipelineReport
from repro.datasets import ScanDomain
from repro.faults import FaultPlan, FaultProfile
from repro.inetmodel import AsRegistry, AutonomousSystem
from repro.resolvers import ResolverNode, StaticIpBehavior


@pytest.fixture
def world(mini):
    """A small world: one honest and one misdirecting resolver."""
    mini.web_ip = mini.infra.address_at(40020)
    mini.add_web_domain("site.example", mini.web_ip, category="Alexa")
    foreign = mini.allocator.allocate(24)
    mini.dead_ip = foreign.address_at(9)   # no server listens here
    mini.resolver_ips = {}
    for name, behaviors in (
            ("honest", []),
            ("misdirect", [StaticIpBehavior(mini.dead_ip)])):
        ip = mini.infra.address_at(41000 + len(mini.resolver_ips))
        mini.network.register(ResolverNode(
            ip, resolution_service=mini.service, behaviors=behaviors))
        mini.resolver_ips[name] = ip
    registry = AsRegistry()
    registry.add(AutonomousSystem(64500, "Infra", "US",
                                  prefixes=[mini.infra]))
    mini.registry = registry
    mini.catalog = [ScanDomain("site.example", "Alexa")]
    return mini


def make_pipeline(world, **kwargs):
    return ManipulationPipeline(
        world.network, world.service, world.registry, world.rdns,
        world.ca, known_cdn_common_names=(), source_ip=world.client_ip,
        domain_catalog=world.catalog, **kwargs)


def add_fake_sites(world, count=2):
    """Resolvers that misdirect to live servers with distinct bodies,
    so the pipeline reaches clustering with real captures."""
    from repro.websim.httpserver import StaticPageServer
    foreign = world.allocator.allocate(24)
    resolver_ips = []
    for i in range(count):
        server_ip = foreign.address_at(20 + i)
        world.network.register(StaticPageServer(
            server_ip,
            "<html><title>Fake %d</title><body>%s</body></html>"
            % (i, "lorem ipsum " * (i + 1))))
        resolver_ip = world.infra.address_at(41010 + i)
        world.network.register(ResolverNode(
            resolver_ip, resolution_service=world.service,
            behaviors=[StaticIpBehavior(server_ip)]))
        resolver_ips.append(resolver_ip)
    return resolver_ips


class TestReportDegradation:
    def test_clean_run_not_degraded(self, world):
        pipeline = make_pipeline(world)
        report = pipeline.run(list(world.resolver_ips.values()),
                              world.catalog)
        assert not report.is_degraded
        assert report.degraded == []

    def test_mark_degraded_provenance(self):
        report = PipelineReport()
        assert not report.is_degraded
        report.mark_degraded("acquisition", "boom")
        assert report.is_degraded
        assert report.degraded == [{"stage": "acquisition",
                                    "reason": "boom"}]

    def test_scan_failure_yields_partial_report(self, world):
        pipeline = make_pipeline(world)

        class BrokenScanner:
            def scan(self, resolver_ips, names):
                raise RuntimeError("scan socket exploded")

        pipeline.scanner = BrokenScanner()
        report = pipeline.run(list(world.resolver_ips.values()),
                              world.catalog)
        assert report.is_degraded
        assert report.degraded[0]["stage"] == "domain_scan"
        assert "exploded" in report.degraded[0]["reason"]
        assert report.observations == []
        assert report.http_captures == []
        assert report.clusters == []

    def test_acquisition_failure_keeps_prefilter(self, world):
        pipeline = make_pipeline(world)

        def broken_acquire(tuples, domain_catalog=None):
            raise RuntimeError("acquire blew up")

        pipeline.acquirer.acquire = broken_acquire
        report = pipeline.run(list(world.resolver_ips.values()),
                              world.catalog)
        stages = {entry["stage"] for entry in report.degraded}
        assert stages == {"acquisition"}
        assert report.prefilter is not None
        assert len(report.observations) == 2
        assert report.http_captures == []

    def test_clustering_failure_yields_partial_report(self, world):
        pipeline = make_pipeline(world)

        def broken_distance(a, b):
            raise RuntimeError("distance matrix corrupt")

        pipeline.distance = broken_distance
        resolvers = list(world.resolver_ips.values()) \
            + add_fake_sites(world)
        report = pipeline.run(resolvers, world.catalog)
        stages = [entry["stage"] for entry in report.degraded]
        assert "clustering" in stages
        assert report.clusters == []
        assert report.dendrogram is None
        # The chain kept going: captures survive, labeling ran on the
        # (empty) cluster list instead of raising.
        assert report.http_captures
        assert report.labeled == []

    def test_labeling_failure_yields_partial_report(self, world):
        import repro.core.pipeline as pipeline_module
        pipeline = make_pipeline(world)

        class BrokenLabeler:
            def __init__(self, ground_truth_bodies):
                pass

            def label_clusters(self, clusters):
                raise RuntimeError("labeler heuristics crashed")

        resolvers = list(world.resolver_ips.values()) \
            + add_fake_sites(world)
        original = pipeline_module.ClusterLabeler
        pipeline_module.ClusterLabeler = BrokenLabeler
        try:
            report = pipeline.run(resolvers, world.catalog)
        finally:
            pipeline_module.ClusterLabeler = original
        stages = [entry["stage"] for entry in report.degraded]
        assert "labeling" in stages
        assert report.labeled == []
        assert report.diff_clusters == []
        # Everything upstream of labeling survived intact.
        assert report.clusters
        assert report.prefilter is not None

    def test_ground_truth_failure_still_labels(self, world):
        pipeline = make_pipeline(world)
        pipeline.collect_ground_truth = \
            lambda domains: (_ for _ in ()).throw(RuntimeError("gt down"))
        report = pipeline.run(list(world.resolver_ips.values()),
                              world.catalog)
        stages = {entry["stage"] for entry in report.degraded}
        assert stages == {"ground_truth"}
        assert report.ground_truth_bodies == {}


class TestErrorBudget:
    def test_budget_exhaustion_marks_degraded(self, world):
        # Every misdirected tuple points at a dead IP -> unreachable
        # fetches; a zero budget trips after the first one.
        pipeline = make_pipeline(world, error_budget=0)
        report = pipeline.run(list(world.resolver_ips.values()),
                              world.catalog)
        assert pipeline.acquirer.budget_exhausted
        stages = [entry["stage"] for entry in report.degraded]
        assert "acquisition" in stages
        unreachable = [c for c in report.failed_captures
                       if c.failure == "unreachable"]
        assert len(unreachable) == 1

    def test_generous_budget_not_exhausted(self, world):
        pipeline = make_pipeline(world, error_budget=50)
        report = pipeline.run(list(world.resolver_ips.values()),
                              world.catalog)
        assert not pipeline.acquirer.budget_exhausted
        assert not report.is_degraded

    def test_budget_skips_remaining_tuples(self, world):
        from repro.core.prefilter import ResponseTuple
        pipeline = make_pipeline(world, error_budget=0)
        tuples = [ResponseTuple("site.example", world.dead_ip,
                                world.resolver_ips["misdirect"])
                  for __ in range(5)]
        http, __ = pipeline.acquirer.acquire(tuples, {})
        failures = [capture.failure for capture in http]
        assert failures[0] == "unreachable"
        # The cache would normally reuse the unreachable result; budget
        # exhaustion short-circuits before any network access.
        assert all(f in ("unreachable", "budget") for f in failures[1:])
        assert pipeline.acquirer.budget_exhausted


class TestFetchTimeout:
    def test_tcp_stalls_fail_bounded_fetches(self, world):
        world.network.install_faults(FaultPlan(
            FaultProfile(tcp_hang_rate=1.0, tcp_stall_seconds=600.0),
            seed=2))
        pipeline = make_pipeline(world, fetch_timeout=5.0)
        report = pipeline.run(list(world.resolver_ips.values()),
                              world.catalog)
        # Every fetch stalls past the timeout: nothing fetched, yet the
        # pipeline still completes and reports.
        assert report.http_captures == []
        assert world.network.fault_counters.get("tcp_hang", 0) > 0

    def test_unbounded_fetch_absorbs_stalls(self, world):
        world.network.install_faults(FaultPlan(
            FaultProfile(tcp_hang_rate=1.0, tcp_stall_seconds=600.0),
            seed=2))
        pipeline = make_pipeline(world)   # no fetch_timeout
        report = pipeline.run(list(world.resolver_ips.values()),
                              world.catalog)
        assert world.network.fault_counters.get("tcp_stall_absorbed",
                                                0) > 0
        assert not report.is_degraded
