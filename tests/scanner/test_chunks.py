"""Streamed-chunk lifecycle of :class:`ScanResult`.

The streaming scan detaches columns as raw-bytes chunks
(:meth:`take_chunk`), spills them, and folds them back
(:meth:`absorb_chunk`) before the normal shard :meth:`merge`.  These
tests pin the invariants that path leans on: zero-row chunks are
harmless, reassembly order is invisible (canonical pickling), and the
empty-``suppressed`` byte-compatibility of result pickles survives any
combination of chunking and merging.
"""

import pickle

from repro.scanner.ipv4scan import ScanResult


def _result(timestamp, rows, probes=0, suppressed=()):
    result = ScanResult(timestamp)
    result.probes_sent = probes
    for value, rcode, divergent in rows:
        result.record_value(value, rcode, divergent)
    for window, cause, count in suppressed:
        result.record_suppressed(window, cause, count)
    return result


ROWS = [(0x0A000001, 0, False), (0x0A000002, 5, True),
        (0xC0A80101, 2, False), (0x08080808, 0, False)]


class TestChunkRoundtrip:
    def test_take_chunk_leaves_scalars_in_place(self):
        result = _result(9.0, ROWS, probes=10)
        chunk = result.take_chunk()
        assert result.row_count() == 0
        assert result.probes_sent == 10
        restored = ScanResult(9.0)
        restored.probes_sent = 10
        restored.absorb_chunk(chunk)
        assert pickle.dumps(restored) == pickle.dumps(
            _result(9.0, ROWS, probes=10))

    def test_zero_row_chunk_is_a_noop(self):
        empty_chunk = ScanResult(3.0).take_chunk()
        assert empty_chunk == (b"", b"", b"")
        result = _result(3.0, ROWS)
        result.absorb_chunk(empty_chunk)
        assert pickle.dumps(result) == pickle.dumps(_result(3.0, ROWS))

    def test_reassembly_order_is_invisible(self):
        # Chunks absorbed out of emission order still pickle to the
        # canonical bytes — __getstate__ row-sorts.
        first = _result(1.0, ROWS[:2]).take_chunk()
        second = _result(1.0, ROWS[2:]).take_chunk()
        forward = ScanResult(1.0)
        forward.absorb_chunk(first)
        forward.absorb_chunk(second)
        backward = ScanResult(1.0)
        backward.absorb_chunk(second)
        backward.absorb_chunk(first)
        assert pickle.dumps(forward) == pickle.dumps(backward)


class TestMergeWithChunks:
    def test_empty_suppressed_omitted_after_chunked_merge(self):
        # The empty-dict byte-compat contract: results that saw no
        # suppression pickle without a "suppressed" key, even after
        # their columns travelled as chunks (including zero-row ones)
        # and the shards were merged.
        left = ScanResult(7.0)
        left.absorb_chunk(_result(7.0, ROWS[:2]).take_chunk())
        left.absorb_chunk(ScanResult(7.0).take_chunk())     # zero rows
        right = ScanResult(7.0)
        right.absorb_chunk(_result(7.0, ROWS[2:]).take_chunk())
        merged = left.merge(right)
        assert merged.suppressed == {}
        state = merged.__getstate__()
        assert "suppressed" not in state
        assert pickle.dumps(merged) == pickle.dumps(_result(7.0, ROWS))

    def test_suppression_counts_survive_chunked_merge(self):
        # Suppression tallies live outside the columns, so chunking
        # must not touch them and merge must still add them up.
        left = _result(2.0, ROWS[:1],
                       suppressed=[(0x0A000000, "rate-defense", 3)])
        left.absorb_chunk(left.take_chunk())        # round-trip columns
        right = _result(2.0, ROWS[1:],
                        suppressed=[(0x0A000000, "rate-defense", 2),
                                    (0xC0A80000, "blackhole", 1)])
        merged = left.merge(right)
        assert merged.suppressed == {(0x0A000000, "rate-defense"): 5,
                                     (0xC0A80000, "blackhole"): 1}
        direct = _result(2.0, ROWS,
                         suppressed=[(0x0A000000, "rate-defense", 5),
                                     (0xC0A80000, "blackhole", 1)])
        assert pickle.dumps(merged) == pickle.dumps(direct)
        # And the degraded-shards view synthesizes both causes.
        causes = {entry["cause"] for entry in merged.degraded_shards}
        assert causes == {"rate-defense", "blackhole"}

    def test_merge_of_zero_row_streamed_shard(self):
        # A shard whose every row left via chunks merges as zero rows
        # without disturbing counters or byte-compat of the other side.
        full = _result(4.0, ROWS, probes=8)
        drained = _result(4.0, ROWS[:2], probes=5)
        drained.take_chunk()                        # chunk never returns
        assert drained.row_count() == 0
        merged = full.merge(drained)
        assert merged.probes_sent == 13
        assert merged.row_count() == len(ROWS)
        assert "suppressed" not in merged.__getstate__()
