"""Tests for the LFSR scan-order permutation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scanner.lfsr import LFSR, MAXIMAL_TAPS


class TestMaximality:
    @pytest.mark.parametrize("order", list(range(3, 17)))
    def test_full_period_small_orders(self, order):
        lfsr = LFSR(order, seed=1)
        values = list(lfsr.sequence())
        assert len(values) == (1 << order) - 1
        assert set(values) == set(range(1, 1 << order))

    @pytest.mark.parametrize("order", [17, 18, 19, 20])
    def test_no_short_cycle_spot_check(self, order):
        lfsr = LFSR(order, seed=1)
        first = lfsr.state
        # A maximal LFSR must not return to the seed early.
        for __ in range(100000):
            if lfsr.step() == first:
                pytest.fail("short cycle for order %d" % order)

    def test_all_documented_orders_have_taps(self):
        assert set(MAXIMAL_TAPS) == set(range(3, 33))


class TestApi:
    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=0)

    def test_unknown_order_without_taps_rejected(self):
        with pytest.raises(ValueError):
            LFSR(2)

    def test_custom_taps_accepted(self):
        lfsr = LFSR(2, seed=1, taps=0b11)
        assert len(list(lfsr.sequence())) == 3

    def test_seed_masked(self):
        lfsr = LFSR(4, seed=0x1F)
        assert lfsr.state <= 0xF

    def test_period_property(self):
        assert LFSR(8).period == 255

    @given(st.integers(min_value=1, max_value=10 ** 6))
    def test_order_for_covers_count(self, count):
        order = LFSR.order_for(count)
        assert (1 << order) - 1 >= count
        assert order == 3 or (1 << (order - 1)) - 1 < count

    def test_different_seeds_same_set(self):
        first = set(LFSR(6, seed=1).sequence())
        second = set(LFSR(6, seed=33).sequence())
        assert first == second

    def test_permutation_not_sequential(self):
        values = list(LFSR(10, seed=1).sequence())[:50]
        assert values != sorted(values)
