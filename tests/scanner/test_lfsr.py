"""Tests for the LFSR scan-order permutation and batch plumbing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.inetmodel import PrefixAllocator
from repro.scanner.ipv4scan import ScanTargetSpace, retry_schedule
from repro.scanner.lfsr import (
    LFSR,
    MAXIMAL_TAPS,
    TargetBatchIterator,
    permutation,
)


class TestMaximality:
    @pytest.mark.parametrize("order", list(range(3, 17)))
    def test_full_period_small_orders(self, order):
        lfsr = LFSR(order, seed=1)
        values = list(lfsr.sequence())
        assert len(values) == (1 << order) - 1
        assert set(values) == set(range(1, 1 << order))

    @pytest.mark.parametrize("order", [17, 18, 19, 20])
    def test_no_short_cycle_spot_check(self, order):
        lfsr = LFSR(order, seed=1)
        first = lfsr.state
        # A maximal LFSR must not return to the seed early.
        for __ in range(100000):
            if lfsr.step() == first:
                pytest.fail("short cycle for order %d" % order)

    def test_all_documented_orders_have_taps(self):
        assert set(MAXIMAL_TAPS) == set(range(3, 33))


class TestApi:
    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=0)

    def test_unknown_order_without_taps_rejected(self):
        with pytest.raises(ValueError):
            LFSR(2)

    def test_custom_taps_accepted(self):
        lfsr = LFSR(2, seed=1, taps=0b11)
        assert len(list(lfsr.sequence())) == 3

    def test_seed_masked(self):
        lfsr = LFSR(4, seed=0x1F)
        assert lfsr.state <= 0xF

    def test_period_property(self):
        assert LFSR(8).period == 255

    @given(st.integers(min_value=1, max_value=10 ** 6))
    def test_order_for_covers_count(self, count):
        order = LFSR.order_for(count)
        assert (1 << order) - 1 >= count
        assert order == 3 or (1 << (order - 1)) - 1 < count

    def test_different_seeds_same_set(self):
        first = set(LFSR(6, seed=1).sequence())
        second = set(LFSR(6, seed=33).sequence())
        assert first == second

    def test_permutation_not_sequential(self):
        values = list(LFSR(10, seed=1).sequence())[:50]
        assert values != sorted(values)


class TestPermutation:
    def test_matches_sequence(self):
        walk = permutation(10, seed=77)
        assert list(walk) == list(LFSR(10, seed=77).sequence())

    def test_full_period_every_state_once(self):
        walk = permutation(9, seed=5)
        assert len(walk) == (1 << 9) - 1
        assert set(walk) == set(range(1, 1 << 9))

    def test_memoised_same_object(self):
        first = permutation(8, seed=3)
        second = permutation(8, seed=3)
        assert first is second

    def test_distinct_keys_distinct_walks(self):
        assert list(permutation(8, seed=3)) != list(
            permutation(8, seed=4))

    def test_seed_normalised_like_lfsr(self):
        # LFSR masks the seed to the register width; the memo key must
        # see the normalised seed or equal walks would cache twice.
        wide = permutation(4, seed=0x13)
        narrow = permutation(4, seed=0x3)
        assert wide is narrow


class TestTargetBatchIterator:
    def walk(self, order=8, seed=1):
        return permutation(order, seed=seed)

    def selector_all(self, order=8):
        return bytearray(b"\x01") * (1 << order)

    def test_batches_cover_selected_states_in_order(self):
        walk = self.walk()
        selector = bytearray(1 << 8)
        for state in range(1, 1 << 8):
            selector[state] = state % 3 == 0
        batches = list(TargetBatchIterator(walk, selector, batch_size=7))
        flattened = [state for batch in batches for state in batch]
        assert flattened == [s for s in walk if s % 3 == 0]
        assert all(len(batch) == 7 for batch in batches[:-1])
        assert 1 <= len(batches[-1]) <= 7

    def test_empty_selector_yields_nothing(self):
        batches = TargetBatchIterator(self.walk(), bytearray(1 << 8),
                                      batch_size=16)
        assert list(batches) == []

    def test_single_shot(self):
        batches = TargetBatchIterator(self.walk(),
                                      bytearray(b"\x01" * (1 << 8)),
                                      batch_size=64)
        first = [state for batch in batches for state in batch]
        assert len(first) == (1 << 8) - 1
        assert list(batches) == []

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            TargetBatchIterator(self.walk(), bytearray(1 << 8),
                                batch_size=0)


class TestShardRangesPartition:
    def space(self, lengths):
        allocator = PrefixAllocator()
        return ScanTargetSpace([allocator.allocate(length)
                                for length in lengths])

    @given(st.integers(min_value=1, max_value=40),
           st.lists(st.integers(min_value=22, max_value=28), min_size=1,
                    max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_partition_invariants(self, shards, lengths):
        space = self.space(lengths)
        ranges = space.shard_ranges(shards)
        # Contiguous, ordered, disjoint, and jointly exhaustive.
        assert ranges[0][0] == 0
        assert ranges[-1][1] == len(space)
        for (__, stop), (start, __unused) in zip(ranges, ranges[1:]):
            assert start == stop
        assert all(start < stop for start, stop in ranges)
        assert len(ranges) == min(shards, len(space))

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            self.space([24]).shard_ranges(0)


class TestRetrySchedule:
    def test_no_retries_single_attempt(self):
        assert retry_schedule(1.5, 0) == [1.5]

    def test_none_timeout_stays_none_across_attempts(self):
        assert retry_schedule(None, 3) == [None, None, None, None]

    def test_backoff_growth(self):
        assert retry_schedule(0.5, 2, backoff=3.0) == [0.5, 1.5, 4.5]

    def test_rtt_floor_dominates_small_timeouts(self):
        # A target whose round trip exceeds the configured timeout must
        # still get a chance to answer: the floor wins every attempt it
        # dominates, then exponential growth takes over.
        assert retry_schedule(0.1, 3, backoff=2.0, rtt_floor=0.45) == \
            [0.45, 0.45, 0.45, 0.8]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            retry_schedule(1.0, -1)

    def test_floor_dominating_every_attempt_keeps_backoff_growing(self):
        # Regression: when the floor exceeded even the last backed-off
        # attempt, per-attempt max() flattened the whole schedule to
        # [rtt_floor] * n — retries fired back-to-back with no spacing
        # growth.  The schedule must re-anchor the exponent at the floor.
        assert retry_schedule(0.1, 2, backoff=2.0, rtt_floor=1.0) == \
            [1.0, 2.0, 4.0]
        assert retry_schedule(0.01, 3, backoff=3.0, rtt_floor=0.5) == \
            [0.5, 1.5, 4.5, 13.5]

    def test_floor_equal_to_last_attempt_still_reanchors(self):
        # Boundary: base * backoff**retries == rtt_floor is the last
        # flat case; it must re-anchor too (strictly growing schedule).
        assert retry_schedule(0.25, 1, backoff=2.0, rtt_floor=0.5) == \
            [0.5, 1.0]

    def test_floor_partial_domination_unchanged(self):
        # The pre-existing partial case keeps its exact schedule: the
        # re-anchor only triggers when the floor swallows every attempt.
        assert retry_schedule(0.1, 3, backoff=2.0, rtt_floor=0.45) == \
            [0.45, 0.45, 0.45, 0.8]

    def test_zero_retries_never_reanchors(self):
        assert retry_schedule(0.1, 0, backoff=2.0, rtt_floor=1.0) == [1.0]
