"""Tests for CHAOS scanning, banner grabbing, fingerprinting, snooping,
and domain scanning."""

import pytest

from repro.resolvers import ResolverNode
from repro.resolvers.cache import CacheActivityModel
from repro.resolvers.devices import DEVICE_CATALOG
from repro.resolvers.resolver import MODE_REFUSED
from repro.resolvers.software import (
    SOFTWARE_CATALOG,
    STYLE_ERROR,
    STYLE_HIDDEN,
    STYLE_NO_VERSION,
    STYLE_VERSION,
)
from repro.scanner import (
    BannerGrabber,
    CacheSnoopingProber,
    ChaosScanner,
    DomainScanner,
    FingerprintMatcher,
)
from repro.scanner.banner import HostBanners
from repro.scanner.domainscan import DnsObservation
from repro.scanner.chaos import (
    OUTCOME_ERROR,
    OUTCOME_HIDDEN,
    OUTCOME_NO_VERSION,
    OUTCOME_SILENT,
    OUTCOME_VERSION,
)


@pytest.fixture
def world(mini):
    mini.builder.register_domain("example.com",
                                 {"example.com": ["198.18.0.1"]})
    return mini


def add_resolver(world, offset, **kwargs):
    ip = world.infra.address_at(40000 + offset)
    node = ResolverNode(ip, resolution_service=world.service, **kwargs)
    world.network.register(node)
    return node


class TestChaosScanner:
    def test_outcomes(self, world):
        software = SOFTWARE_CATALOG[0][0]
        nodes = {
            OUTCOME_VERSION: add_resolver(world, 1, software=software,
                                          chaos_style=STYLE_VERSION),
            OUTCOME_ERROR: add_resolver(world, 2, chaos_style=STYLE_ERROR),
            OUTCOME_NO_VERSION: add_resolver(world, 3,
                                             chaos_style=STYLE_NO_VERSION),
            OUTCOME_HIDDEN: add_resolver(world, 4,
                                         chaos_style=STYLE_HIDDEN),
        }
        scanner = ChaosScanner(world.network, world.client_ip)
        for expected, node in nodes.items():
            observation = scanner.probe(node.ip)
            assert observation.outcome == expected, expected

    def test_version_string_captured(self, world):
        software = SOFTWARE_CATALOG[0][0]
        node = add_resolver(world, 1, software=software,
                            chaos_style=STYLE_VERSION)
        observation = ChaosScanner(world.network,
                                   world.client_ip).probe(node.ip)
        assert observation.version_string == software.version_string

    def test_silent_for_dead_address(self, world):
        scanner = ChaosScanner(world.network, world.client_ip)
        observation = scanner.probe(world.infra.address_at(45000))
        assert observation.outcome == OUTCOME_SILENT

    def test_scan_filters_silent(self, world):
        node = add_resolver(world, 1, chaos_style=STYLE_ERROR)
        scanner = ChaosScanner(world.network, world.client_ip)
        observations = scanner.scan([node.ip,
                                     world.infra.address_at(45000)])
        assert len(observations) == 1


class TestBannerGrabbing:
    def test_grab_device_banners(self, world):
        node = add_resolver(world, 1,
                            device=DEVICE_CATALOG["zyxel-p-660hn-t1a"])
        grabber = BannerGrabber(world.network, world.client_ip)
        banners = grabber.grab(node.ip)
        assert banners.responded
        assert 21 in banners.banners
        assert "ZyXEL" in banners.all_text()
        # The device's web UI body is fetched too.
        assert banners.http_body and "ZyNOS" in banners.http_body

    def test_silent_device_not_included(self, world):
        node = add_resolver(world, 1,
                            device=DEVICE_CATALOG["silent-cpe"])
        grabber = BannerGrabber(world.network, world.client_ip)
        assert grabber.grab_all([node.ip]) == []


class TestFingerprinting:
    def make_banners(self, text, port=23):
        banners = HostBanners("1.2.3.4")
        banners.banners[port] = text
        return banners

    @pytest.mark.parametrize("text,hardware,os", [
        ("ZyXEL P-660HN\r\nPassword: ", "Router", "ZyNOS"),
        ("220 MikroTik FTP server ready", "Router", "RouterOS"),
        ("dm500plus login: ", "DVR", "Linux"),
        ("HTTP/1.0 200 OK\r\nServer: GoAhead-Webs", "Embedded", "Others"),
        ("BusyBox v1.19.4 built-in shell", "Embedded", "Linux"),
        ("220 Synology DS213 FTP server ready.", "NAS", "Linux"),
        ("SSH-2.0-OpenSSH_5.3 CentOS-5.8", "Server", "CentOS"),
        ("HTTP/1.1 200 OK\r\nServer: Microsoft-IIS/7.5", "Server",
         "Windows"),
        ("SSH-2.0-OpenSSH_6.2", "Unknown", "Unknown"),
    ])
    def test_rules(self, text, hardware, os):
        matcher = FingerprintMatcher()
        result = matcher.classify(self.make_banners(text))
        assert result[0] == hardware
        assert result[1] == os

    def test_catalog_devices_classified_consistently(self):
        # Every TCP-exposing catalog device must be fingerprinted back to
        # its own hardware category (or Unknown for the anon profiles).
        from repro.resolvers.devices import profiles_with_tcp
        matcher = FingerprintMatcher()
        for profile in profiles_with_tcp():
            banners = HostBanners("1.2.3.4")
            banners.banners.update(profile.banners)
            if profile.http_body:
                banners.http_body = profile.http_body
            hardware, os_name, __ = matcher.classify(banners)
            assert hardware == profile.hardware, profile.key
            assert os_name == profile.os, profile.key

    def test_classify_all(self):
        matcher = FingerprintMatcher()
        result = matcher.classify_all(
            [self.make_banners("220 Synology DS213 FTP server ready.")])
        assert result["1.2.3.4"][0] == "NAS"


class TestSnooping:
    def test_trace_shape_and_clock(self, world):
        activity = CacheActivityModel(
            CacheActivityModel.STYLE_NORMAL,
            tld_patterns={"com": (100.0, 0.0), "de": (5.0, 50.0)},
            ttl=7200)
        node = add_resolver(world, 1, activity=activity)
        prober = CacheSnoopingProber(world.network, world.client_ip,
                                     ("com", "de"), interval_minutes=60,
                                     duration_hours=3)
        start = world.clock.now
        traces = prober.run([node.ip])
        assert world.clock.now - start == 3 * 3600
        assert len(traces) == 1
        assert set(traces[0].observations) == {"com", "de"}
        assert len(traces[0].values_for("com")) == 4  # 0,1,2,3 hours

    def test_ttl_decays_between_probes(self, world):
        activity = CacheActivityModel(
            CacheActivityModel.STYLE_NORMAL,
            tld_patterns={"com": (10000.0, 0.0)}, ttl=50000)
        node = add_resolver(world, 1, activity=activity)
        prober = CacheSnoopingProber(world.network, world.client_ip,
                                     ("com",), duration_hours=2)
        trace = prober.run([node.ip])[0]
        values = trace.values_for("com")
        assert values[0] > values[1] > values[2]

    def test_unreachable_records_none(self, world):
        node = add_resolver(world, 1, activity=CacheActivityModel(
            CacheActivityModel.STYLE_UNREACHABLE))
        prober = CacheSnoopingProber(world.network, world.client_ip,
                                     ("com",), duration_hours=1)
        trace = prober.run([node.ip])[0]
        assert not trace.answered_any()


class TestDomainScanner:
    def test_observation_fields(self, world):
        node = add_resolver(world, 1)
        scanner = DomainScanner(world.network, world.client_ip)
        observations = scanner.scan([node.ip], ["example.com"])
        assert len(observations) == 1
        observation = observations[0]
        assert observation.resolver_ip == node.ip
        assert observation.addresses == ["198.18.0.1"]
        assert observation.rcode == 0
        assert not observation.multiple_disagreeing

    def test_refused_mode_recorded(self, world):
        node = add_resolver(world, 2, response_mode=MODE_REFUSED)
        scanner = DomainScanner(world.network, world.client_ip)
        observations = scanner.scan([node.ip], ["example.com"])
        assert observations[0].rcode == 5

    def test_dead_resolver_absent(self, world):
        scanner = DomainScanner(world.network, world.client_ip)
        assert scanner.scan([world.infra.address_at(45001)],
                            ["example.com"]) == []

    def test_resolver_identity_attribution(self, world):
        # Two resolvers, same domain: observations must attribute by the
        # encoded resolver id even though query names are identical.
        first = add_resolver(world, 1)
        second = add_resolver(world, 2)
        scanner = DomainScanner(world.network, world.client_ip)
        observations = scanner.scan([first.ip, second.ip],
                                    ["example.com"])
        assert {o.resolver_ip for o in observations} == {first.ip,
                                                         second.ip}

    def test_disagreement_on_rcode_alone(self):
        # GFW NXDOMAIN injection: an injected NXDOMAIN followed by the
        # genuine empty NOERROR — both address lists empty — must still
        # count as disagreeing responses (regression: only the address
        # lists were compared, so rcode-only disagreement was missed).
        observation = DnsObservation(
            "example.com", "1.2.3.4", 3, [],
            all_responses=[(3, []), (0, [])])
        assert observation.multiple_disagreeing

    def test_disagreement_on_addresses(self):
        observation = DnsObservation(
            "example.com", "1.2.3.4", 0, ["6.6.6.6"],
            all_responses=[(0, ["6.6.6.6"]), (0, ["198.18.0.1"])])
        assert observation.multiple_disagreeing

    def test_agreeing_duplicates_not_flagged(self):
        observation = DnsObservation(
            "example.com", "1.2.3.4", 0, ["198.18.0.1"],
            all_responses=[(0, ["198.18.0.1"]), (0, ["198.18.0.1"])])
        assert not observation.multiple_disagreeing

    def test_ns_record_count(self, world):
        from repro.resolvers import NsOnlyBehavior
        node = add_resolver(world, 3, behaviors=[NsOnlyBehavior()])
        scanner = DomainScanner(world.network, world.client_ip)
        observation = scanner.scan([node.ip], ["example.com"])[0]
        assert observation.ns_record_count == 1
        assert observation.addresses == []
