"""Worker supervision: death recovery, narrow rescans, hung-worker kill."""

import os
import time

import pytest

from repro.faults import FaultPlan, FaultProfile
from repro.inetmodel import PrefixAllocator
from repro.netsim import SimClock
from repro.perf import PerfRegistry
from repro.scanner import ScanEngine, ScanTargetSpace
from repro.scanner.ipv4scan import ScanResult


class FakeNetwork:
    def __init__(self):
        self.clock = SimClock()
        self.udp_queries_sent = 0
        self.udp_queries_lost = 0
        self.udp_responses_corrupted = 0
        self.faults = None
        self.fault_counters = {}

    def install_faults(self, plan):
        self.faults = plan
        return plan


class FakeScanner:
    """Deterministic scanner double: 'responds' on every third index."""

    def __init__(self):
        self.network = FakeNetwork()
        self.perf = None
        self.scan_calls = []          # (start, stop) of every scan issued

    def scan(self, target_space, index_range=None):
        start, stop = (index_range if index_range is not None
                       else (0, len(target_space)))
        self.scan_calls.append((start, stop))
        result = ScanResult(self.network.clock.now)
        for index in range(start, stop):
            result.probes_sent += 1
            self.network.udp_queries_sent += 1
            if index % 3 == 0:
                ip = target_space.ip_at(index)
                result.record(ip, index % 2, ip)
        return result


def fake_space():
    return ScanTargetSpace([PrefixAllocator().allocate(24)])


def install_kills(scanner, kills):
    scanner.network.install_faults(
        FaultPlan(FaultProfile(kill_shards=kills), seed=1))


class TestDeathRecovery:
    def test_single_death_retried_same_range(self):
        scanner = FakeScanner()
        install_kills(scanner, {1: 1})   # shard 1's first worker dies
        sequential = FakeScanner().scan(fake_space())
        perf = PerfRegistry()
        engine = ScanEngine(scanner, shards=3, perf=perf)
        result = engine.scan(fake_space())
        assert result.responders == sequential.responders
        assert result.probes_sent == sequential.probes_sent
        assert perf.counter("worker_deaths") == 1
        assert perf.counter("shard_retries") == 1
        assert perf.counter("shard_splits") == 0
        assert perf.counter("shard_failures") == 0
        # The retry ran in a fresh worker, not in the parent process.
        assert scanner.scan_calls == []

    def test_second_death_splits_shard(self):
        scanner = FakeScanner()
        install_kills(scanner, {0: 2})
        sequential = FakeScanner().scan(fake_space())
        perf = PerfRegistry()
        engine = ScanEngine(scanner, shards=2, perf=perf)
        result = engine.scan(fake_space())
        assert result.responders == sequential.responders
        assert result.probes_sent == sequential.probes_sent
        assert perf.counter("worker_deaths") == 2
        assert perf.counter("shard_retries") == 1
        assert perf.counter("shard_splits") == 1
        assert perf.counter("shard_failures") == 0
        halves = [e for e in result.provenance if e["status"] == "split"]
        assert len(halves) == 2
        assert all(e["shard"] == 0 for e in halves)

    def test_persistent_deaths_rescued_narrowly(self):
        """A shard whose workers always die falls back to an in-process
        scan of just its own index range — never the whole space."""
        scanner = FakeScanner()
        install_kills(scanner, {2: 99})
        space = fake_space()
        sequential = FakeScanner().scan(space)
        ranges = space.shard_ranges(3)
        perf = PerfRegistry()
        engine = ScanEngine(scanner, shards=3, perf=perf)
        result = engine.scan(space)
        assert result.responders == sequential.responders
        assert result.probes_sent == sequential.probes_sent
        # Retry + two split halves all died: 4 deaths, one rescue origin.
        assert perf.counter("worker_deaths") == 4
        assert perf.counter("shard_failures") == 1
        # The parent only ever scanned inside the dead shard's range —
        # the narrow-rescan regression pin.
        start, stop = ranges[2]
        assert scanner.scan_calls
        for called_start, called_stop in scanner.scan_calls:
            assert start <= called_start < called_stop <= stop
        covered = sorted(scanner.scan_calls)
        assert covered[0][0] == start and covered[-1][1] == stop
        rescued = [e for e in result.provenance
                   if e["status"] == "rescued"]
        assert rescued and all(e["mode"] == "in-process" for e in rescued)

    def test_provenance_records_every_work_item(self):
        scanner = FakeScanner()
        install_kills(scanner, {0: 1})
        engine = ScanEngine(scanner, shards=3)
        result = engine.scan(fake_space())
        assert len(result.provenance) == 3
        statuses = sorted(e["status"] for e in result.provenance)
        assert statuses == ["ok", "ok", "retried"]
        assert len(result.degraded_shards) == 1
        assert result.degraded_shards[0]["shard"] == 0

    def test_clean_run_provenance_all_ok(self):
        engine = ScanEngine(FakeScanner(), shards=4)
        result = engine.scan(fake_space())
        assert len(result.provenance) == 4
        assert all(e["status"] == "ok" for e in result.provenance)
        assert result.degraded_shards == []

    def test_fault_counters_ride_back_from_workers(self):
        scanner = FakeScanner()
        scanner.network.install_faults(
            FaultPlan(FaultProfile(kill_shards={1: 1}), seed=1))

        class CountingScanner(FakeScanner):
            def scan(self, target_space, index_range=None):
                self.network.fault_counters["synthetic"] = \
                    self.network.fault_counters.get("synthetic", 0) + 1
                return FakeScanner.scan(self, target_space, index_range)

        counting = CountingScanner()
        counting.network = scanner.network
        perf = PerfRegistry()
        engine = ScanEngine(counting, shards=3, perf=perf)
        engine.scan(fake_space())
        # One per completed worker (the killed worker died pre-scan, its
        # retry counted once).
        assert scanner.network.fault_counters["synthetic"] == 3
        assert perf.counter("fault_synthetic") == 3


class SlowScanner(FakeScanner):
    """Heartbeats once, then hangs (in the worker only) until killed."""

    supports_progress = True

    def __init__(self, parent_pid):
        super().__init__()
        self.parent_pid = parent_pid

    def scan(self, target_space, index_range=None, on_progress=None):
        if os.getpid() != self.parent_pid and index_range == (0, 64):
            if on_progress is not None:
                on_progress()
            time.sleep(60)
        return FakeScanner.scan(self, target_space, index_range)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
class TestHungWorkers:
    def test_hung_worker_killed_and_recovered(self):
        space = ScanTargetSpace([PrefixAllocator().allocate(25)])
        assert space.shard_ranges(2)[0] == (0, 64)
        sequential = FakeScanner().scan(space)
        perf = PerfRegistry()
        scanner = SlowScanner(os.getpid())
        engine = ScanEngine(scanner, shards=2, perf=perf,
                            heartbeat_timeout=0.5)
        started = time.monotonic()
        result = engine.scan(space)
        assert time.monotonic() - started < 30
        assert perf.counter("workers_hung") >= 1
        assert perf.counter("worker_deaths") >= 1
        assert result.responders == sequential.responders
        assert result.probes_sent == sequential.probes_sent

    def test_heartbeats_observed(self):
        perf = PerfRegistry()
        scanner = SlowScanner(os.getpid())
        engine = ScanEngine(scanner, shards=2, perf=perf,
                            heartbeat_timeout=0.5)
        engine.scan(ScanTargetSpace([PrefixAllocator().allocate(25)]))
        assert perf.counter("heartbeats_seen") >= 1
