"""Tests for the sharded domain-scan engine.

The keystone assertion: the sharded domain scan's concatenated
observation list is *bit-identical* to the sequential
``DomainScanner.scan`` — every field of every observation, in the same
order — for the shard counts named in the acceptance criteria, on a
full scenario with middleboxes and injected loss.
"""

import pytest

from repro.datasets import DOMAIN_SETS
from repro.faults import FaultPlan, FaultProfile
from repro.netsim import SimClock
from repro.perf import PerfRegistry
from repro.scanner import DomainScanEngine, DomainScanner
from repro.scanner.domainscan import DnsObservation
from repro.scenario import ScenarioConfig, build_scenario

SHARD_COUNTS = (1, 2, 4, 7)


def fingerprint(observations):
    """Every field of every observation, order-preserving."""
    return [(o.domain, o.resolver_ip, o.rcode, tuple(o.addresses),
             o.source_ip, o.ns_record_count,
             tuple((r, tuple(a)) for r, a in o.all_responses),
             o.injected_suspect)
            for o in observations]


class FakeNetwork:
    def __init__(self):
        self.clock = SimClock()
        self.udp_queries_sent = 0
        self.udp_queries_lost = 0
        self.udp_responses_corrupted = 0
        self.faults = None
        self.fault_counters = {}

    def install_faults(self, plan):
        self.faults = plan
        return plan


class FakeDomainScanner:
    """Deterministic double: answers for every even resolver index."""

    supports_progress = True

    def __init__(self):
        self.network = FakeNetwork()
        self.perf = None
        self.queries_sent = 0
        self.scan_calls = []          # (start, stop) of every scan issued

    def scan(self, resolver_ips, domains, index_range=None,
             on_progress=None):
        resolver_ips = list(resolver_ips)
        start, stop = (index_range if index_range is not None
                       else (0, len(resolver_ips)))
        self.scan_calls.append((start, stop))
        observations = []
        for resolver_id in range(start, stop):
            for domain in domains:
                self.queries_sent += 1
                self.network.udp_queries_sent += 1
                if resolver_id % 2 == 0:
                    observations.append(DnsObservation(
                        domain, resolver_ips[resolver_id], 0,
                        ["198.18.0.%d" % resolver_id]))
            if on_progress is not None:
                on_progress()
        return observations


RESOLVERS = ["10.0.0.%d" % i for i in range(10)]
DOMAINS = ["a.example", "b.example"]


class TestShardRanges:
    def test_partitions_every_index_once(self):
        for shards in (1, 2, 3, 7, 16):
            engine = DomainScanEngine(FakeDomainScanner(), shards=shards)
            covered = []
            for start, stop in engine.shard_ranges(10):
                assert start < stop
                covered.extend(range(start, stop))
            assert covered == list(range(10))

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            DomainScanEngine(FakeDomainScanner(), shards=0)


class TestForkPlumbing:
    def test_sharded_identical_to_sequential(self):
        sequential = FakeDomainScanner().scan(RESOLVERS, DOMAINS)
        for shards in SHARD_COUNTS:
            engine = DomainScanEngine(FakeDomainScanner(), shards=shards)
            assert fingerprint(engine.scan(RESOLVERS, DOMAINS)) \
                == fingerprint(sequential), shards

    def test_single_shard_runs_in_process(self):
        scanner = FakeDomainScanner()
        engine = DomainScanEngine(scanner, shards=1)
        engine.scan(RESOLVERS, DOMAINS)
        assert scanner.scan_calls == [(0, len(RESOLVERS))]
        assert engine.provenance == []

    def test_queries_sent_reconciled_from_workers(self):
        scanner = FakeDomainScanner()
        engine = DomainScanEngine(scanner, shards=4)
        engine.scan(RESOLVERS, DOMAINS)
        # Worker-side increments die with the fork; the parent counter
        # must still account for every query of every shard.
        assert scanner.queries_sent == len(RESOLVERS) * len(DOMAINS)
        # All work happened in forked workers, not the parent loop.
        assert scanner.scan_calls == []

    def test_provenance_covers_all_shards(self):
        engine = DomainScanEngine(FakeDomainScanner(), shards=3)
        engine.scan(RESOLVERS, DOMAINS)
        assert [e["status"] for e in engine.provenance] == ["ok"] * 3
        assert [(e["start"], e["stop"]) for e in engine.provenance] \
            == engine.shard_ranges(len(RESOLVERS))

    def test_heartbeats_seen(self):
        perf = PerfRegistry()
        engine = DomainScanEngine(FakeDomainScanner(), shards=2,
                                  perf=perf, heartbeat_timeout=30.0)
        engine.scan(RESOLVERS, DOMAINS)
        # One heartbeat per resolver, minus the final one per worker
        # when it coalesces with the result frame in a single read.
        assert perf.counter("heartbeats_seen") > 0

    def test_perf_counters_ride_back(self):
        perf = PerfRegistry()
        engine = DomainScanEngine(FakeDomainScanner(), shards=2,
                                  perf=perf)
        engine.scan(RESOLVERS, DOMAINS)
        assert perf.counter("domain_scans_run") == 1
        assert perf.seconds("domain_scan_wall") > 0
        assert perf.seconds("shard_wall") > 0


class TestDeathRecovery:
    def test_killed_worker_retried(self):
        scanner = FakeDomainScanner()
        scanner.network.install_faults(
            FaultPlan(FaultProfile(kill_shards={1: 1}), seed=1))
        sequential = FakeDomainScanner().scan(RESOLVERS, DOMAINS)
        perf = PerfRegistry()
        engine = DomainScanEngine(scanner, shards=3, perf=perf)
        observations = engine.scan(RESOLVERS, DOMAINS)
        assert fingerprint(observations) == fingerprint(sequential)
        assert perf.counter("worker_deaths") == 1
        assert perf.counter("shard_retries") == 1
        statuses = sorted(e["status"] for e in engine.provenance)
        assert statuses == ["ok", "ok", "retried"]
        # The retry ran in a fresh worker, not in the parent process.
        assert scanner.scan_calls == []

    def test_repeated_deaths_rescued_in_process(self):
        scanner = FakeDomainScanner()
        scanner.network.install_faults(
            FaultPlan(FaultProfile(kill_shards={0: 99}), seed=1))
        sequential = FakeDomainScanner().scan(RESOLVERS, DOMAINS)
        perf = PerfRegistry()
        engine = DomainScanEngine(scanner, shards=2, perf=perf)
        observations = engine.scan(RESOLVERS, DOMAINS)
        assert fingerprint(observations) == fingerprint(sequential)
        assert perf.counter("shard_failures") == 1
        rescued = [e for e in engine.provenance
                   if e["status"] == "rescued"]
        assert rescued and all(e["mode"] == "in-process" for e in rescued)
        # Rescues stayed narrow: only the split halves of shard 0 ran in
        # the parent, never the full resolver list.
        full = (0, len(RESOLVERS))
        assert scanner.scan_calls and full not in scanner.scan_calls


@pytest.fixture(scope="module")
def scanned_world():
    """A small full scenario plus its sequential baseline scan."""
    scenario = build_scenario(ScenarioConfig(scale=120000, seed=5))
    resolvers = sorted(scenario.online_resolver_ips())[:24]
    domains = [d.name for d in DOMAIN_SETS["Banking"]] \
        + [d.name for d in DOMAIN_SETS["NX"]]
    scanner = DomainScanner(scenario.network,
                            scenario.pipeline_source_ip)
    # Flow-keyed fates are per clock epoch: each scan starts on a fresh
    # tick (the campaign normally advances the clock between scans).
    scenario.network.clock.advance(1)
    baseline = fingerprint(scanner.scan(resolvers, domains))
    # The scan must be replayable before shard comparisons mean
    # anything: warm caches from the first pass must not change answers.
    scenario.network.clock.advance(1)
    assert fingerprint(scanner.scan(resolvers, domains)) == baseline
    return scenario, resolvers, domains, baseline


class TestEngineOnScenario:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_scan_bit_identical(self, scanned_world, shards):
        scenario, resolvers, domains, baseline = scanned_world
        scanner = DomainScanner(scenario.network,
                                scenario.pipeline_source_ip)
        engine = DomainScanEngine(scanner, shards=shards)
        scenario.network.clock.advance(1)
        assert fingerprint(engine.scan(resolvers, domains)) == baseline

    def test_sharded_scan_under_loss(self, scanned_world):
        # Injected loss draws are flow-keyed, so even lossy scans must
        # replay identically across shard counts.
        scenario, resolvers, domains, __ = scanned_world
        scenario.network.install_faults(
            FaultPlan(FaultProfile(loss_rate=0.2), seed=9))
        try:
            scanner = DomainScanner(scenario.network,
                                    scenario.pipeline_source_ip)
            scenario.network.clock.advance(1)
            lossy_baseline = fingerprint(scanner.scan(resolvers, domains))
            engine = DomainScanEngine(scanner, shards=4)
            scenario.network.clock.advance(1)
            assert fingerprint(engine.scan(resolvers, domains)) \
                == lossy_baseline
        finally:
            scenario.network.install_faults(None)
