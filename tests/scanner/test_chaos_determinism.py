"""Chaos determinism: same seed + same fault plan => bit-identical scans.

The acceptance gate for the fault plane: with aggressive injected faults,
forced worker deaths, and retries enabled, the merged scan result must be
identical across reruns and across shard counts — every fault draw is a
pure function of (seed, flow, occurrence), never of scheduling.
"""

import pytest

from repro.faults import FaultPlan, parse_fault_spec
from repro.scenario import ScenarioConfig, build_scenario


SCALE = 60000
SEED = 3


def chaos_scan(shards, spec="aggressive", retries=1):
    """A fresh scenario, a fault plan, one sharded scan."""
    scenario = build_scenario(ScenarioConfig(scale=SCALE, seed=SEED))
    scenario.network.install_faults(
        FaultPlan(parse_fault_spec(spec), seed=SEED))
    campaign = scenario.new_campaign(verify=False, shards=shards,
                                     retries=retries)
    return campaign.run_week().result


def fingerprint(result):
    return (result.counts(), sorted(result.responders),
            sorted(result.divergent_sources),
            {rcode: sorted(ips) for rcode, ips in result.by_rcode.items()},
            result.probes_sent, result.retransmissions)


class TestChaosDeterminism:
    def test_rerun_is_bit_identical(self):
        assert fingerprint(chaos_scan(shards=1)) == \
            fingerprint(chaos_scan(shards=1))

    def test_sharded_identical_to_sequential_under_faults(self):
        sequential = chaos_scan(shards=1)
        sharded = chaos_scan(shards=3)
        assert fingerprint(sharded) == fingerprint(sequential)

    def test_forced_worker_deaths_do_not_change_results(self):
        """A run whose shard-0 workers are killed (recovered via retry)
        produces the identical merged result."""
        clean = chaos_scan(shards=3)
        killed = chaos_scan(shards=3, spec="aggressive,kill=0")
        assert fingerprint(killed) == fingerprint(clean)
        assert killed.degraded_shards
        assert any(entry["status"] == "retried"
                   for entry in killed.provenance)

    def test_sharded_reruns_identical_with_deaths(self):
        left = chaos_scan(shards=3, spec="aggressive,kill=1:2")
        right = chaos_scan(shards=3, spec="aggressive,kill=1:2")
        assert fingerprint(left) == fingerprint(right)
        assert left.provenance == right.provenance

    def test_faults_actually_fire(self):
        scenario = build_scenario(ScenarioConfig(scale=SCALE, seed=SEED))
        plan = scenario.network.install_faults(
            FaultPlan(parse_fault_spec("aggressive"), seed=SEED))
        assert plan.profile.loss_rate > 0
        campaign = scenario.new_campaign(verify=False, shards=2)
        campaign.run_week()
        counters = scenario.network.fault_counters
        assert counters.get("injected_loss", 0) > 0


@pytest.mark.parametrize("shards", [2, 5])
def test_any_shard_count_matches(shards):
    assert fingerprint(chaos_scan(shards=shards,
                                  spec="mild", retries=0)) == \
        fingerprint(chaos_scan(shards=1, spec="mild", retries=0))
