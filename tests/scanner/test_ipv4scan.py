"""Tests for the Internet-wide IPv4 scanner."""

import pytest

from repro.dnswire import Message
from repro.inetmodel import PrefixAllocator
from repro.netsim import Node
from repro.resolvers import ResolverNode
from repro.resolvers.resolver import MODE_REFUSED, MODE_SERVFAIL
from repro.scanner import Blacklist, Ipv4Scanner, ScanTargetSpace
from repro.scanner.ipv4scan import ScanResult

MEASUREMENT_DOMAIN = "scan.dnsstudy.edu"


@pytest.fixture
def world(mini):
    mini.builder.register_domain(MEASUREMENT_DOMAIN,
                                 wildcard_address="198.18.0.99")
    mini.service.wildcard_suffixes = (MEASUREMENT_DOMAIN,)
    pool = mini.allocator.allocate(24)
    for offset, kwargs in ((1, {}), (2, {}),
                           (3, {"response_mode": MODE_REFUSED}),
                           (4, {"response_mode": MODE_SERVFAIL}),
                           (5, {"answer_source_ip": pool.address_at(200)})):
        node = ResolverNode(pool.address_at(offset),
                            resolution_service=mini.service, **kwargs)
        mini.network.register(node)
    mini.pool = pool
    return mini


def make_scanner(world, **kwargs):
    return Ipv4Scanner(world.network, world.client_ip, MEASUREMENT_DOMAIN,
                       **kwargs)


class TestScan:
    def test_finds_all_resolvers_by_rcode(self, world):
        result = make_scanner(world).scan(ScanTargetSpace([world.pool]))
        pool = world.pool
        assert pool.address_at(1) in result.noerror
        assert pool.address_at(2) in result.noerror
        assert pool.address_at(3) in result.refused
        assert pool.address_at(4) in result.servfail
        assert result.counts()["all"] == 5

    def test_divergent_source_detected(self, world):
        result = make_scanner(world).scan(ScanTargetSpace([world.pool]))
        # Node 5 answers from a different source; attribution by the
        # encoded target still credits the probed address.
        assert world.pool.address_at(5) in result.noerror
        assert result.divergent_sources == {world.pool.address_at(5)}

    def test_probe_count_excludes_blacklist(self, world):
        blacklist = Blacklist(addresses=[world.pool.address_at(1)])
        result = make_scanner(world, blacklist=blacklist).scan(
            ScanTargetSpace([world.pool]))
        assert world.pool.address_at(1) not in result.responders
        assert result.probes_sent == world.pool.num_addresses - 1

    def test_scan_addresses(self, world):
        result = make_scanner(world).scan_addresses(
            [world.pool.address_at(1), world.pool.address_at(9)])
        assert result.probes_sent == 2
        assert result.counts()["noerror"] == 1

    def test_fast_query_wire_matches_message_codec(self, world):
        scanner = make_scanner(world)
        payload = scanner._query_wire(("r2a", "01020304"), 0x1234)
        reference = Message.query(
            "r2a.01020304.%s" % MEASUREMENT_DOMAIN, txid=0x1234).to_wire()
        assert payload == reference

    def test_deterministic_across_runs(self, world):
        first = make_scanner(world).scan(ScanTargetSpace([world.pool]))
        second = make_scanner(world).scan(ScanTargetSpace([world.pool]))
        assert first.responders == second.responders


class WrongTxidNode(Node):
    """Replies with the QR bit set but a flipped transaction id."""

    def handle_udp(self, packet, network):
        reply = bytearray(packet.payload)
        reply[0] ^= 0xFF
        reply[2] |= 0x80
        return bytes(reply)


class QueryEchoNode(Node):
    """Reflects the query unchanged (QR still 0) — not a response."""

    def handle_udp(self, packet, network):
        return packet.payload


class GarbageNode(Node):
    """Replies with a payload too short to be a DNS header."""

    def handle_udp(self, packet, network):
        return b"\x00\x01\x02"


class TestResponseTriage:
    """Regression tests for the wire-level response fast path: the
    header-peek triage must reject exactly what the full parser did."""

    def _scan(self, world, node):
        world.network.register(node)
        return make_scanner(world).scan(ScanTargetSpace([world.pool]))

    def test_mismatched_txid_ignored(self, world):
        bad_ip = world.pool.address_at(9)
        result = self._scan(world, WrongTxidNode(bad_ip))
        assert bad_ip not in result.responders
        assert world.pool.address_at(1) in result.responders

    def test_echoed_query_ignored(self, world):
        bad_ip = world.pool.address_at(9)
        result = self._scan(world, QueryEchoNode(bad_ip))
        assert bad_ip not in result.responders

    def test_corrupted_short_payload_dropped(self, world):
        bad_ip = world.pool.address_at(9)
        result = self._scan(world, GarbageNode(bad_ip))
        assert bad_ip not in result.responders
        # The garbage host was still probed — it just never counts.
        assert result.probes_sent == world.pool.num_addresses

    def test_divergent_source_still_recorded(self, world):
        result = make_scanner(world).scan(ScanTargetSpace([world.pool]))
        divergent = world.pool.address_at(5)
        assert divergent in result.responders
        assert divergent in result.divergent_sources


class TestScanTargetSpace:
    def test_spans_prefixes(self):
        allocator = PrefixAllocator()
        first = allocator.allocate(28)
        second = allocator.allocate(28)
        space = ScanTargetSpace([first, second])
        assert len(space) == 32
        assert space.ip_at(0) == first.address_at(0)
        assert space.ip_at(16) == second.address_at(0)
        assert space.ip_at(31) == second.address_at(15)

    def test_out_of_range(self):
        space = ScanTargetSpace([PrefixAllocator().allocate(28)])
        with pytest.raises(IndexError):
            space.ip_at(16)
        with pytest.raises(IndexError):
            space.ip_at(-1)


class TestScanResult:
    def test_record_and_counts(self):
        result = ScanResult(0.0)
        result.record("1.1.1.1", 0, "1.1.1.1")
        result.record("1.1.1.2", 5, "9.9.9.9")
        counts = result.counts()
        assert counts == {"all": 2, "noerror": 1, "refused": 1,
                          "servfail": 0}
        assert result.divergent_sources == {"1.1.1.2"}
