"""Tests for the fine-grained popularity estimation extension."""

import pytest

from repro.resolvers import ResolverNode
from repro.resolvers.cache import CacheActivityModel
from repro.scanner.popularity import (
    CLASS_HEAVY,
    CLASS_IDLE,
    CLASS_LIGHT,
    CLASS_MODERATE,
    PopularityEstimate,
    PopularityProber,
)


@pytest.fixture
def world(mini):
    return mini


def add_resolver(world, gap, ttl=3600, tlds=("com",), style=None):
    patterns = {tld: (gap, 0.0) for tld in tlds}
    activity = CacheActivityModel(
        style or CacheActivityModel.STYLE_NORMAL,
        tld_patterns=patterns, ttl=ttl)
    node = ResolverNode(world.infra.address_at(43000),
                        resolution_service=world.service,
                        activity=activity)
    world.network.register(node)
    return node


def make_prober(world, tlds=("com",)):
    return PopularityProber(world.network, world.client_ip, tlds,
                            fine_interval=0.5, coarse_interval=300.0,
                            fine_window=20.0)


class TestEstimate:
    def test_heavy_resolver(self, world):
        node = add_resolver(world, gap=2.0)
        estimate = make_prober(world).estimate(node.ip, cycles=2)
        assert estimate.gaps, "re-add gaps must be observed"
        assert estimate.mean_gap == pytest.approx(2.0, abs=1.5)
        assert estimate.popularity_class == CLASS_HEAVY
        assert estimate.request_rate_hz > 0.2

    def test_moderate_resolver(self, world):
        node = add_resolver(world, gap=120.0)
        estimate = make_prober(world).estimate(node.ip, cycles=1)
        assert estimate.gaps
        assert estimate.mean_gap == pytest.approx(120.0, rel=0.2)
        assert estimate.popularity_class == CLASS_MODERATE

    def test_idle_resolver(self, world):
        node = add_resolver(world, gap=0.0,
                            style=CacheActivityModel.STYLE_IDLE)
        estimate = make_prober(world).estimate(node.ip, cycles=1)
        assert estimate.popularity_class == CLASS_IDLE
        assert estimate.request_rate_hz == 0.0

    def test_silent_resolver(self, world):
        prober = make_prober(world)
        estimate = prober.estimate(world.infra.address_at(43999),
                                   cycles=1)
        assert estimate.popularity_class == CLASS_IDLE
        assert not estimate.gaps

    def test_gap_ordering_distinguishes_load(self, world):
        busy = add_resolver(world, gap=1.0)
        busy_estimate = make_prober(world).estimate(busy.ip, cycles=2)
        world.network.unregister(busy.ip)
        quiet = add_resolver(world, gap=300.0)
        quiet_estimate = make_prober(world).estimate(quiet.ip, cycles=1)
        assert busy_estimate.mean_gap < quiet_estimate.mean_gap


class TestEstimateObject:
    def test_classes(self):
        heavy = PopularityEstimate("1.1.1.1", [1.0, 3.0], ["com"], 2)
        assert heavy.popularity_class == CLASS_HEAVY
        moderate = PopularityEstimate("1.1.1.1", [120.0], ["com"], 1)
        assert moderate.popularity_class == CLASS_MODERATE
        light = PopularityEstimate("1.1.1.1", [5000.0], ["com"], 1)
        assert light.popularity_class == CLASS_LIGHT
        idle = PopularityEstimate("1.1.1.1", [], ["com"], 0)
        assert idle.popularity_class == CLASS_IDLE

    def test_rate(self):
        estimate = PopularityEstimate("1.1.1.1", [2.0, 2.0], ["com"], 2)
        assert estimate.request_rate_hz == pytest.approx(0.5)
