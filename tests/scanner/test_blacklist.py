"""Tests for the scan blacklist."""

from repro.netsim import Ipv4Network
from repro.scanner import Blacklist


def test_network_membership():
    blacklist = Blacklist(networks=["10.5.0.0/16"])
    assert "10.5.1.2" in blacklist
    assert "10.6.0.1" not in blacklist


def test_address_membership():
    blacklist = Blacklist(addresses=["1.2.3.4"])
    assert "1.2.3.4" in blacklist
    assert "1.2.3.5" not in blacklist


def test_incremental_adds():
    blacklist = Blacklist()
    blacklist.add_network(Ipv4Network("20.0.0.0/24"))
    blacklist.add_network("30.0.0.0/24")
    blacklist.add_address("40.0.0.1")
    assert "20.0.0.9" in blacklist
    assert "30.0.0.9" in blacklist
    assert "40.0.0.1" in blacklist


def test_count_upper_bound():
    blacklist = Blacklist(networks=["20.0.0.0/24"], addresses=["1.1.1.1"])
    assert blacklist.blacklisted_address_count == 257


def test_accepts_ints():
    from repro.netsim.address import ip_to_int
    blacklist = Blacklist(addresses=[ip_to_int("1.2.3.4")])
    assert ip_to_int("1.2.3.4") in blacklist
    assert "1.2.3.4" in blacklist
