"""The adaptive pacing controller: plan purity, AIMD dynamics, CLI.

``build_pacing_plan`` is a pure recurrence — these tests drive it with
stub defense boxes to pin the ramp/backoff/breaker/budget behaviour,
then check the scanner records planned suppressions as first-class
coverage degradation.
"""

import pytest

from repro.cli import build_parser
from repro.netsim.defense import (
    CAUSE_BLOCKLISTED,
    CAUSE_RATE_LIMITED,
    TokenBucketRateLimiter,
)
from repro.scanner.pacing import (
    PacingConfig,
    build_pacing_plan,
    defense_plane,
    normalize_pacing,
)

BASE = 0x0A000000            # 10.0.0.0
MASK24 = 0xFFFFFF00
IDENTITY = 0x5EED


class StubBox:
    """A defense box whose fate is a plain threshold on the rate."""

    def __init__(self, drop_above=None, cause=CAUSE_RATE_LIMITED,
                 always=False, span=None):
        self.drop_above = drop_above
        self.cause = cause
        self.always = always
        self.span = span

    def probe_fate(self, src_int, dst_int, rate_bucket):
        if self.always:
            return self.cause
        if rate_bucket is None or rate_bucket > self.drop_above:
            return self.cause
        return None

    def ban_span(self, src_int, window_base):
        return self.span


def plan_over(boxes_ranges, count=512, config=None, base=BASE):
    """Run the recurrence over ``count`` contiguous targets."""
    addresses = list(range(base, base + count))
    walk = list(range(count))     # state k -> address k: identity walk
    selector = bytearray([1]) * count
    return build_pacing_plan(boxes_ranges, 0x7F000001, IDENTITY, walk,
                             selector, addresses,
                             config or PacingConfig())


class TestNormalizePacing:
    def test_off_spellings(self):
        assert normalize_pacing(None) is None
        assert normalize_pacing(False) is None
        assert normalize_pacing("off") is None

    def test_adaptive_spellings(self):
        assert isinstance(normalize_pacing("adaptive"), PacingConfig)
        assert isinstance(normalize_pacing(True), PacingConfig)
        config = PacingConfig(initial_pps=42.0)
        assert normalize_pacing(config) is config

    def test_max_pps_override_clamps(self):
        config = normalize_pacing("adaptive", max_pps=50.0)
        assert config.max_pps == 50.0
        assert config.initial_pps == 50.0
        assert config.min_pps <= 50.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            normalize_pacing("fast")
        with pytest.raises(ValueError):
            normalize_pacing("adaptive", max_pps=-1)
        with pytest.raises(ValueError):
            PacingConfig(decrease=1.5)


class TestAimdRecurrence:
    def test_clean_window_ramps_additively_to_max(self):
        box = StubBox(drop_above=10 ** 9)
        config = PacingConfig(initial_pps=100.0, additive_pps=4.0,
                              max_pps=300.0)
        plan = plan_over([(box, [(BASE, MASK24)])], count=256,
                         config=config)
        rates = [plan.rates[BASE + k] for k in range(256)]
        assert rates[0] == 100
        assert rates[:3] == [100, 104, 108]
        assert rates == sorted(rates)
        assert rates[-1] == 300
        assert not plan.suppressed
        assert plan.signals == 0

    def test_signals_converge_below_defense_threshold(self):
        box = StubBox(drop_above=200)
        plan = plan_over([(box, [(BASE, MASK24)])], count=256)
        # The learned ceiling ratchets below the threshold: after
        # convergence every declared rate is clean, and the tail of the
        # window is probed (not suppressed).
        assert 0 < plan.signals < PacingConfig().error_budget
        assert not plan.suppressed
        [window] = plan.windows
        assert window["ceiling"] is not None
        assert window["ceiling"] <= 200
        assert window["pps"] <= 200
        tail = [plan.rates[BASE + k] for k in range(200, 256)]
        assert all(rate <= 200 for rate in tail)

    def test_error_budget_darkens_hostile_window(self):
        box = StubBox(always=True)
        config = PacingConfig(error_budget=10)
        plan = plan_over([(box, [(BASE, MASK24)])], count=256,
                         config=config)
        [window] = plan.windows
        assert window["dark"] == CAUSE_RATE_LIMITED
        assert window["signals"] == 10
        assert plan.suppressed_count == 256 - window["sent"]
        assert set(plan.suppressed.values()) == {CAUSE_RATE_LIMITED}

    def test_blocklist_ban_suppresses_seeded_span_then_reenters(self):
        box = StubBox(drop_above=150, cause=CAUSE_BLOCKLISTED, span=40)
        config = PacingConfig(initial_pps=100.0, additive_pps=25.0,
                              cooloff_jitter=8)
        plan = plan_over([(box, [(BASE, MASK24)])], count=256,
                         config=config)
        assert plan.suppressed
        assert set(plan.suppressed.values()) == {CAUSE_BLOCKLISTED}
        [window] = plan.windows
        # Each ban suppresses span + jitter targets; jitter < 8.
        assert window["suppressed"] >= 40
        # Re-entry happened: targets after the first ban span were probed.
        banned = sorted(value - BASE for value in plan.suppressed)
        assert window["sent"] + window["suppressed"] == 256
        assert banned[0] < 256 - 1 and window["sent"] > banned[0]

    def test_windows_partition_by_defense_domain(self):
        # A hard-hostile range and a clean range inside the same /16:
        # the hostile range's ban/budget must never suppress the clean
        # range's targets.
        hostile = StubBox(always=True)
        friendly = StubBox(drop_above=10 ** 9)
        config = PacingConfig(error_budget=5)
        plan = plan_over(
            [(hostile, [(BASE, MASK24)]),
             (friendly, [(BASE + 256, MASK24)])],
            count=512, config=config)
        assert len(plan.windows) == 2
        assert all(BASE <= value < BASE + 256 for value in plan.suppressed)
        assert all(BASE + 256 + k in plan.rates for k in range(256))

    def test_plan_is_deterministic(self):
        box = StubBox(drop_above=180)
        one = plan_over([(box, [(BASE, MASK24)])])
        two = plan_over([(box, [(BASE, MASK24)])])
        assert one.rates == two.rates
        assert one.suppressed == two.suppressed
        assert one.windows == two.windows

    def test_window_rates_feed_histogram(self):
        box = StubBox(drop_above=10 ** 9)
        plan = plan_over([(box, [(BASE, MASK24)])])
        assert plan.window_rates() == [entry["pps"]
                                       for entry in plan.windows]


class TestDefensePlane:
    def test_collects_armed_defense_boxes(self, mini):
        net = mini.allocator.allocate(24)
        box = TokenBucketRateLimiter([net])
        dormant = TokenBucketRateLimiter([net], active_after=1e9)
        mini.network.add_middlebox(box)
        mini.network.add_middlebox(dormant)
        plane = defense_plane(mini.network, mini.client_ip)
        assert plane == [(box, [(net.base, net.mask)])]

    def test_ignores_classic_middleboxes(self, mini):
        from repro.netsim.middlebox import DnsIngressFilter
        net = mini.allocator.allocate(24)
        mini.network.add_middlebox(DnsIngressFilter([net]))
        assert defense_plane(mini.network, mini.client_ip) == []


class TestCliFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["scan"])
        assert args.pacing == "off"
        assert args.max_pps is None
        assert args.backoff == 2.0

    @pytest.mark.parametrize("command", ["scan", "campaign", "fullstudy"])
    def test_flags_parse_on_scan_commands(self, command):
        args = build_parser().parse_args(
            [command, "--pacing", "adaptive", "--max-pps", "500",
             "--backoff", "1.5"])
        assert args.pacing == "adaptive"
        assert args.max_pps == 500.0
        assert args.backoff == 1.5

    def test_unknown_pacing_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "--pacing", "warp"])
