"""Tests for the scan identity encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.dnswire.name import normalize_name
from repro.scanner.encoding import (
    MAX_RESOLVER_ID,
    ResolverIdCodec,
    decode_target_ip,
    encode_target_qname,
)

DOMAIN = "scan.dnsstudy.edu"


class TestTargetEncoding:
    def test_roundtrip(self):
        qname = encode_target_qname("203.5.113.7", DOMAIN, probe_id=42)
        assert decode_target_ip(qname, DOMAIN) == "203.5.113.7"

    def test_qname_shape(self):
        qname = encode_target_qname("1.2.3.4", DOMAIN, probe_id=0xAB)
        assert qname == "rab.01020304.%s" % DOMAIN

    def test_decode_rejects_foreign_domain(self):
        assert decode_target_ip("r1.01020304.other.example",
                                DOMAIN) is None

    def test_decode_rejects_bad_hex(self):
        assert decode_target_ip("r1.zzzz.%s" % DOMAIN, DOMAIN) is None

    def test_decode_rejects_wrong_label_count(self):
        assert decode_target_ip("a.b.c.%s" % DOMAIN, DOMAIN) is None

    def test_decode_case_insensitive(self):
        qname = encode_target_qname("1.2.3.4", DOMAIN).upper()
        assert decode_target_ip(qname, DOMAIN) == "1.2.3.4"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip_property(self, value):
        from repro.netsim.address import int_to_ip
        ip = int_to_ip(value)
        assert decode_target_ip(encode_target_qname(ip, DOMAIN),
                                DOMAIN) == ip


class TestResolverIdCodec:
    def test_roundtrip_via_port(self):
        codec = ResolverIdCodec()
        txid, port, qname = codec.encode(1234567, "facebook.com")
        assert codec.decode(txid, port, qname) == 1234567

    def test_txid_and_port_split(self):
        codec = ResolverIdCodec(base_port=33000)
        resolver_id = (3 << 16) | 0xBEEF
        txid, port, __ = codec.encode(resolver_id, "facebook.com")
        assert txid == 0xBEEF
        assert port == 33003

    def test_0x20_fallback_when_port_rewritten(self):
        # Some resolvers change the destination port of the response;
        # the case pattern of the echoed question recovers the high bits.
        codec = ResolverIdCodec()
        resolver_id = (0b101010101 << 16) | 0x1234
        txid, __, qname = codec.encode(resolver_id, "facebook.com")
        assert codec.decode(txid, 53, qname) == resolver_id

    def test_case_pattern_normalizes(self):
        codec = ResolverIdCodec()
        __, __, qname = codec.encode((0b111 << 16) | 1, "facebook.com")
        assert normalize_name(qname) == "facebook.com"
        assert qname != "facebook.com"  # some letters upper-cased

    def test_id_out_of_range(self):
        codec = ResolverIdCodec()
        with pytest.raises(ValueError):
            codec.encode(MAX_RESOLVER_ID + 1, "x.com")

    def test_bad_base_port(self):
        with pytest.raises(ValueError):
            ResolverIdCodec(base_port=65500)
        with pytest.raises(ValueError):
            ResolverIdCodec(base_port=80)

    @given(st.integers(min_value=0, max_value=MAX_RESOLVER_ID))
    def test_roundtrip_property(self, resolver_id):
        codec = ResolverIdCodec()
        txid, port, qname = codec.encode(resolver_id, "youtube.com")
        assert codec.decode(txid, port, qname) == resolver_id

    @given(st.integers(min_value=0, max_value=MAX_RESOLVER_ID))
    def test_0x20_fallback_property(self, resolver_id):
        codec = ResolverIdCodec()
        txid, __, qname = codec.encode(resolver_id, "wikipedia.org")
        # 'wikipediaorg' has 12 letters >= 9 bits: full recovery.
        assert codec.decode(txid, 99, qname) == resolver_id

    def test_short_domain_port_still_works(self):
        codec = ResolverIdCodec()
        resolver_id = (0x1FF << 16) | 7
        txid, port, qname = codec.encode(resolver_id, "qq.com")
        assert codec.decode(txid, port, qname) == resolver_id
