"""Tests for the sharded scan engine.

The keystone assertion: a sharded scan's merged result is *identical* to
a sequential scan — same counts, responders, divergent sources, and
probe count — on a full scenario with middleboxes and packet loss.
"""

import pytest

from repro.netsim import SimClock
from repro.scanner import ScanEngine, ScanTargetSpace
from repro.scanner.ipv4scan import ScanResult, merge_scan_results
from repro.inetmodel import PrefixAllocator
from repro.perf import PerfRegistry
from repro.scenario import ScenarioConfig, build_scenario


class FakeNetwork:
    def __init__(self):
        self.clock = SimClock()
        self.udp_queries_sent = 0
        self.udp_queries_lost = 0
        self.udp_responses_corrupted = 0


class FakeScanner:
    """Deterministic scanner double: 'responds' on every third index."""

    def __init__(self):
        self.network = FakeNetwork()
        self.perf = None

    def scan(self, target_space, index_range=None):
        start, stop = (index_range if index_range is not None
                       else (0, len(target_space)))
        result = ScanResult(self.network.clock.now)
        for index in range(start, stop):
            result.probes_sent += 1
            self.network.udp_queries_sent += 1
            if index % 3 == 0:
                ip = target_space.ip_at(index)
                result.record(ip, index % 2, ip)
        return result


def fake_space():
    return ScanTargetSpace([PrefixAllocator().allocate(24)])


class TestShardRanges:
    def test_partitions_every_index_once(self):
        space = fake_space()
        for shards in (1, 2, 3, 7, 16):
            ranges = space.shard_ranges(shards)
            covered = []
            for start, stop in ranges:
                assert start < stop
                covered.extend(range(start, stop))
            assert covered == list(range(len(space)))

    def test_small_space_yields_fewer_ranges(self):
        space = ScanTargetSpace([PrefixAllocator().allocate(30)])
        ranges = space.shard_ranges(16)
        assert len(ranges) == len(space) == 4
        assert ranges == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            fake_space().shard_ranges(0)


class TestMerge:
    def test_merge_equals_whole(self):
        scanner = FakeScanner()
        space = fake_space()
        whole = scanner.scan(space)
        parts = [scanner.scan(space, index_range=r)
                 for r in space.shard_ranges(5)]
        merged = merge_scan_results(0.0, parts)
        assert merged.probes_sent == whole.probes_sent
        assert merged.responders == whole.responders
        assert merged.by_rcode == whole.by_rcode
        assert merged.counts() == whole.counts()


class TestEngineForkPlumbing:
    def test_forked_matches_sequential(self):
        space = fake_space()
        sequential = FakeScanner().scan(space)
        engine = ScanEngine(FakeScanner(), shards=4)
        assert engine.can_fork
        result = engine.scan(space)
        assert result.probes_sent == sequential.probes_sent
        assert result.responders == sequential.responders
        assert result.by_rcode == sequential.by_rcode

    def test_counter_deltas_reconciled(self):
        space = fake_space()
        engine = ScanEngine(FakeScanner(), shards=4)
        engine.scan(space)
        # Workers cannot mutate the parent; the engine must apply their
        # traffic-counter deltas explicitly.
        assert engine.scanner.network.udp_queries_sent == len(space)

    def test_no_fork_fallback(self, monkeypatch):
        monkeypatch.setattr(ScanEngine, "can_fork", property(lambda s: False))
        space = fake_space()
        sequential = FakeScanner().scan(space)
        result = ScanEngine(FakeScanner(), shards=4).scan(space)
        assert result.responders == sequential.responders
        assert result.probes_sent == sequential.probes_sent

    def test_dead_workers_rescanned_in_process(self, monkeypatch):
        import repro.scanner.engine as engine_mod

        def broken_dumps(*args, **kwargs):
            raise RuntimeError("worker serialization broke")

        monkeypatch.setattr(engine_mod.pickle, "dumps", broken_dumps)
        space = fake_space()
        sequential = FakeScanner().scan(space)
        perf = PerfRegistry()
        engine = ScanEngine(FakeScanner(), shards=3, perf=perf)
        result = engine.scan(space)
        assert result.responders == sequential.responders
        assert result.probes_sent == sequential.probes_sent
        assert perf.counter("shard_failures") == 3

    def test_perf_instrumentation(self):
        perf = PerfRegistry()
        engine = ScanEngine(FakeScanner(), shards=2, perf=perf)
        engine.scan(fake_space())
        assert perf.counter("scans_run") == 1
        assert perf.seconds("scan_wall") > 0


class TestEngineOnScenario:
    """The acceptance check: sharded == sequential on the real scenario,
    with the default loss rate and all middleboxes active."""

    SCALE = 60000
    SEED = 3

    def _week(self, shards):
        scenario = build_scenario(ScenarioConfig(scale=self.SCALE,
                                                 seed=self.SEED))
        campaign = scenario.new_campaign(verify=False, shards=shards)
        return campaign.run_week().result

    def test_sharded_scan_identical_to_sequential(self):
        sequential = self._week(shards=1)
        sharded = self._week(shards=3)
        assert sharded.counts() == sequential.counts()
        assert sharded.responders == sequential.responders
        assert sharded.divergent_sources == sequential.divergent_sources
        assert sharded.by_rcode == sequential.by_rcode
        assert sharded.probes_sent == sequential.probes_sent
