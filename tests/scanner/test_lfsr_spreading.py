"""Property: LFSR scan order spreads probes across networks.

The paper adopts the LFSR so that "scanned networks receive a limited
number of DNS requests within a short time frame" — consecutive probes
must not walk a /24 sequentially.
"""

from repro.scanner.lfsr import LFSR


def consecutive_same_slash24(order, window=256):
    """How often consecutive scan targets fall in the same /24-sized
    index window (sequential scanning would score 1.0)."""
    lfsr = LFSR(order, seed=1)
    values = list(lfsr.sequence())
    hits = sum(1 for left, right in zip(values, values[1:])
               if left // window == right // window)
    return hits / (len(values) - 1)


def test_probes_spread_across_networks():
    for order in (12, 14, 16):
        rate = consecutive_same_slash24(order)
        # A random permutation would hit ~window/period; allow slack.
        expected_random = 256 / ((1 << order) - 1)
        assert rate < 12 * expected_random, \
            "order %d clusters consecutive probes (rate %.4f)" % (order,
                                                                  rate)


def test_burst_into_one_network_is_bounded():
    # Within any short probe burst, one /24-sized window receives only
    # a handful of probes.
    lfsr = LFSR(16, seed=1)
    values = list(lfsr.sequence())
    burst = values[:512]
    per_window = {}
    for value in burst:
        window = value // 256
        per_window[window] = per_window.get(window, 0) + 1
    assert max(per_window.values()) <= 8


def test_full_space_still_covered():
    lfsr = LFSR(12, seed=1)
    assert set(lfsr.sequence()) == set(range(1, 1 << 12))
