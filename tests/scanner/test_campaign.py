"""Tests for the weekly scan campaign runner."""

import pytest

from repro.inetmodel import ChurnModel, LeasedHost, PrefixAllocator
from repro.netsim.clock import DAY, WEEK
from repro.resolvers import ResolverNode
from repro.scanner import ScanCampaign, ScanTargetSpace


@pytest.fixture
def world(mini):
    mini.builder.register_domain("scan.dnsstudy.edu",
                                 wildcard_address="198.18.0.99")
    mini.service.wildcard_suffixes = ("scan.dnsstudy.edu",)
    pool = mini.allocator.allocate(26)
    churn = ChurnModel(mini.network, rdns=mini.rdns, seed=5)
    for index, lease in enumerate((None, None, DAY, 2 * WEEK)):
        ip = churn.allocate_address(pool)
        node = ResolverNode(ip, resolution_service=mini.service)
        mini.network.register(node)
        churn.add(LeasedHost(node, pool, lease_duration=lease))
    mini.pool = pool
    mini.churn = churn
    return mini


def make_campaign(world, verify=False):
    return ScanCampaign(
        world.network, world.churn, ScanTargetSpace([world.pool]),
        world.client_ip, "scan.dnsstudy.edu",
        verification_source_ip=(world.infra.address_at(777)
                                if verify else None))


class TestCampaign:
    def test_weekly_snapshots(self, world):
        campaign = make_campaign(world)
        campaign.run(3)
        assert len(campaign.snapshots) == 3
        assert [snapshot.week for snapshot in campaign.snapshots] == \
            [0, 1, 2]
        assert campaign.first() is campaign.snapshots[0]
        assert campaign.last() is campaign.snapshots[-1]

    def test_clock_advances_per_week(self, world):
        campaign = make_campaign(world)
        start = world.clock.now
        campaign.run(2)
        assert world.clock.now - start == 2 * WEEK

    def test_churn_applied_between_weeks(self, world):
        campaign = make_campaign(world)
        campaign.run(4)
        # The day-lease host must have changed address at least once:
        # its original address disappears from a later scan.
        first_responders = campaign.first().result.responders
        assert len(first_responders) == 4
        later = campaign.snapshots[-1].result.responders
        assert later != first_responders or world.churn.rebind_count > 0

    def test_verification_scan_only_when_requested(self, world):
        campaign = make_campaign(world, verify=True)
        campaign.run(2, verify_last=True)
        assert campaign.snapshots[0].verification is None
        assert campaign.snapshots[1].verification is not None

    def test_no_verifier_configured(self, world):
        campaign = make_campaign(world, verify=False)
        campaign.run(1, verify_last=True)
        assert campaign.snapshots[0].verification is None

    def test_results_stay_stable_for_static_hosts(self, world):
        campaign = make_campaign(world)
        campaign.run(5)
        static_ips = {host.node.ip for host in world.churn.hosts()
                      if not host.dynamic}
        for snapshot in campaign.snapshots:
            assert static_ips <= snapshot.result.responders


class TestCampaignErrors:
    def test_first_raises_before_any_week(self, world):
        from repro.scanner import CampaignError
        campaign = make_campaign(world)
        with pytest.raises(CampaignError) as error:
            campaign.first()
        assert "run at least one week" in str(error.value)

    def test_last_raises_before_any_week(self, world):
        from repro.scanner import CampaignError
        campaign = make_campaign(world)
        with pytest.raises(CampaignError):
            campaign.last()

    def test_campaign_error_is_a_runtime_error(self):
        from repro.scanner import CampaignError
        assert issubclass(CampaignError, RuntimeError)


class TestVerifyLast:
    def test_only_final_week_carries_verification(self, world):
        campaign = make_campaign(world, verify=True)
        campaign.run(3, verify_last=True)
        assert [snapshot.verification is None
                for snapshot in campaign.snapshots] == [True, True, False]

    def test_verification_scan_sees_the_same_responders(self, world):
        campaign = make_campaign(world, verify=True)
        campaign.run(2, verify_last=True)
        verification = campaign.last().verification
        assert verification.responders == campaign.last().result.responders
