"""Retry/backoff probing: schedule maths and loss recovery."""

import pytest

from repro.faults import FaultPlan, FaultProfile
from repro.perf import PerfRegistry
from repro.scanner.ipv4scan import retry_schedule
from repro.scenario import ScenarioConfig, build_scenario


class TestRetrySchedule:
    def test_no_timeout_means_indefinite_waits(self):
        assert retry_schedule(None, 2) == [None, None, None]

    def test_exponential_backoff(self):
        assert retry_schedule(1.0, 3, backoff=2.0) == [1.0, 2.0, 4.0, 8.0]

    def test_rtt_floor_applies(self):
        assert retry_schedule(0.1, 2, backoff=2.0, rtt_floor=0.3) == \
            [0.3, 0.3, pytest.approx(0.4)]

    def test_zero_retries_single_attempt(self):
        assert retry_schedule(0.5, 0) == [0.5]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            retry_schedule(1.0, -1)


class TestRetriesUnderLoss:
    """Retransmissions recover responders a single-probe scan loses."""

    SCALE = 60000
    SEED = 13

    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(ScenarioConfig(scale=self.SCALE,
                                             seed=self.SEED))

    def run_scan(self, scenario, retries, loss_rate=None):
        """One scan with clean flow counters; optional injected loss."""
        if loss_rate is not None:
            scenario.network.install_faults(FaultPlan(
                FaultProfile(loss_rate=loss_rate), seed=self.SEED))
        # The clock is frozen across these scans, so reset the per-epoch
        # flow-occurrence counters by hand: each run draws packet fates
        # from the same clean slate (what distinct weekly scans get).
        scenario.network._flow_counts.clear()
        try:
            perf = PerfRegistry()
            campaign = scenario.new_campaign(verify=False, perf=perf,
                                             retries=retries)
            result = campaign.engine.scan(scenario.target_space())
            return result, perf
        finally:
            scenario.network.faults = None

    def test_retries_recover_lost_responders(self, scenario):
        single, __ = self.run_scan(scenario, retries=0, loss_rate=0.30)
        robust, perf = self.run_scan(scenario, retries=2, loss_rate=0.30)
        assert len(robust.responders) > len(single.responders)
        # First attempts share the single-probe run's fate draws, so the
        # robust result strictly extends it.
        assert robust.responders >= single.responders
        assert robust.retransmissions > 0
        assert perf.counter("probe_retransmissions") == \
            robust.retransmissions

    def test_retransmissions_only_for_unanswered(self, scenario):
        robust, __ = self.run_scan(scenario, retries=2, loss_rate=0.30)
        first_attempts = robust.probes_sent - robust.retransmissions
        # Targets that answered early stop retrying: fewer than the
        # worst-case retries-per-target datagram count.
        assert 0 < robust.retransmissions < 2 * first_attempts

    def test_retries_superset_under_default_loss(self, scenario):
        baseline, __ = self.run_scan(scenario, retries=0)
        robust, __ = self.run_scan(scenario, retries=2)
        assert robust.responders >= baseline.responders

    def test_robust_path_deterministic(self, scenario):
        left, __ = self.run_scan(scenario, retries=2, loss_rate=0.30)
        right, __ = self.run_scan(scenario, retries=2, loss_rate=0.30)
        assert left.responders == right.responders
        assert left.by_rcode == right.by_rcode
        assert left.probes_sent == right.probes_sent
        assert left.retransmissions == right.retransmissions
