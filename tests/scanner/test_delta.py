"""Differential campaigns: carry-forward, audit probes, drift fallback.

Covers the delta-scanning plane (:mod:`repro.scanner.delta`): the churn
forecast, the week schedule (baseline / delta / scheduled and closing
full sweeps), carried-verdict provenance and pickle byte-stability, the
seeded audit sampler's shard invariance, and the escalation ladder —
window sweeps on local drift, a campaign-wide full sweep on global
drift — all reported, never silent.
"""

import pickle

import pytest

from repro.inetmodel import ChurnModel, LeasedHost
from repro.netsim.address import int_to_ip
from repro.netsim.clock import DAY, WEEK
from repro.resolvers import ResolverNode
from repro.scanner import (DeltaConfig, ScanCampaign, ScanResult,
                           ScanTargetSpace, normalize_delta)
from repro.scanner.delta import (CAUSE_CARRIED, CAUSE_DRIFT,
                                 CAUSE_FULL_SWEEP, CAUSE_GLOBAL_DRIFT,
                                 audit_sample, delta_summary)
from tests.conftest import MiniWorld


def build_delta_world(static_hosts=6, dynamic_hosts=4, pools=1, seed=5):
    """A MiniWorld with ``pools`` static /26 pools plus one dynamic one.

    Static hosts have no lease (never rebind — carriable); dynamic
    hosts run day leases, so their pool has churn events due every
    weekly step.
    """
    world = MiniWorld()
    world.builder.register_domain("scan.dnsstudy.edu",
                                  wildcard_address="198.18.0.99")
    world.service.wildcard_suffixes = ("scan.dnsstudy.edu",)
    churn = ChurnModel(world.network, rdns=world.rdns, seed=seed)

    def populate(pool, count, lease):
        hosts = []
        for _ in range(count):
            ip = churn.allocate_address(pool)
            node = ResolverNode(ip, resolution_service=world.service)
            world.network.register(node)
            host = LeasedHost(node, pool, lease_duration=lease)
            churn.add(host)
            hosts.append(host)
        return hosts

    world.static_pools = [world.allocator.allocate(26)
                          for _ in range(pools)]
    world.static_hosts = []
    for pool in world.static_pools:
        world.static_hosts.extend(populate(pool, static_hosts, None))
    world.dynamic_pool = world.allocator.allocate(26)
    world.dynamic_hosts = populate(world.dynamic_pool, dynamic_hosts, DAY)
    world.churn = churn
    return world


def make_campaign(world, delta, shards=1, perf=None):
    return ScanCampaign(
        world.network, world.churn,
        ScanTargetSpace(world.static_pools + [world.dynamic_pool]),
        world.client_ip, "scan.dnsstudy.edu", shards=shards, perf=perf,
        delta=delta)


# Every /26 pool is its own drift window, so escalation stays local to
# the pool whose hosts actually drifted.
def config(**kwargs):
    kwargs.setdefault("window_bits", 26)
    return DeltaConfig(**kwargs)


def delta_entries(result):
    return [entry for entry in result.provenance
            if entry.get("kind") == "delta"
            or entry.get("status", "ok") != "ok"]


def fingerprint(result):
    return (result.counts(), sorted(result.responders),
            sorted(result.divergent_sources), result.probes_sent,
            sorted(result.carried.items()),
            sorted(result.suppressed.items()),
            [tuple(sorted(e.items())) for e in delta_entries(result)])


class TestChurnForecast:
    def test_pending_churn_flags_dynamic_pool_only(self):
        world = build_delta_world()
        world.clock.advance(WEEK)
        pending = world.churn.pending_churn()
        assert pending == {world.dynamic_pool.cidr: len(world.dynamic_hosts)}

    def test_pending_churn_is_empty_before_any_lease_expires(self):
        world = build_delta_world()
        assert world.churn.pending_churn() == {}

    def test_pending_churn_sees_decommissions_and_arrivals(self):
        world = build_delta_world(static_hosts=2, dynamic_hosts=0)
        pool = world.static_pools[0]
        world.static_hosts[0].offline_after = WEEK
        offline = world.static_hosts[1]
        offline.online = False
        offline.online_after = WEEK
        world.clock.advance(WEEK)
        assert world.churn.pending_churn() == {pool.cidr: 2}

    def test_pending_churn_does_not_draw_rng_or_mutate(self):
        world = build_delta_world()
        state = world.churn._rng.getstate()
        world.clock.advance(WEEK)
        world.churn.pending_churn()
        world.churn.pending_churn(horizon=WEEK)
        assert world.churn._rng.getstate() == state
        assert world.churn.rebind_count == 0

    def test_pending_churn_on_empty_model_is_pure_nothing(self):
        # A model with no hosts at all: the forecast is {} at any
        # horizon and still consumes no RNG state.
        world = MiniWorld()
        churn = ChurnModel(world.network, rdns=world.rdns, seed=5)
        state = churn._rng.getstate()
        assert churn.pending_churn() == {}
        assert churn.pending_churn(horizon=52 * WEEK) == {}
        assert churn._rng.getstate() == state

    def test_pending_churn_week_zero_horizon_boundary(self):
        # At clock 0 nothing has expired (leases are jitter-stretched
        # past DAY), so a zero horizon flags nothing.  The deadline
        # comparison is inclusive: a horizon landing exactly on the
        # earliest lease expiry flags that one host, one just short of
        # it still flags nothing, and one at the latest expiry flags
        # the whole dynamic pool.  Either way the RNG is untouched.
        world = build_delta_world()
        state = world.churn._rng.getstate()
        expiries = sorted(host.expires_at for host in world.dynamic_hosts)
        assert expiries[0] >= DAY
        assert world.churn.pending_churn(horizon=0.0) == {}
        assert world.churn.pending_churn(horizon=expiries[0] - 1) == {}
        assert world.churn.pending_churn(horizon=expiries[0]) == {
            world.dynamic_pool.cidr: 1}
        assert world.churn.pending_churn(horizon=expiries[-1]) == {
            world.dynamic_pool.cidr: len(world.dynamic_hosts)}
        assert world.churn._rng.getstate() == state

    def test_pending_churn_all_members_flagged(self):
        # Every host of a static pool decommissions inside the horizon:
        # the forecast counts the pool's entire population, and asking
        # repeatedly neither mutates hosts nor draws RNG.
        world = build_delta_world(static_hosts=5, dynamic_hosts=0)
        pool = world.static_pools[0]
        for host in world.static_hosts:
            host.offline_after = WEEK
        state = world.churn._rng.getstate()
        world.clock.advance(WEEK)
        forecast = world.churn.pending_churn()
        assert forecast == {pool.cidr: len(world.static_hosts)}
        assert world.churn.pending_churn() == forecast
        assert world.churn._rng.getstate() == state
        assert all(host.online for host in world.static_hosts)


class TestWeekSchedule:
    def test_schedule_full_delta_and_closing_weeks(self):
        world = build_delta_world()
        campaign = make_campaign(world, config(full_sweep_every=3))
        campaign.run(5)
        modes = []
        for snapshot in campaign.snapshots:
            entry = delta_entries(snapshot.result)[0]
            modes.append(entry["mode"])
        # Week 0 baseline, 1-2 delta, 3 scheduled, 4 closing full sweep.
        assert modes == ["full", "delta", "delta", "full", "full"]
        for week in (0, 3, 4):
            entry = delta_entries(campaign.snapshots[week].result)[0]
            assert entry["cause"] == CAUSE_FULL_SWEEP

    def test_delta_off_keeps_results_byte_identical(self):
        plain = make_campaign(build_delta_world(), None)
        plain.run(3)
        again = make_campaign(build_delta_world(), None)
        again.run(3)
        for mine, theirs in zip(plain.snapshots, again.snapshots):
            assert pickle.dumps(mine.result) == pickle.dumps(theirs.result)
            assert not delta_entries(mine.result)

    def test_delta_week_cuts_probe_volume(self):
        world = build_delta_world(static_hosts=20, dynamic_hosts=4)
        campaign = make_campaign(world, config())
        campaign.run(4)
        full = campaign.snapshots[0].result.probes_sent
        # Weeks 1-2 are delta weeks; week 3 is the closing full sweep.
        for snapshot in campaign.snapshots[1:3]:
            assert snapshot.result.probes_sent * 5 <= full


class TestCarriedProvenance:
    def test_carried_rows_flagged_and_tallied(self):
        world = build_delta_world()
        campaign = make_campaign(world, config(audit_fraction=0.01))
        campaign.run(3)
        result = campaign.snapshots[1].result
        assert result.carried_targets > 0
        assert all(cause == CAUSE_CARRIED
                   for (_, cause) in result.carried)
        carried_rows = [row for row in result.iter_rows()
                        if row[2] & ScanResult.FLAG_CARRIED]
        assert len(carried_rows) == result.carried_targets
        for value, _, _ in carried_rows:
            assert any(prefix.contains_int(value)
                       for prefix in world.static_pools)
            # Carried verdicts still answer the historical set API.
            assert int_to_ip(value) in result.responders

    def test_carried_flag_does_not_leak_into_divergent_view(self):
        result = ScanResult(0.0)
        result.record_carried(0x0A000001, 0, 0, 0x0A000000, CAUSE_CARRIED)
        result.record_carried(0x0A000002, 0, ScanResult.FLAG_DIVERGENT,
                              0x0A000000, CAUSE_CARRIED)
        assert result.divergent_sources == {"10.0.0.2"}
        assert result.responders == {"10.0.0.1", "10.0.0.2"}

    def test_carried_pickles_canonically_and_merges(self):
        left = ScanResult(0.0)
        left.record_carried(1, 0, 0, 0, CAUSE_CARRIED)
        right = ScanResult(0.0)
        right.record_carried(1, 0, 0, 0, CAUSE_CARRIED)
        right.record_carried(2, 5, 0, 0, CAUSE_CARRIED)
        left.merge(right)
        assert left.carried == {(0, CAUSE_CARRIED): 3}
        restored = pickle.loads(pickle.dumps(left))
        assert restored.carried == left.carried
        assert restored.carried_targets == 3

    def test_empty_carried_keeps_historical_pickle_bytes(self):
        plain = ScanResult(1.0)
        plain.record_value(7, 0, False)
        assert "carried" not in plain.__getstate__()
        toured = ScanResult(1.0)
        toured.record_carried(7, 0, 0, 0, CAUSE_CARRIED)
        toured.carried.clear()
        toured._flags[0] = 0
        assert pickle.dumps(toured) == pickle.dumps(plain)


class TestAuditSampler:
    def test_sample_is_order_and_chunk_invariant(self):
        values = list(range(1000, 4000, 7))
        whole = audit_sample(0xDEAD, 42, values, 0.25)
        reversed_ = audit_sample(0xDEAD, 42, list(reversed(values)), 0.25)
        halves = (audit_sample(0xDEAD, 42, values[:200], 0.25)
                  | audit_sample(0xDEAD, 42, values[200:], 0.25))
        assert whole == reversed_ == halves
        assert 0 < len(whole) < len(values)

    def test_sample_varies_by_epoch_and_identity(self):
        values = list(range(5000))
        assert audit_sample(1, 1, values, 0.2) \
            != audit_sample(1, 2, values, 0.2)
        assert audit_sample(1, 1, values, 0.2) \
            != audit_sample(2, 1, values, 0.2)

    def test_full_fraction_audits_everything(self):
        values = [3, 5, 8]
        assert audit_sample(9, 9, values, 1.0) == set(values)

    @pytest.mark.parametrize("shards", [4])
    def test_delta_campaign_shard_invariant(self, shards):
        """Satellite: the audited set — and with it the whole delta
        week — must be identical at --shards 1 and 4."""
        sequential = make_campaign(build_delta_world(), config())
        sequential.run(4)
        sharded = make_campaign(build_delta_world(), config(),
                                shards=shards)
        sharded.run(4)
        for mine, theirs in zip(sequential.snapshots, sharded.snapshots):
            # Full-sweep weeks legitimately differ in engine work-item
            # logs (one entry per shard); everything measured must not.
            assert fingerprint(mine.result) == fingerprint(theirs.result)
            mode = delta_entries(mine.result)[0]["mode"]
            if mode == "delta":
                assert pickle.dumps(mine.result) == \
                    pickle.dumps(theirs.result)


class TestDriftEscalation:
    def test_window_drift_escalates_locally(self):
        # Four static pools, one spiked: its windows fail ~100% of
        # audits (over the 0.5 budget) while the aggregate share stays
        # ~25% (under it) — so the ladder stops at the window rung.
        world = build_delta_world(static_hosts=8, pools=4)
        campaign = make_campaign(world, config(audit_fraction=0.9,
                                               drift_budget=0.5))
        campaign.run(2)
        # Out-of-model spike: silently decommission one static pool's
        # hosts.  The forecast cannot see it; the audit probes must.
        spiked_pool = world.static_pools[0]
        for host in world.static_hosts:
            if host.pool is spiked_pool and host.online:
                world.churn.take_offline(host)
        snapshot = campaign.run_week()
        result = snapshot.result
        escalations = [entry for entry in result.provenance
                       if entry.get("status") == "delta_escalated"]
        assert escalations and all(
            entry["cause"] == CAUSE_DRIFT for entry in escalations)
        assert escalations[0]["window"] == spiked_pool.address_at(0)
        # No stale carried verdicts survive in the spiked pool...
        for value, _, flags in result.iter_rows():
            if spiked_pool.contains_int(value):
                assert not flags & ScanResult.FLAG_CARRIED
        # ...while the healthy pool still carries, and the degradation
        # is surfaced, not silent.
        assert any(world.static_pools[1].contains_int(window)
                   for (window, _) in result.carried)
        assert any(entry["status"] == "delta_escalated"
                   for entry in result.degraded_shards)

    def test_global_drift_falls_back_to_full_sweep(self):
        world = build_delta_world(static_hosts=8, pools=2)
        campaign = make_campaign(world, config(audit_fraction=0.9))
        campaign.run(2)
        for host in world.static_hosts:
            if host.online:
                world.churn.take_offline(host)
        snapshot = campaign.run_week()
        result = snapshot.result
        assert result.carried_targets == 0
        fallback = [entry for entry in result.provenance
                    if entry.get("status") == "delta_full_sweep"]
        assert fallback and fallback[0]["cause"] == CAUSE_GLOBAL_DRIFT
        # The sweep measured reality: no dead static host answers.
        for host in world.static_hosts:
            assert host.node.ip not in result.responders
        summary = delta_summary(campaign.snapshots)
        assert summary["global_escalations"] == 1

    def test_single_audit_failure_does_not_escalate(self):
        """One lost audit probe must not trigger a sweep: escalation
        needs min_audit_failures actual failures."""
        world = build_delta_world(static_hosts=8, pools=1)
        campaign = make_campaign(world, config(audit_fraction=1.0))
        campaign.run(2)
        victims = [host for host in world.static_hosts if host.online]
        world.churn.take_offline(victims[0])
        result = campaign.run_week().result
        assert not [entry for entry in result.provenance
                    if entry.get("status", "ok") != "ok"]


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"audit_fraction": 0.0},
        {"audit_fraction": 1.5},
        {"drift_budget": 0.0},
        {"drift_budget": 1.0},
        {"full_sweep_every": 0},
        {"min_audit_failures": 0},
        {"window_bits": 0},
        {"window_bits": 33},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeltaConfig(**kwargs)

    def test_normalize_delta_spellings(self):
        assert normalize_delta(None) is None
        assert normalize_delta(False) is None
        assert normalize_delta("off") is None
        assert isinstance(normalize_delta(True), DeltaConfig)
        assert isinstance(normalize_delta("on"), DeltaConfig)
        ready = DeltaConfig(audit_fraction=0.2)
        assert normalize_delta(ready) is ready
        overridden = normalize_delta(ready, full_sweep_every=7)
        assert overridden.full_sweep_every == 7
        assert overridden.audit_fraction == 0.2
        with pytest.raises(ValueError):
            normalize_delta("sometimes")

    def test_scanner_rejects_nonpositive_probe_timeout(self):
        world = build_delta_world()
        from repro.scanner import Ipv4Scanner
        with pytest.raises(ValueError):
            Ipv4Scanner(world.network, world.client_ip,
                        "scan.dnsstudy.edu", probe_timeout=0.0)
