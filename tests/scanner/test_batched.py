"""Equivalence tests for the batched (columnar) scan sweep.

The bulk path must be a pure optimisation: identical results, identical
network counters, identical serialized bytes — against the per-probe
reference path, under loss, and with middleboxes on the path.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnswire import Message
from repro.netsim.defense import (ReactiveBlocklister, Tarpit,
                                  TokenBucketRateLimiter)
from repro.netsim.gfw import GreatFirewall
from repro.netsim.middlebox import DnsIngressFilter, ScannerBlocker
from repro.resolvers import ResolverNode
from repro.scanner import Ipv4Scanner, ScanTargetSpace
from repro.scanner.encoding import ProbeBatchEncoder
from repro.scanner.ipv4scan import _SWEEP_PLAN_CACHE, ScanResult
from tests.conftest import MiniWorld

MEASUREMENT_DOMAIN = "scan.dnsstudy.edu"


def build_world(loss_rate=0.0):
    """A fresh, deterministic scan world.

    Counter-equality tests need two *independent* worlds: back-to-back
    scans of one world are confounded by resolver caches (the second
    scan's resolvers answer without querying upstream).
    """
    mini = MiniWorld(loss_rate=loss_rate)
    mini.builder.register_domain(MEASUREMENT_DOMAIN,
                                 wildcard_address="198.18.0.99")
    mini.service.wildcard_suffixes = (MEASUREMENT_DOMAIN,)
    pool = mini.allocator.allocate(24)
    for offset in (1, 2, 7):
        mini.network.register(ResolverNode(
            pool.address_at(offset), resolution_service=mini.service))
    mini.pool = pool
    mini.space = ScanTargetSpace([pool])
    return mini


@pytest.fixture
def world():
    return build_world()


def make_scanner(world, **kwargs):
    return Ipv4Scanner(world.network, world.client_ip, MEASUREMENT_DOMAIN,
                       **kwargs)


def force_per_probe(world, monkeypatch):
    """Make the network unable to enumerate middlebox interest, which
    routes the scan down the reference per-packet path."""
    monkeypatch.setattr(world.network, "scan_interest",
                        lambda *args, **kwargs: None)


def snapshot(result):
    return (result.counts(), result.responders, result.by_rcode,
            result.divergent_sources, result.probes_sent)


class TestBatchedEquivalence:
    """The bulk sweep vs the per-probe reference wire path."""

    def test_matches_per_probe_results_and_counters(self, monkeypatch):
        # Two independently built (identical) worlds: raw network
        # counters are comparable only when neither run warms the
        # other's resolver caches.
        fast_world = build_world()
        batched = make_scanner(fast_world).scan(fast_world.space)
        batched_sent = fast_world.network.udp_queries_sent

        ref_world = build_world()
        force_per_probe(ref_world, monkeypatch)
        reference = make_scanner(ref_world).scan(ref_world.space)
        reference_sent = ref_world.network.udp_queries_sent

        assert snapshot(batched) == snapshot(reference)
        assert batched_sent == reference_sent
        assert fast_world.pool.address_at(7) in batched.responders

    def test_matches_per_probe_under_loss(self, monkeypatch):
        fast_world = build_world(loss_rate=0.2)
        batched = make_scanner(fast_world).scan(fast_world.space)

        ref_world = build_world(loss_rate=0.2)
        force_per_probe(ref_world, monkeypatch)
        reference = make_scanner(ref_world).scan(ref_world.space)

        assert batched.counts() == reference.counts()
        assert batched.responders == reference.responders
        assert batched.probes_sent == reference.probes_sent
        assert fast_world.network.udp_queries_lost == \
            ref_world.network.udp_queries_lost
        assert fast_world.network.udp_queries_lost > 0

    def test_matches_per_probe_with_hot_middlebox(self, monkeypatch):
        # An active ingress filter makes its whole prefix "hot": those
        # probes take the full wire path and get dropped; the rest of
        # the space still bulk-settles.  Results must match the
        # reference exactly.
        fast_world = build_world()
        fast_world.network.add_middlebox(
            DnsIngressFilter([fast_world.pool]))
        batched = make_scanner(fast_world).scan(fast_world.space)

        ref_world = build_world()
        ref_world.network.add_middlebox(DnsIngressFilter([ref_world.pool]))
        force_per_probe(ref_world, monkeypatch)
        reference = make_scanner(ref_world).scan(ref_world.space)

        assert batched.counts() == reference.counts()
        assert batched.responders == reference.responders == set()
        assert batched.probes_sent == reference.probes_sent > 0

    def test_results_independent_of_batch_size(self):
        tiny_world = build_world()
        tiny = make_scanner(tiny_world, probe_batch=7).scan(
            tiny_world.space)
        big_world = build_world()
        big = make_scanner(big_world, probe_batch=4096).scan(
            big_world.space)
        assert snapshot(tiny) == snapshot(big)

    def test_gfw_proved_inert_by_measurement_domain(self, world):
        # A GFW watching the scanned prefix censors names unrelated to
        # the measurement domain: the qname-suffix promise proves it
        # inert for the sweep, so the whole space stays bulk-eligible —
        # and the scan still finds every resolver.
        gfw = GreatFirewall([world.pool], ["blocked.example"])
        world.network.add_middlebox(gfw)
        assert world.network.scan_interest(
            world.client_ip, 53, qname_suffix=MEASUREMENT_DOMAIN) == []
        assert world.network.scan_interest(world.client_ip, 53) == \
            [(world.pool.base, world.pool.mask)]
        result = make_scanner(world).scan(world.space)
        assert world.pool.address_at(1) in result.responders
        assert gfw.injection_count == 0


def defense_snapshot(world, result):
    """Everything a defense-equivalence class must hold bit-identical."""
    return (snapshot(result), sorted(result.suppressed.items()),
            result.degraded_shards,
            dict(sorted(world.network.fault_counters.items())))


DEFENSES = [
    ("rate_limiter",
     lambda pool: TokenBucketRateLimiter([pool], sustainable_pps=150.0,
                                         seed=3)),
    ("blocklister",
     lambda pool: ReactiveBlocklister([pool], warn_pps=120.0,
                                      ban_pps=200.0, seed=3)),
    ("hard_blocklister",
     lambda pool: ReactiveBlocklister([pool], warn_pps=0.0, ban_pps=0.0,
                                      seed=3)),
    ("tarpit", lambda pool: Tarpit([pool], trigger_pps=140.0, seed=3)),
]


class TestDefenseEquivalence:
    """Batched vs per-probe vs sharded — bit-identical under defense.

    Defense verdicts are pure in (seed, src, dst, declared rate) and the
    pacing plan replays them in global LFSR order, so neither the bulk
    sweep nor shard forking may change a single fate.
    """

    @pytest.mark.parametrize("name,make_box", DEFENSES,
                             ids=[name for name, __ in DEFENSES])
    @pytest.mark.parametrize("pacing", [None, "adaptive"],
                             ids=["naive", "adaptive"])
    def test_batched_matches_per_probe(self, monkeypatch, name,
                                       make_box, pacing):
        fast_world = build_world()
        fast_world.network.add_middlebox(make_box(fast_world.pool))
        batched = make_scanner(fast_world, pacing=pacing).scan(
            fast_world.space)

        ref_world = build_world()
        ref_world.network.add_middlebox(make_box(ref_world.pool))
        force_per_probe(ref_world, monkeypatch)
        reference = make_scanner(ref_world, pacing=pacing).scan(
            ref_world.space)

        assert defense_snapshot(fast_world, batched) == \
            defense_snapshot(ref_world, reference)

    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("pacing", [None, "adaptive"],
                             ids=["naive", "adaptive"])
    def test_sharded_matches_sequential(self, shards, pacing):
        from repro.scanner import ScanEngine

        seq_world = build_world()
        seq_world.network.add_middlebox(ReactiveBlocklister(
            [seq_world.pool], warn_pps=120.0, ban_pps=200.0, seed=3))
        sequential = make_scanner(seq_world, pacing=pacing).scan(
            seq_world.space)

        shard_world = build_world()
        shard_world.network.add_middlebox(ReactiveBlocklister(
            [shard_world.pool], warn_pps=120.0, ban_pps=200.0, seed=3))
        engine = ScanEngine(make_scanner(shard_world, pacing=pacing),
                            shards=shards)
        sharded = engine.scan(shard_world.space)

        assert defense_snapshot(seq_world, sequential) == \
            defense_snapshot(shard_world, sharded)

    def test_suppression_is_recorded_not_silent(self):
        world = build_world()
        world.network.add_middlebox(ReactiveBlocklister(
            [world.pool], warn_pps=0.0, ban_pps=0.0, seed=3))
        result = make_scanner(world, pacing="adaptive").scan(world.space)
        assert result.suppressed_targets > 0
        entries = [entry for entry in result.degraded_shards
                   if entry["status"] == "suppressed"]
        assert entries
        assert sum(entry["targets"] for entry in entries) == \
            result.suppressed_targets
        assert all(entry["cause"].startswith("defense:")
                   for entry in entries)

    def test_suppressed_survives_pickle_roundtrip(self):
        world = build_world()
        world.network.add_middlebox(ReactiveBlocklister(
            [world.pool], warn_pps=0.0, ban_pps=0.0, seed=3))
        result = make_scanner(world, pacing="adaptive").scan(world.space)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.suppressed == result.suppressed
        assert clone.suppressed_targets == result.suppressed_targets

    def test_plain_result_bytes_unchanged_by_suppression_field(self):
        # A result with nothing suppressed must serialize exactly as it
        # did before the field existed (historical checkpoint bytes).
        result = ScanResult(10.0)
        assert "suppressed" not in result.__getstate__()


class TestScanPathChecks:
    """Pruning of provably-inert middleboxes from the sweep's sends."""

    def test_inert_box_pruned_interested_box_kept(self, world):
        dormant = ScannerBlocker([world.client_ip], [world.pool],
                                 active_after=1e9)
        filtering = DnsIngressFilter([world.pool])
        world.network.add_middlebox(dormant)
        world.network.add_middlebox(filtering)
        checks = world.network.scan_path_checks(
            world.client_ip, 53, qname_suffix=MEASUREMENT_DOMAIN)
        boxes = [box for box, __ in checks]
        assert dormant not in boxes
        assert filtering in boxes

    def test_duck_typed_box_without_interest_kept(self, world):
        class Opaque:
            def path_verdict(self, src_ip, dst_int, dst_port, network):
                from repro.netsim.middlebox import PATH_IGNORE
                return PATH_IGNORE

        box = Opaque()
        world.network.add_middlebox(box)
        checks = world.network.scan_path_checks(world.client_ip, 53)
        assert box in [kept for kept, __ in checks]

    def test_pruning_does_not_change_results(self, world):
        # Pruned sweep vs a scan whose network double hides the hook
        # (stock full-check sends): byte-identical outcomes.
        world.network.add_middlebox(ScannerBlocker(
            [world.client_ip], [world.pool], active_after=1e9))
        pruned = make_scanner(world).scan(world.space)
        world.network.clock.advance(1.0)
        original = world.network.scan_path_checks
        world.network.scan_path_checks = None
        try:
            # getattr(network, "scan_path_checks", None) yields None:
            # the sweep falls back to full-check sends.
            unpruned = make_scanner(world).scan(world.space)
        finally:
            world.network.scan_path_checks = original
        assert pruned.counts() == unpruned.counts()
        assert pruned.responders == unpruned.responders


class TestSweepPlanMemo:
    """The cold settlement is memoised — and invalidated — correctly."""

    def test_plan_reused_across_identical_scans(self, world):
        _SWEEP_PLAN_CACHE.clear()
        first = make_scanner(world).scan(world.space)
        assert len(_SWEEP_PLAN_CACHE) == 1
        second = make_scanner(world).scan(world.space)
        assert len(_SWEEP_PLAN_CACHE) == 1
        assert first.responders == second.responders
        assert first.probes_sent == second.probes_sent

    def test_registering_a_node_invalidates_the_plan(self, world):
        _SWEEP_PLAN_CACHE.clear()
        newcomer = world.pool.address_at(9)
        before = make_scanner(world).scan(world.space)
        assert newcomer not in before.responders
        world.network.register(ResolverNode(
            newcomer, resolution_service=world.service))
        after = make_scanner(world).scan(world.space)
        assert newcomer in after.responders
        assert len(_SWEEP_PLAN_CACHE) == 2

    def test_nodes_signature_is_content_based(self, world):
        network = world.network
        before = network.nodes_signature()
        extra = world.pool.address_at(11)
        network.register(ResolverNode(extra,
                                      resolution_service=world.service))
        changed = network.nodes_signature()
        assert changed != before
        network.unregister(extra)
        # Same node population again -> same signature, so a
        # register/unregister churn round-trip re-hits the plan memo.
        assert network.nodes_signature() == before


class TestProbeBatchEncoder:
    def reference_wire(self, key, value):
        qname = "r%x.%08x.%s" % (key >> 16 & 0xFFFFFF, value,
                                 MEASUREMENT_DOMAIN)
        return Message.query(qname, txid=key & 0xFFFF).to_wire()

    @pytest.mark.parametrize("key,value", [
        (0, 0),                       # shortest label: "r0"
        (0xFFFFFF_FFFF, 0xFFFFFFFF),  # longest label: "rffffff"
        (0x00012A_BEEF, 0x01020304),
    ])
    def test_byte_identical_to_message_codec(self, key, value):
        encoder = ProbeBatchEncoder(MEASUREMENT_DOMAIN)
        txid, payload = encoder.encode(key, value)
        assert txid == key & 0xFFFF
        assert payload == self.reference_wire(key, value)

    @given(st.integers(min_value=0, max_value=(1 << 40) - 1),
           st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=60, deadline=None)
    def test_byte_identical_property(self, key, value):
        encoder = ProbeBatchEncoder(MEASUREMENT_DOMAIN)
        __, payload = encoder.encode(key, value)
        assert payload == self.reference_wire(key, value)

    def test_reencoding_does_not_mutate_earlier_payloads(self):
        # The encoder reuses one template per frame length; each encode
        # must snapshot, never alias.
        encoder = ProbeBatchEncoder(MEASUREMENT_DOMAIN)
        __, first = encoder.encode(0xAB_0001, 1)
        kept = bytes(first)
        encoder.encode(0xCD_0002, 2)
        assert first == kept


class TestColumnarResult:
    def filled(self, order):
        result = ScanResult(10.0)
        for ip, rcode, src in order:
            result.record(ip, rcode, src)
        result.probes_sent = 50
        return result

    ROWS = [("10.0.0.1", 0, "10.0.0.1"),
            ("10.0.0.2", 5, "9.9.9.9"),
            ("10.0.0.3", 2, "10.0.0.3")]

    def test_pickle_roundtrip(self):
        result = self.filled(self.ROWS)
        clone = pickle.loads(pickle.dumps(result))
        assert snapshot(clone) == snapshot(result)
        assert clone.timestamp == result.timestamp
        assert clone.retransmissions == result.retransmissions

    def test_serialized_bytes_canonical_across_record_order(self):
        forward = self.filled(self.ROWS)
        backward = self.filled(list(reversed(self.ROWS)))
        assert pickle.dumps(forward) == pickle.dumps(backward)

    def test_merge_serializes_like_sequential_record(self):
        left = self.filled(self.ROWS[:1])
        right = self.filled(self.ROWS[1:])
        merged = ScanResult(10.0).merge(left).merge(right)
        whole = self.filled(self.ROWS)
        whole.probes_sent = merged.probes_sent
        assert pickle.dumps(merged) == pickle.dumps(whole)
        assert merged.counts() == whole.counts()

    def test_views_refresh_after_mutation(self):
        result = self.filled(self.ROWS)
        assert len(result.responders) == 3
        result.record("10.0.0.4", 0, "10.0.0.4")
        assert "10.0.0.4" in result.responders
        assert "10.0.0.4" in result.noerror
