"""Tests for the scan-domain dataset helpers."""

from repro.datasets import (
    ALL_CATEGORIES,
    DOMAIN_SETS,
    GROUND_TRUTH_DOMAIN,
    MEASUREMENT_DOMAIN,
    SNOOPING_TLDS,
    ScanDomain,
    all_domains,
    domains_in_category,
    existing_web_domains,
)


def test_all_categories_present():
    assert set(ALL_CATEGORIES) == set(DOMAIN_SETS)
    assert len(ALL_CATEGORIES) == 13


def test_snooping_tlds_are_the_papers_15():
    assert len(SNOOPING_TLDS) == 15
    for tld in ("com", "de", "co.uk", "ru", "br"):
        assert tld in SNOOPING_TLDS


def test_ground_truth_and_measurement_domains_distinct():
    assert GROUND_TRUTH_DOMAIN != MEASUREMENT_DOMAIN
    names = {d.name for d in all_domains()}
    assert GROUND_TRUTH_DOMAIN not in names
    assert MEASUREMENT_DOMAIN not in names


def test_domains_in_category():
    banking = domains_in_category("Banking")
    assert len(banking) == 20
    assert all(d.category == "Banking" for d in banking)


def test_existing_web_domains_excludes_nx_and_mail():
    web = existing_web_domains()
    assert all(d.exists and d.kind == ScanDomain.KIND_WEB for d in web)
    names = {d.name for d in web}
    assert "imap.gmail.com" not in names
    assert "amason.com" not in names
    assert "paypal.com" in names


def test_scan_domain_equality_by_name():
    left = ScanDomain("x.com", "Alexa")
    right = ScanDomain("x.com", "Banking")
    assert left == right
    assert hash(left) == hash(right)


def test_cdn_flag_only_on_existing_web_domains():
    for domain in all_domains():
        if domain.cdn:
            assert domain.exists
            assert domain.kind == ScanDomain.KIND_WEB


def test_malware_domains_are_http_only():
    for domain in DOMAIN_SETS["Malware"]:
        assert not domain.https
