"""Shared fixtures: a minimal hand-built world and a small full scenario."""

import pytest

from repro.authdns import HierarchyBuilder
from repro.inetmodel import PrefixAllocator, RdnsRegistry
from repro.netsim import Network, SimClock
from repro.resolvers import ResolutionService
from repro.scenario import ScenarioConfig, build_scenario
from repro.websim import CertificateAuthority, SiteLibrary


class MiniWorld:
    """A tiny, fast network with a DNS hierarchy and one web domain."""

    def __init__(self, seed=1, loss_rate=0.0):
        self.clock = SimClock()
        self.network = Network(self.clock, seed=seed, loss_rate=loss_rate)
        self.allocator = PrefixAllocator()
        self.infra = self.allocator.allocate(16)
        self.rdns = RdnsRegistry()
        self.builder = HierarchyBuilder(self.network, self.infra,
                                        rdns_registry=self.rdns)
        self.hierarchy = self.builder.hierarchy
        self.ca = CertificateAuthority()
        self.sites = SiteLibrary(seed=seed)
        self.trusted_ip = self.infra.address_at(50000)
        self.client_ip = self.infra.address_at(50001)
        self.service = ResolutionService(self.hierarchy.root_ips,
                                         self.trusted_ip)

    def add_web_domain(self, domain, ip, category="Misc", https=True):
        """Register a zone + origin server for one domain."""
        from repro.websim import WebServer
        self.sites.set_category(domain, category)
        self.builder.register_domain(domain, {domain: [ip],
                                              "www." + domain: [ip]})
        certificate = self.ca.issue(domain, san=(domain, "www." + domain)) \
            if https else None
        server = WebServer(ip, self.sites, [domain],
                           certificate=certificate, https=https)
        self.network.register(server)
        return server


@pytest.fixture
def mini():
    return MiniWorld()


@pytest.fixture(scope="session")
def small_scenario():
    """A session-shared tiny scenario for integration-style tests."""
    return build_scenario(ScenarioConfig(scale=40000, seed=11,
                                         loss_rate=0.0))


@pytest.fixture(scope="session")
def scanned_scenario(small_scenario):
    """The small scenario plus its first weekly scan result."""
    campaign = small_scenario.new_campaign(verify=False)
    snapshot = campaign.run_week()
    return small_scenario, campaign, snapshot
