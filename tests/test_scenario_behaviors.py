"""Statistical tests of the scenario's behavior assignment."""

import pytest

from repro.resolvers.behaviors import (
    BlockingBehavior,
    CensorshipBehavior,
    EmptyAnswerBehavior,
    MailRedirectBehavior,
    NxRedirectBehavior,
    ParkingBehavior,
    SelfIpBehavior,
    StaticIpBehavior,
)
from repro.scenario import (
    BACKGROUND_SHARE,
    CENSOR_POLICIES,
    EMPTY_ANSWER_SHARE,
    GFW_CENSORED,
)


def behavior_share(scenario, behavior_type, country=None):
    nodes = (scenario.population.by_country.get(country, [])
             if country else scenario.population.resolvers)
    if not nodes:
        return 0.0, 0
    hits = sum(1 for node in nodes
               if any(isinstance(b, behavior_type)
                      for b in node.behaviors))
    return hits / len(nodes), len(nodes)


class TestBehaviorShares:
    def test_empty_answer_share(self, small_scenario):
        share, count = behavior_share(small_scenario,
                                      EmptyAnswerBehavior)
        assert abs(share - EMPTY_ANSWER_SHARE) < 0.04

    def test_background_static_share(self, small_scenario):
        share, __ = behavior_share(small_scenario, StaticIpBehavior)
        # Most background-suspicious resolvers use a static answer.
        assert 0.2 * BACKGROUND_SHARE < share < 3 * BACKGROUND_SHARE

    def test_nx_monetizers_exist(self, small_scenario):
        share, __ = behavior_share(small_scenario, NxRedirectBehavior)
        assert 0 < share < 0.06

    def test_mail_redirectors_exist(self, small_scenario):
        share, __ = behavior_share(small_scenario, MailRedirectBehavior)
        assert 0 < share < 0.10

    def test_av_blockers_exist(self, small_scenario):
        share, __ = behavior_share(small_scenario, BlockingBehavior)
        assert 0 < share < 0.05

    def test_parking_much_higher_in_cn(self, small_scenario):
        cn_share, cn_count = behavior_share(small_scenario,
                                            ParkingBehavior, "CN")
        us_share, __ = behavior_share(small_scenario, ParkingBehavior,
                                      "US")
        if cn_count >= 30:
            assert cn_share > us_share


class TestCensorshipAssignment:
    def test_policy_countries_get_censorship(self, small_scenario):
        for country in ("IR", "ID", "TR", "IT"):
            share, count = behavior_share(small_scenario,
                                          CensorshipBehavior, country)
            if count >= 20:
                assert share > 0.2, country

    def test_non_censor_countries_clean(self, small_scenario):
        for country in ("US", "CA", "DE"):
            share, count = behavior_share(small_scenario,
                                          CensorshipBehavior, country)
            assert share == 0.0, country

    def test_censorship_points_at_landing_ips(self, small_scenario):
        landing_all = {ip for ips in small_scenario.landing_ips.values()
                       for ip in ips}
        for node in small_scenario.population.resolvers:
            for behavior in node.behaviors:
                if isinstance(behavior, CensorshipBehavior):
                    assert set(behavior.landing_ips) <= landing_all

    def test_ir_censors_social(self, small_scenario):
        ir_nodes = small_scenario.population.by_country.get("IR", [])
        censoring_social = 0
        for node in ir_nodes:
            for behavior in node.behaviors:
                if isinstance(behavior, CensorshipBehavior) and \
                        behavior.targets("facebook.com"):
                    censoring_social += 1
        if len(ir_nodes) >= 20:
            # ~8% of pool members are plain forwarders (no local
            # behaviors), so coverage sits below the 0.97 policy rate.
            assert censoring_social / len(ir_nodes) > 0.55

    def test_gfw_list_covers_social(self):
        for name in ("facebook.com", "twitter.com", "youtube.com"):
            assert name in GFW_CENSORED

    def test_policies_reference_known_countries(self):
        from repro.websim.pages import CENSOR_AUTHORITIES
        for country, policy in CENSOR_POLICIES.items():
            landing = policy.get("landing_country", country)
            assert landing in CENSOR_AUTHORITIES, country


class TestSelfIpEquipment:
    def test_self_ip_resolvers_serve_vendor_pages(self, small_scenario):
        vendors = {"TP-LINK": 0, "ZyXEL": 0, "other": 0}
        for node in small_scenario.population.resolvers:
            if not any(isinstance(b, SelfIpBehavior)
                       for b in node.behaviors):
                continue
            page = node.device_page or (node.device.http_body
                                        if node.device else "")
            if "TP-LINK" in page:
                vendors["TP-LINK"] += 1
            elif "ZyXEL" in page or "ZyNOS" in page:
                vendors["ZyXEL"] += 1
            else:
                vendors["other"] += 1
        total = sum(vendors.values())
        if total >= 10:
            # Two large manufacturers dominate (91.7%, §4.2).
            assert (vendors["TP-LINK"] + vendors["ZyXEL"]) / total > 0.6
