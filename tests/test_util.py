"""Tests for shared utilities."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util import percentage, stable_hash, weighted_choice


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_differs_by_part(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)
        assert stable_hash("a") != stable_hash("b")

    def test_known_value_pinned(self):
        # Guards against accidental algorithm changes breaking
        # reproducibility of published runs.
        assert stable_hash("1.2.3.4", "facebook.com") == 4275522930

    @given(st.text(), st.text())
    def test_range(self, a, b):
        assert 0 <= stable_hash(a, b) <= 0xFFFFFFFF


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(1)
        counts = {"a": 0, "b": 0}
        for __ in range(2000):
            counts[weighted_choice(rng, [("a", 3.0), ("b", 1.0)])] += 1
        assert 0.6 < counts["a"] / 2000 < 0.9

    def test_single_item(self):
        assert weighted_choice(random.Random(1), [("x", 1.0)]) == "x"

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(1), [("x", 0.0)])

    def test_zero_weight_item_never_chosen(self):
        rng = random.Random(1)
        for __ in range(200):
            assert weighted_choice(rng, [("a", 0.0), ("b", 1.0)]) == "b"


class TestPercentage:
    def test_basic(self):
        assert percentage(1, 4) == 25.0

    def test_zero_whole(self):
        assert percentage(5, 0) == 0.0
