"""Tests for shared utilities."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util import apportion, percentage, stable_hash, weighted_choice


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_differs_by_part(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)
        assert stable_hash("a") != stable_hash("b")

    def test_known_value_pinned(self):
        # Guards against accidental algorithm changes breaking
        # reproducibility of published runs.
        assert stable_hash("1.2.3.4", "facebook.com") == 4275522930

    @given(st.text(), st.text())
    def test_range(self, a, b):
        assert 0 <= stable_hash(a, b) <= 0xFFFFFFFF


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(1)
        counts = {"a": 0, "b": 0}
        for __ in range(2000):
            counts[weighted_choice(rng, [("a", 3.0), ("b", 1.0)])] += 1
        assert 0.6 < counts["a"] / 2000 < 0.9

    def test_single_item(self):
        assert weighted_choice(random.Random(1), [("x", 1.0)]) == "x"

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(1), [("x", 0.0)])

    def test_zero_weight_item_never_chosen(self):
        rng = random.Random(1)
        for __ in range(200):
            assert weighted_choice(rng, [("a", 0.0), ("b", 1.0)]) == "b"


class TestPercentage:
    def test_basic(self):
        assert percentage(1, 4) == 25.0

    def test_zero_whole(self):
        assert percentage(5, 0) == 0.0


class TestApportion:
    def test_sums_exactly(self):
        assert sum(apportion(100, [0.62, 0.26, 0.12])) == 100

    def test_independent_rounding_bug_case(self):
        # int(round(...)) per share gives 2+1+0 = 3 for a 4-host
        # country — one host silently lost.  Hamilton's method never
        # drifts (the broadband shares drift on ~24% of all counts).
        shares = [0.62, 0.26, 0.12]
        assert sum(int(round(4 * share)) for share in shares) == 3
        counts = apportion(4, shares)
        assert counts == [3, 1, 0]

    def test_largest_remainder_gets_leftover(self):
        # Quotas 1.5 / 1.5 / 1.0: both .5 remainders beat .0, tie
        # broken by position.
        assert apportion(4, [1.5, 1.5, 1.0]) == [2, 1, 1]

    def test_deterministic_tie_break(self):
        assert apportion(1, [1.0, 1.0]) == [1, 0]
        assert apportion(3, [1.0, 1.0]) == [2, 1]

    def test_minimums_clamp_after_apportionment(self):
        counts = apportion(5, [0.9, 0.05, 0.05], minimums=[2, 2, 2])
        assert counts == [5, 2, 2]      # sum may exceed the total

    def test_zero_total(self):
        assert apportion(0, [0.62, 0.26, 0.12]) == [0, 0, 0]

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            apportion(-1, [1.0])

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            apportion(10, [0.0, 0.0])

    @given(st.integers(min_value=0, max_value=10**6),
           st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                    max_size=8).filter(lambda ws: sum(ws) > 0.01))
    def test_always_sums_to_total(self, total, weights):
        counts = apportion(total, weights)
        assert sum(counts) == total
        assert all(count >= 0 for count in counts)
