"""Property tests for the CDN rotation and certificate model."""

from hypothesis import given, settings, strategies as st

from repro.authdns.zone import ZoneLookupResult
from repro.dnswire.constants import QTYPE_A
from repro.websim.cdn import RotatingAZone


@settings(max_examples=40)
@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=30))
def test_rotation_covers_whole_pool(pool_size, per_query, queries):
    pool = ["10.0.0.%d" % i for i in range(1, pool_size + 1)]
    zone = RotatingAZone("big.com", {"big.com": pool},
                         answers_per_query=per_query)
    seen = set()
    for __ in range(queries):
        result = zone.lookup("big.com", QTYPE_A)
        assert result.status == ZoneLookupResult.ANSWER
        addresses = [r.data.address for r in result.records]
        # Answers always come from the pool, never more than requested.
        assert set(addresses) <= set(pool)
        assert len(addresses) == min(per_query, pool_size)
        seen.update(addresses)
    # Enough queries walk the entire pool: the rotation counter advances
    # one slot per query with a window of per_query addresses.
    if queries + per_query - 1 >= pool_size:
        assert seen == set(pool)


@settings(max_examples=40)
@given(st.integers(min_value=2, max_value=10))
def test_rotation_deterministic_sequence(pool_size):
    pool = ["10.0.0.%d" % i for i in range(1, pool_size + 1)]

    def sequence():
        zone = RotatingAZone("big.com", {"big.com": pool},
                             answers_per_query=2)
        out = []
        for __ in range(6):
            result = zone.lookup("big.com", QTYPE_A)
            out.append(tuple(r.data.address for r in result.records))
        return out

    assert sequence() == sequence()


def test_non_pool_names_fall_through():
    zone = RotatingAZone("big.com", {"big.com": ["10.0.0.1"]})
    zone.add_a("static.big.com", "10.0.9.9")
    result = zone.lookup("static.big.com", QTYPE_A)
    assert result.status == ZoneLookupResult.ANSWER
    assert result.records[0].data.address == "10.0.9.9"
    missing = zone.lookup("nope.big.com", QTYPE_A)
    assert missing.status == ZoneLookupResult.NXDOMAIN
