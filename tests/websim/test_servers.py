"""Tests for web server nodes, mail servers, and the CDN model."""

import pytest

from repro.dnswire.constants import QTYPE_A
from repro.websim import (
    CdnProvider,
    CertificateAuthority,
    MailServer,
    RotatingAZone,
    SiteLibrary,
    TransparentProxy,
    WebServer,
)
from repro.websim.http import HttpRequest
from repro.websim.httpserver import ContentTransformServer, StaticPageServer
from repro.websim.mail import (
    MAIL_PORTS,
    banners_for_provider,
    provider_for_hostname,
)
from repro.websim.pages import inject_ad_banner


@pytest.fixture
def sites():
    library = SiteLibrary(seed=3)
    return library


class TestWebServer:
    def test_serves_hosted_domain(self, mini, sites):
        server = WebServer("198.18.5.1", sites, ["example.com"])
        mini.network.register(server)
        response = mini.network.http_request(
            mini.client_ip, "198.18.5.1", HttpRequest("example.com"))
        assert response.status == 200
        assert response.body == sites.page_for("example.com")

    def test_404_for_foreign_host_header(self, mini, sites):
        # A bogus DNS answer pointing here lands in "HTTP Error".
        server = WebServer("198.18.5.1", sites, ["example.com"])
        mini.network.register(server)
        response = mini.network.http_request(
            mini.client_ip, "198.18.5.1", HttpRequest("paypal.com"))
        assert response.status == 404

    def test_tls_certificate(self, mini, sites):
        ca = CertificateAuthority()
        server = WebServer("198.18.5.1", sites, ["example.com"],
                           certificate=ca.issue("example.com"))
        mini.network.register(server)
        certificate = mini.network.tls_handshake(mini.client_ip,
                                                 "198.18.5.1",
                                                 sni="example.com")
        assert ca.validates(certificate, "example.com")

    def test_http_only_server(self, mini, sites):
        server = WebServer("198.18.5.1", sites, ["example.com"],
                           https=False)
        mini.network.register(server)
        assert mini.network.tls_handshake(mini.client_ip,
                                          "198.18.5.1") is None
        assert server.tcp_ports() == frozenset((80,))


class TestStaticPageServer:
    def test_same_body_for_every_host(self, mini):
        server = StaticPageServer("198.18.5.2", "<html>blocked</html>")
        mini.network.register(server)
        for host in ("a.com", "b.net"):
            response = mini.network.http_request(
                mini.client_ip, "198.18.5.2", HttpRequest(host))
            assert response.body == "<html>blocked</html>"

    def test_custom_status(self, mini):
        server = StaticPageServer("198.18.5.2", "x", status=503)
        mini.network.register(server)
        response = mini.network.http_request(
            mini.client_ip, "198.18.5.2", HttpRequest("a.com"))
        assert response.status == 503

    def test_redirect_mode(self, mini):
        server = StaticPageServer("198.18.5.2", "",
                                  redirect_to="http://portal.example/")
        mini.network.register(server)
        response = mini.network.http_request(
            mini.client_ip, "198.18.5.2", HttpRequest("a.com"))
        assert response.is_redirect


class TestTransparentProxy:
    def test_serves_original_content(self, mini, sites):
        proxy = TransparentProxy("198.18.5.3", sites)
        mini.network.register(proxy)
        response = mini.network.http_request(
            mini.client_ip, "198.18.5.3", HttpRequest("anything.example"))
        assert response.body == sites.page_for("anything.example")

    def test_http_only_refuses_tls(self, mini, sites):
        proxy = TransparentProxy("198.18.5.3", sites, https=False)
        mini.network.register(proxy)
        assert mini.network.tls_handshake(
            mini.client_ip, "198.18.5.3", sni="example.com") is None

    def test_tls_proxy_presents_valid_cert(self, mini, sites):
        ca = CertificateAuthority()
        proxy = TransparentProxy("198.18.5.3", sites, https=True, ca=ca)
        mini.network.register(proxy)
        certificate = mini.network.tls_handshake(
            mini.client_ip, "198.18.5.3", sni="example.com")
        assert ca.validates(certificate, "example.com")


class TestContentTransformServer:
    def test_transforms_target(self, mini, sites):
        server = ContentTransformServer(
            "198.18.5.4", sites, inject_ad_banner, target_domains=None)
        mini.network.register(server)
        response = mini.network.http_request(
            mini.client_ip, "198.18.5.4", HttpRequest("victim.example"))
        assert "injected-banner" in response.body

    def test_untargeted_domain_proxied(self, mini, sites):
        server = ContentTransformServer(
            "198.18.5.4", sites, inject_ad_banner,
            target_domains=["ads.example"])
        mini.network.register(server)
        response = mini.network.http_request(
            mini.client_ip, "198.18.5.4", HttpRequest("other.example"))
        assert response.body == sites.page_for("other.example")


class TestMail:
    def test_provider_banners(self, mini):
        server = MailServer("198.18.5.5", provider="gmail.com")
        mini.network.register(server)
        banner = mini.network.tcp_banner(mini.client_ip, "198.18.5.5",
                                         MAIL_PORTS["imap"])
        assert "Gimap" in banner

    def test_generic_banners(self, mini):
        server = MailServer("198.18.5.5", provider=None)
        mini.network.register(server)
        banner = mini.network.tcp_banner(mini.client_ip, "198.18.5.5",
                                         MAIL_PORTS["smtp"])
        assert "ESMTP" in banner

    def test_provider_for_hostname(self):
        assert provider_for_hostname("imap.gmail.com") == "gmail.com"
        assert provider_for_hostname("smtp.mail.yahoo.com") == "yahoo.com"
        assert provider_for_hostname("mail.unknown.tld") is None

    def test_banners_for_provider_fallback(self):
        assert banners_for_provider(None)["imap"].startswith("* OK")

    def test_selected_services_only(self, mini):
        server = MailServer("198.18.5.5", provider=None,
                            services=("smtp",))
        assert server.tcp_ports() == frozenset((25,))


class TestCdn:
    def build_provider(self, mini, sites):
        ca = CertificateAuthority()
        provider = CdnProvider("EdgeNet", "edgenet-cdn.net", ca, sites)
        for i in range(4):
            provider.deploy_edge(mini.network, "198.18.6.%d" % (i + 1),
                                 enabled=(i != 3))
        provider.add_customer("bigsite.com")
        return ca, provider

    def test_pool_excludes_disabled(self, mini, sites):
        __, provider = self.build_provider(mini, sites)
        pool = provider.edge_pool_for("bigsite.com")
        assert "198.18.6.4" not in pool
        assert len(pool) == 3

    def test_unknown_customer_raises(self, mini, sites):
        __, provider = self.build_provider(mini, sites)
        with pytest.raises(KeyError):
            provider.edge_pool_for("nobody.com")

    def test_edge_serves_customer(self, mini, sites):
        __, provider = self.build_provider(mini, sites)
        response = mini.network.http_request(
            mini.client_ip, "198.18.6.1", HttpRequest("bigsite.com"))
        assert response.status == 200

    def test_edge_404_for_non_customer(self, mini, sites):
        self.build_provider(mini, sites)
        response = mini.network.http_request(
            mini.client_ip, "198.18.6.1", HttpRequest("other.com"))
        assert response.status == 404

    def test_sni_vs_default_certificate(self, mini, sites):
        ca, provider = self.build_provider(mini, sites)
        sni_cert = mini.network.tls_handshake(
            mini.client_ip, "198.18.6.1", sni="bigsite.com")
        assert ca.validates(sni_cert, "bigsite.com")
        default_cert = mini.network.tls_handshake(mini.client_ip,
                                                  "198.18.6.1", sni=None)
        assert default_cert.common_name == "edgenet-cdn.net"

    def test_disabled_edge_is_dark(self, mini, sites):
        self.build_provider(mini, sites)
        assert mini.network.http_request(
            mini.client_ip, "198.18.6.4", HttpRequest("bigsite.com")) is None
        assert mini.network.tls_handshake(
            mini.client_ip, "198.18.6.4", sni="bigsite.com") is None

    def test_rotating_zone(self):
        zone = RotatingAZone("big.com", {"big.com": ["1.1.1.1", "2.2.2.2",
                                                     "3.3.3.3"]},
                             answers_per_query=2)
        first = zone.lookup("big.com", QTYPE_A)
        second = zone.lookup("big.com", QTYPE_A)
        first_ips = [r.data.address for r in first.records]
        second_ips = [r.data.address for r in second.records]
        assert first_ips != second_ips
        assert len(first_ips) == 2
