"""Tests for HTTP types, TLS simulation, and HTML generation."""

import pytest

from repro.websim.html import HtmlPage
from repro.websim.http import (
    FIREFOX_28_USER_AGENT,
    HttpRequest,
    HttpResponse,
)
from repro.websim.tls import Certificate, CertificateAuthority


class TestHttpRequest:
    def test_defaults(self):
        request = HttpRequest("example.com")
        assert request.url == "http://example.com/"
        assert request.headers["User-Agent"] == FIREFOX_28_USER_AGENT
        assert request.headers["Host"] == "example.com"

    def test_https_url(self):
        request = HttpRequest("example.com", "/login", scheme="https")
        assert request.url == "https://example.com/login"


class TestHttpResponse:
    def test_redirect(self):
        response = HttpResponse.redirect("http://other.example/")
        assert response.is_redirect
        assert response.location == "http://other.example/"

    def test_not_redirect_without_location(self):
        assert not HttpResponse(302).is_redirect

    def test_error_helpers(self):
        assert HttpResponse.not_found().status == 404
        assert HttpResponse.not_found().is_error
        assert HttpResponse.server_error().status == 500
        assert not HttpResponse(200, "ok").is_error

    def test_reason_defaults(self):
        assert HttpResponse(404).reason == "Not Found"
        assert HttpResponse(299).reason == "Unknown"


class TestCertificates:
    def test_exact_match(self):
        certificate = Certificate("example.com")
        assert certificate.matches("example.com")
        assert certificate.matches("EXAMPLE.COM.")
        assert not certificate.matches("www.example.com")

    def test_san_match(self):
        certificate = Certificate("example.com",
                                  san=("example.com", "www.example.com"))
        assert certificate.matches("www.example.com")

    def test_wildcard_one_label_only(self):
        certificate = Certificate("*.example.com")
        assert certificate.matches("www.example.com")
        assert not certificate.matches("a.b.example.com")
        assert not certificate.matches("example.com")

    def test_ca_issue_and_validate(self):
        ca = CertificateAuthority()
        certificate = ca.issue("example.com")
        assert ca.validates(certificate, "example.com")
        assert not ca.validates(certificate, "other.com")

    def test_self_signed_rejected(self):
        ca = CertificateAuthority()
        certificate = CertificateAuthority.self_signed("paypal.com")
        assert certificate.matches("paypal.com")
        assert not ca.validates(certificate, "paypal.com")

    def test_foreign_issuer_rejected(self):
        ca = CertificateAuthority()
        other = CertificateAuthority("Rogue CA")
        assert not ca.validates(other.issue("example.com"), "example.com")

    def test_expiry(self):
        ca = CertificateAuthority()
        certificate = Certificate("example.com", issuer=ca.name,
                                  not_after=100.0)
        assert ca.validates(certificate, "example.com", now=50.0)
        assert not ca.validates(certificate, "example.com", now=150.0)

    def test_validates_none(self):
        assert not CertificateAuthority().validates(None, "example.com")


class TestHtmlPage:
    def test_structure(self):
        page = HtmlPage("My Title")
        page.add_heading("Hello")
        page.add_paragraph("World")
        page.add_link("/x", "link")
        page.add_image("/y.png", alt="pic")
        page.add_script(code="var a=1;")
        html = page.render()
        assert html.startswith("<!DOCTYPE html>")
        assert "<title>My Title</title>" in html
        assert "<h1>Hello</h1>" in html
        assert "<p>World</p>" in html
        assert '<a href="/x">link</a>' in html
        assert '<img src="/y.png"' in html
        assert "<script>var a=1;</script>" in html

    def test_form(self):
        page = HtmlPage("Login")
        page.add_form("/login", [("user", "text"), ("pass", "password")])
        html = page.render()
        assert '<form action="/login" method="POST">' in html
        assert 'type="password"' in html

    def test_nav_and_table(self):
        page = HtmlPage("T")
        page.add_nav([("/a", "A"), ("/b", "B")])
        page.add_table([("x", "y"), ("1", "2")])
        html = page.render()
        assert html.count("<li>") == 2
        assert html.count("<tr>") == 2

    def test_deterministic(self):
        def build():
            page = HtmlPage("T")
            page.add_paragraph("p")
            return page.render()
        assert build() == build()
