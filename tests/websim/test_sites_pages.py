"""Tests for the legitimate site library and the manipulation pages."""

import re

from repro.datasets.domains import (
    CATEGORY_ADS,
    CATEGORY_BANKING,
    CATEGORY_FILESHARING,
)
from repro.websim import SiteLibrary
from repro.websim import pages


class TestSiteLibrary:
    def test_deterministic(self):
        first = SiteLibrary(seed=5)
        second = SiteLibrary(seed=5)
        assert first.page_for("example.com") == second.page_for(
            "example.com")

    def test_seed_changes_content(self):
        assert SiteLibrary(seed=1).page_for("example.com") != \
            SiteLibrary(seed=2).page_for("example.com")

    def test_cached(self):
        library = SiteLibrary()
        assert library.page_for("x.com") is library.page_for("x.com")

    def test_banking_shape(self):
        library = SiteLibrary()
        library.set_category("mybank.com", CATEGORY_BANKING)
        html = library.page_for("mybank.com")
        assert 'type="password"' in html
        assert "Online Banking" in html

    def test_ads_shape(self):
        library = SiteLibrary()
        library.set_category("adnet.com", CATEGORY_ADS)
        html = library.page_for("adnet.com")
        assert "adsby" in html or "ads" in html
        assert html.count("<script") >= 3

    def test_filesharing_shape(self):
        library = SiteLibrary()
        library.set_category("torrents.to", CATEGORY_FILESHARING)
        html = library.page_for("torrents.to")
        assert "magnet:" in html

    def test_generic_fallback(self):
        html = SiteLibrary().page_for("unknown-site.net")
        assert "<title>" in html


class TestManipulationPages:
    def test_censorship_text_fragment(self):
        html = pages.censorship_landing("TR")
        assert "blocked by the order of the competent" in html
        assert "court/authority" in html
        assert "TIB" in html

    def test_censorship_covers_34_countries(self):
        assert len(pages.CENSOR_COUNTRIES) == 34
        for country in pages.CENSOR_COUNTRIES:
            assert "court/authority" in pages.censorship_landing(country)

    def test_blocking_page_not_censorship(self):
        html = pages.isp_blocking_page()
        assert "blocked" in html.lower()
        assert "court/authority" not in html

    def test_parking_page(self):
        html = pages.parking_page("dead-domain.com")
        assert "parked free" in html
        assert "may be for sale" in html

    def test_search_page(self):
        html = pages.search_page()
        assert 'name="q"' in html

    def test_error_page(self):
        html = pages.error_page(404)
        assert "<title>404 Not Found</title>" in html

    def test_router_login_vendors(self):
        for vendor in pages.ROUTER_VENDORS:
            html = pages.router_login(vendor)
            assert vendor in html
            assert 'type="password"' in html

    def test_captive_portal(self):
        html = pages.captive_portal("Grand Hotel", "hotel")
        assert "Grand Hotel" in html
        assert "roomnumber" in html

    def test_phishing_paypal_structure(self):
        html = pages.phishing_paypal()
        # The §4.3 signature: 46 <img> tags plus a form posting to .php.
        assert len(re.findall(r"<img\b", html)) == 46
        assert re.search(r'action="[^"]*\.php"', html)
        assert 'type="password"' in html

    def test_phishing_bank_swaps_form_action(self):
        original = SiteLibrary().page_for("bank.example")
        library = SiteLibrary()
        library.set_category("bank.example", CATEGORY_BANKING)
        original = library.page_for("bank.example")
        phished = pages.phishing_bank(original)
        assert phished != original
        assert "conferma.php" in phished

    def test_ad_injection(self):
        original = "<html><head></head><body><p>x</p></body></html>"
        injected = pages.inject_ad_banner(original)
        assert "injected-banner" in injected
        assert injected.index("injected-banner") < injected.index("<p>x</p>")

    def test_ad_script_injection(self):
        injected = pages.inject_ad_script("<html><body></body></html>")
        assert "deliver.js" in injected

    def test_ad_blanking(self):
        library = SiteLibrary()
        library.set_category("adnet.com", CATEGORY_ADS)
        original = library.page_for("adnet.com")
        blanked = pages.blank_ads(original)
        assert "blocked-ad-placeholder" in blanked or \
            "<!-- ad removed -->" in blanked

    def test_fake_search_with_ads(self):
        html = pages.fake_search_with_ads()
        assert 'name="q"' in html
        assert "banner" in html

    def test_malware_update_page(self):
        html = pages.malware_update_page()
        assert "update_installer.exe" in html
        assert "Critical update" in html
