"""Tests for the resolver manipulation behaviors."""

import pytest

from repro.dnswire.constants import RCODE_NOERROR, RCODE_NXDOMAIN
from repro.resolvers.behaviors import (
    AdInjectBehavior,
    BlockingBehavior,
    CensorshipBehavior,
    EmptyAnswerBehavior,
    LanIpBehavior,
    MailRedirectBehavior,
    MalwareBehavior,
    NsOnlyBehavior,
    NxRedirectBehavior,
    ParkingBehavior,
    PhishingBehavior,
    ProxyAllBehavior,
    SelfIpBehavior,
    StaleCdnBehavior,
    StaticIpBehavior,
)
from repro.resolvers.resolver import HonestResult


class FakeResolver:
    """Just enough of ResolverNode for behavior tests."""

    def __init__(self, ip="5.5.5.5", honest=None):
        self.ip = ip
        self._honest = honest or HonestResult(RCODE_NOERROR, ["9.9.9.9"])

    def resolve_honest(self, qname, network):
        return self._honest


class TestDomainTargeting:
    def test_suffix_matching(self):
        behavior = CensorshipBehavior(["facebook.com"], ["1.1.1.1"])
        assert behavior.targets("facebook.com")
        assert behavior.targets("www.facebook.com")
        assert behavior.targets("API.FACEBOOK.COM")
        assert not behavior.targets("notfacebook.com")
        assert not behavior.targets("facebook.com.evil.net")


class TestCensorship:
    def test_redirects_to_landing(self):
        behavior = CensorshipBehavior(["blocked.com"],
                                      ["1.1.1.1", "1.1.1.2"])
        answer = behavior.answer(FakeResolver(), "blocked.com", None)
        assert answer.addresses[0] in ("1.1.1.1", "1.1.1.2")

    def test_defers_for_other_domains(self):
        behavior = CensorshipBehavior(["blocked.com"], ["1.1.1.1"])
        assert behavior.answer(FakeResolver(), "ok.com", None) is None

    def test_deterministic_per_resolver(self):
        behavior = CensorshipBehavior(["blocked.com"],
                                      ["1.1.1.1", "1.1.1.2", "1.1.1.3"])
        resolver = FakeResolver()
        first = behavior.answer(resolver, "blocked.com", None)
        second = behavior.answer(resolver, "blocked.com", None)
        assert first.addresses == second.addresses


class TestBlockingAndParking:
    def test_blocking(self):
        behavior = BlockingBehavior(["malware.net"], "2.2.2.2")
        assert behavior.answer(FakeResolver(), "malware.net",
                               None).addresses == ["2.2.2.2"]
        assert behavior.answer(FakeResolver(), "ok.com", None) is None

    def test_parking(self):
        behavior = ParkingBehavior(["dead.com"], ["3.3.3.3", "3.3.3.4"])
        answer = behavior.answer(FakeResolver(), "dead.com", None)
        assert answer.addresses[0].startswith("3.3.3.")


class TestNxRedirect:
    def test_monetizes_nxdomain(self):
        resolver = FakeResolver(honest=HonestResult(RCODE_NXDOMAIN))
        behavior = NxRedirectBehavior("4.4.4.4")
        answer = behavior.answer(resolver, "typo.com", None)
        assert answer.addresses == ["4.4.4.4"]
        assert answer.rcode == RCODE_NOERROR

    def test_passes_existing_domains_through(self):
        resolver = FakeResolver(
            honest=HonestResult(RCODE_NOERROR, ["9.9.9.9"]))
        behavior = NxRedirectBehavior("4.4.4.4")
        answer = behavior.answer(resolver, "real.com", None)
        assert answer.addresses == ["9.9.9.9"]

    def test_monetizes_empty_noerror(self):
        resolver = FakeResolver(honest=HonestResult(RCODE_NOERROR, []))
        behavior = NxRedirectBehavior("4.4.4.4")
        assert behavior.answer(resolver, "e.com", None).addresses == \
            ["4.4.4.4"]


class TestSimpleAnswers:
    def test_static_ip(self):
        behavior = StaticIpBehavior("6.6.6.6")
        for domain in ("a.com", "b.net", "c.org"):
            assert behavior.answer(FakeResolver(), domain,
                                   None).addresses == ["6.6.6.6"]

    def test_self_ip(self):
        behavior = SelfIpBehavior()
        assert behavior.answer(FakeResolver(ip="7.7.7.7"), "a.com",
                               None).addresses == ["7.7.7.7"]

    def test_lan_ip(self):
        behavior = LanIpBehavior("192.168.1.1")
        assert behavior.answer(FakeResolver(), "a.com",
                               None).addresses == ["192.168.1.1"]

    def test_empty(self):
        answer = EmptyAnswerBehavior().answer(FakeResolver(), "a.com", None)
        assert answer.empty
        assert answer.rcode == RCODE_NOERROR

    def test_ns_only(self):
        answer = NsOnlyBehavior().answer(FakeResolver(), "a.com", None)
        assert answer.ns_only


class TestRedirectors:
    def test_ad_inject_targets_ads_only(self):
        behavior = AdInjectBehavior(["doubleclick.net"], ["8.8.1.1"])
        assert behavior.answer(FakeResolver(), "ad.doubleclick.net",
                               None).addresses == ["8.8.1.1"]
        assert behavior.answer(FakeResolver(), "bank.com", None) is None

    def test_phishing(self):
        behavior = PhishingBehavior(["paypal.com"],
                                    ["8.8.2.1", "8.8.2.2"])
        answer = behavior.answer(FakeResolver(), "www.paypal.com", None)
        assert answer.addresses[0].startswith("8.8.2.")

    def test_phishing_ips_vary_across_resolvers(self):
        behavior = PhishingBehavior(
            ["paypal.com"], ["8.8.2.%d" % i for i in range(1, 9)])
        chosen = {behavior.answer(FakeResolver(ip="5.5.5.%d" % i),
                                  "paypal.com", None).addresses[0]
                  for i in range(40)}
        assert len(chosen) > 3

    def test_malware(self):
        behavior = MalwareBehavior(["get.adobe.com"], ["8.8.3.1"])
        assert behavior.answer(FakeResolver(), "get.adobe.com",
                               None).addresses == ["8.8.3.1"]

    def test_mail_redirect(self):
        behavior = MailRedirectBehavior(["imap.gmail.com"], ["8.8.4.1"])
        assert behavior.answer(FakeResolver(), "imap.gmail.com",
                               None).addresses == ["8.8.4.1"]
        assert behavior.answer(FakeResolver(), "gmail.com", None) is None


class TestProxyAll:
    def test_proxies_existing_domains(self):
        behavior = ProxyAllBehavior(["8.8.5.1", "8.8.5.2"])
        answer = behavior.answer(FakeResolver(), "anything.com", None)
        assert answer.addresses[0].startswith("8.8.5.")

    def test_preserves_nxdomain(self):
        resolver = FakeResolver(honest=HonestResult(RCODE_NXDOMAIN))
        behavior = ProxyAllBehavior(["8.8.5.1"])
        answer = behavior.answer(resolver, "typo.com", None)
        assert answer.rcode == RCODE_NXDOMAIN
        assert not answer.addresses


class TestStaleCdn:
    def test_returns_stale_edges(self):
        behavior = StaleCdnBehavior({"bigsite.com": ["8.8.6.1"]})
        assert behavior.answer(FakeResolver(), "www.bigsite.com",
                               None).addresses == ["8.8.6.1"]
        assert behavior.answer(FakeResolver(), "other.com", None) is None
