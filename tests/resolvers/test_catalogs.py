"""Tests for the software and device catalogs."""

from repro.resolvers.devices import (
    ANONYMOUS_PROFILE_KEYS,
    DEVICE_CATALOG,
    DeviceProfile,
    prevalence_of,
    profiles_with_tcp,
)
from repro.resolvers.software import (
    CHAOS_STYLE_SHARES,
    HIDDEN_VERSION_STRINGS,
    LONG_TAIL_SOFTWARE,
    SOFTWARE_CATALOG,
    SoftwareProfile,
)


class TestSoftwareCatalog:
    def test_top10_size_and_order(self):
        assert len(SOFTWARE_CATALOG) == 10
        shares = [share for __, share in SOFTWARE_CATALOG]
        assert shares == sorted(shares, reverse=True)
        assert SOFTWARE_CATALOG[0][0].full_name == "BIND 9.8.2"
        assert abs(shares[0] - 0.198) < 1e-9

    def test_catalog_shares_below_one(self):
        total = sum(share for __, share in SOFTWARE_CATALOG)
        assert 0.6 < total < 0.7  # ~61.5% in the paper's Table 3

    def test_long_tail_individually_small(self):
        remaining = 1.0 - sum(share for __, share in SOFTWARE_CATALOG)
        per_entry = remaining / len(LONG_TAIL_SOFTWARE)
        smallest_top10 = SOFTWARE_CATALOG[-1][1]
        assert per_entry < smallest_top10

    def test_chaos_style_shares_sum_to_one(self):
        assert abs(sum(s for __, s in CHAOS_STYLE_SHARES) - 1.0) < 1e-9

    def test_vulnerability_flags(self):
        bind982 = SOFTWARE_CATALOG[0][0]
        assert bind982.has_vulnerability("IP Bypass")
        assert bind982.has_vulnerability("DoS")
        assert not bind982.has_vulnerability("RCE")

    def test_profile_identity(self):
        left = SoftwareProfile("BIND", "9.8.2", "2012-04")
        right = SoftwareProfile("BIND", "9.8.2", "2099-01")
        assert left == right
        assert hash(left) == hash(right)

    def test_hidden_strings_not_versions(self):
        from repro.analysis.software import SoftwareVersionMatcher
        matcher = SoftwareVersionMatcher()
        for text in HIDDEN_VERSION_STRINGS:
            assert matcher.match(text) is None, text


class TestDeviceCatalog:
    def test_anonymous_profiles_exist_with_tcp(self):
        for key in ANONYMOUS_PROFILE_KEYS:
            profile = DEVICE_CATALOG[key]
            assert profile.has_tcp_services
            assert profile.hardware == "Unknown"

    def test_silent_profiles_have_no_ports(self):
        assert not DEVICE_CATALOG["silent-cpe"].has_tcp_services
        assert DEVICE_CATALOG["silent-cpe"].open_ports() == frozenset()

    def test_profiles_with_tcp_excludes_silent(self):
        keys = {profile.key for profile in profiles_with_tcp()}
        assert "silent-cpe" not in keys
        assert "zyxel-p-660hn-t1a" in keys

    def test_zyxel_runs_zynos(self):
        assert DEVICE_CATALOG["zyxel-p-660hn-t1a"].os == "ZyNOS"

    def test_dm500plus_token_present(self):
        # The paper's example fingerprint token.
        banners = DEVICE_CATALOG["dvr-dm500plus"].banners
        assert any("dm500plus login" in banner for banner in
                   banners.values())

    def test_prevalence_defaults_to_one(self):
        assert prevalence_of(DeviceProfile("nonexistent", "Router",
                                           "Linux")) == 1.0
        assert prevalence_of(DEVICE_CATALOG["zyxel-p-660hn-t1a"]) > 1.0

    def test_http_body_opens_port_80(self):
        profile = DeviceProfile("x", "Router", "Linux",
                                http_body="<html></html>")
        assert 80 in profile.open_ports()
