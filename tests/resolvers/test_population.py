"""Tests for the population generator's distributions and wiring."""

import pytest

from repro.inetmodel import (
    AutonomousSystem,
    ChurnModel,
    PrefixAllocator,
    RdnsRegistry,
)
from repro.netsim import Network, SimClock
from repro.netsim.clock import WEEK
from repro.datasets import SNOOPING_TLDS
from repro.resolvers import PopulationBuilder, ResolverSpec
from repro.resolvers.resolver import MODE_NORMAL, MODE_REFUSED, \
    MODE_SERVFAIL
from repro.resolvers.software import STYLE_VERSION


@pytest.fixture
def built():
    network = Network(SimClock(), seed=1)
    rdns = RdnsRegistry()
    churn = ChurnModel(network, rdns=rdns, seed=2)
    allocator = PrefixAllocator()
    pool = allocator.allocate(18)
    asys = AutonomousSystem(64500, "Test ISP", "US", prefixes=[pool])
    builder = PopulationBuilder(network, churn, None, rdns=rdns,
                                snooping_tlds=SNOOPING_TLDS, seed=3)
    spec = ResolverSpec(asys, pool, 600)
    nodes = builder.build_pool(spec)
    return network, rdns, churn, builder, nodes, spec


class TestDistributions:
    def test_count(self, built):
        # 600 pool members plus the ISP's provider resolver.
        __, __, __, builder, nodes, __ = built
        assert len(nodes) == 601
        assert len(builder.resolvers) == 601

    def test_all_registered_with_unique_ips(self, built):
        network, __, __, __, nodes, __ = built
        ips = {node.ip for node in nodes}
        assert len(ips) == 601
        for node in nodes[:20]:
            assert network.node_at(node.ip) is node

    def test_response_mode_shares(self, built):
        __, __, __, __, nodes, spec = built
        refused = sum(1 for n in nodes if n.response_mode == MODE_REFUSED)
        servfail = sum(1 for n in nodes
                       if n.response_mode == MODE_SERVFAIL)
        assert 0.04 < refused / 600 < 0.14
        assert 0.01 < servfail / 600 < 0.09

    def test_chaos_version_share(self, built):
        __, __, __, __, nodes, __ = built
        with_version = [n for n in nodes if n.chaos_style == STYLE_VERSION]
        assert 0.25 < len(with_version) / 600 < 0.45
        assert all(n.software is not None for n in with_version)

    def test_tcp_share(self, built):
        __, __, __, __, nodes, __ = built
        with_tcp = sum(1 for n in nodes if n.tcp_ports())
        assert 0.18 < with_tcp / 600 < 0.36

    def test_divergent_sources_exist(self, built):
        __, __, __, __, nodes, __ = built
        divergent = [n for n in nodes if n.answer_source_ip]
        assert 0 < len(divergent) < 60
        for node in divergent:
            assert node.answer_source_ip != node.ip

    def test_rdns_coverage(self, built):
        __, rdns, __, __, nodes, __ = built
        with_ptr = sum(1 for n in nodes if rdns.ptr(n.ip))
        assert 0.6 < with_ptr / 600 < 0.95

    def test_by_country_index(self, built):
        __, __, __, builder, nodes, __ = built
        assert len(builder.by_country["US"]) == 601


class TestLifecycleWiring:
    def test_refused_resolvers_are_stable(self, built):
        __, __, churn, builder, nodes, __ = built
        for host in builder.hosts:
            if host.node.response_mode == MODE_REFUSED:
                assert host.offline_after is None
                assert host.lease_duration >= 100 * WEEK

    def test_offline_fraction_applied(self):
        network = Network(SimClock(), seed=1)
        churn = ChurnModel(network, seed=2)
        pool = PrefixAllocator().allocate(18)
        asys = AutonomousSystem(64501, "Dying ISP", "AR", prefixes=[pool])
        builder = PopulationBuilder(network, churn, None, seed=3)
        builder.build_pool(ResolverSpec(asys, pool, 300,
                                        offline_fraction=0.9))
        with_offline = sum(1 for host in builder.hosts
                           if host.offline_after is not None)
        assert with_offline > 180

    def test_growth_fraction_starts_offline(self):
        network = Network(SimClock(), seed=1)
        churn = ChurnModel(network, seed=2)
        pool = PrefixAllocator().allocate(18)
        asys = AutonomousSystem(64502, "Growing ISP", "IN",
                                prefixes=[pool])
        builder = PopulationBuilder(network, churn, None, seed=3)
        builder.build_pool(ResolverSpec(asys, pool, 300,
                                        growth_fraction=0.3))
        total = len(builder.hosts)  # 300 members + the provider resolver
        offline_now = sum(1 for host in builder.hosts if not host.online)
        assert 50 < offline_now < 130
        assert len(builder.online_resolver_ips()) == total - offline_now

    def test_behavior_factory_invoked(self):
        network = Network(SimClock(), seed=1)
        churn = ChurnModel(network, seed=2)
        pool = PrefixAllocator().allocate(18)
        asys = AutonomousSystem(64503, "ISP", "US", prefixes=[pool])
        builder = PopulationBuilder(network, churn, None, seed=3)
        calls = []

        def factory(rng, spec, index, ip):
            calls.append(ip)
            return []

        builder.build_pool(ResolverSpec(asys, pool, 50,
                                        behavior_factory=factory))
        assert len(calls) == 50
