"""Tests for the shared honest-resolution service."""

import pytest

from repro.dnswire.constants import RCODE_NOERROR, RCODE_NXDOMAIN
from repro.netsim import GreatFirewall, Ipv4Network
from repro.resolvers import ResolutionService, ResolverNode


@pytest.fixture
def world(mini):
    mini.builder.register_domain("plain.com",
                                 {"plain.com": ["198.18.0.1"]})
    mini.builder.register_domain("scan.dnsstudy.edu",
                                 wildcard_address="198.18.0.9")
    mini.builder.register_domain(
        "cdnsite.com", {"cdnsite.com": ["198.18.1.1", "198.18.1.2"]})
    mini.service = ResolutionService(
        mini.hierarchy.root_ips, mini.trusted_ip,
        cdn_pools={"cdnsite.com": ["198.18.1.%d" % i
                                   for i in range(1, 9)]},
        wildcard_suffixes=["scan.dnsstudy.edu"])
    return mini


class TestTrustedResolution:
    def test_plain_domain_cached(self, world):
        first = world.service.resolve_trusted(world.network, "plain.com")
        assert first.addresses == ["198.18.0.1"]
        count = world.service.full_resolutions
        again = world.service.resolve_trusted(world.network, "plain.com")
        assert again.addresses == ["198.18.0.1"]
        assert world.service.full_resolutions == count

    def test_nxdomain_cached(self, world):
        result = world.service.resolve_trusted(world.network,
                                               "missing.plain.com")
        assert result.rcode == RCODE_NXDOMAIN

    def test_wildcard_suffix_cached_once(self, world):
        world.service.resolve_trusted(world.network,
                                      "r1.aabbccdd.scan.dnsstudy.edu")
        count = world.service.full_resolutions
        result = world.service.resolve_trusted(
            world.network, "r2.11223344.scan.dnsstudy.edu")
        assert result.addresses == ["198.18.0.9"]
        assert world.service.full_resolutions == count

    def test_cdn_pool_slice(self, world):
        result = world.service.resolve_trusted(world.network,
                                               "cdnsite.com")
        assert len(result.addresses) == 2
        assert all(a.startswith("198.18.1.") for a in result.addresses)


class TestPerResolverResolution:
    def test_cdn_slices_differ_between_resolvers(self, world):
        slices = set()
        for index in range(12):
            node = ResolverNode(world.infra.address_at(42000 + index),
                                resolution_service=world.service)
            result = world.service.resolve_for(world.network, node,
                                               "cdnsite.com")
            assert result.rcode == RCODE_NOERROR
            slices.add(tuple(result.addresses))
        assert len(slices) > 2, "GeoDNS slices must vary by resolver"

    def test_cdn_exact_match_only(self, world):
        node = ResolverNode(world.infra.address_at(42050),
                            resolution_service=world.service)
        # A random subdomain of the CDN customer must NOT get edges.
        result = world.service.resolve_for(world.network, node,
                                           "xyz.cdnsite.com")
        assert result.rcode == RCODE_NXDOMAIN

    def test_www_alias_gets_pool(self, world):
        node = ResolverNode(world.infra.address_at(42051),
                            resolution_service=world.service)
        result = world.service.resolve_for(world.network, node,
                                           "www.cdnsite.com")
        assert result.addresses
        assert all(a.startswith("198.18.1.") for a in result.addresses)


class TestGfwPoisoning:
    CN_PREFIX = "110.0.0.0/16"  # disjoint from the infra block

    def add_gfw(self, world):
        gfw = GreatFirewall([Ipv4Network(self.CN_PREFIX)], ["plain.com"],
                            seed=4)
        world.network.add_middlebox(gfw)
        return gfw

    def test_inside_resolver_poisoned(self, world):
        gfw = self.add_gfw(world)
        inside = ResolverNode("110.0.0.5",
                              resolution_service=world.service)
        result = world.service.resolve_for(world.network, inside,
                                           "plain.com")
        assert result.addresses != ["198.18.0.1"], \
            "the forged answer must win the race"

    def test_outside_resolver_clean(self, world):
        self.add_gfw(world)
        outside = ResolverNode(world.infra.address_at(42060),
                               resolution_service=world.service)
        result = world.service.resolve_for(world.network, outside,
                                           "plain.com")
        assert result.addresses == ["198.18.0.1"]

    def test_immune_resolver_clean(self, world):
        self.add_gfw(world)
        immune = ResolverNode("110.0.0.6",
                              resolution_service=world.service,
                              gfw_immune=True)
        result = world.service.resolve_for(world.network, immune,
                                           "plain.com")
        assert result.addresses == ["198.18.0.1"]

    def test_uncensored_names_clean_inside(self, world):
        self.add_gfw(world)
        world.builder.register_domain("other.net",
                                      {"other.net": ["198.18.0.3"]})
        inside = ResolverNode("110.0.0.7",
                              resolution_service=world.service)
        result = world.service.resolve_for(world.network, inside,
                                           "other.net")
        assert result.addresses == ["198.18.0.3"]
