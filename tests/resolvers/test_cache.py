"""Tests for the DNS cache and the cache-activity model."""

from hypothesis import given, strategies as st

from repro.dnswire.records import ResourceRecord
from repro.resolvers.cache import CacheActivityModel, DnsCache


def a_records(name="x.example", address="1.2.3.4", ttl=100):
    return [ResourceRecord.a(name, address, ttl=ttl)]


class TestDnsCache:
    def test_hit_before_expiry(self):
        cache = DnsCache()
        cache.put("x.example", 1, a_records(ttl=100), now=0)
        records = cache.get("x.example", 1, now=50)
        assert records is not None
        assert records[0].ttl == 50
        assert cache.hits == 1

    def test_miss_after_expiry(self):
        cache = DnsCache()
        cache.put("x.example", 1, a_records(ttl=100), now=0)
        assert cache.get("x.example", 1, now=150) is None
        assert cache.misses == 1
        assert len(cache) == 0

    def test_case_insensitive_keys(self):
        cache = DnsCache()
        cache.put("X.Example", 1, a_records(), now=0)
        assert cache.get("x.example", 1, now=1) is not None

    def test_explicit_ttl_overrides(self):
        cache = DnsCache()
        cache.put("x.example", 1, a_records(ttl=100), now=0, ttl=10)
        assert cache.get("x.example", 1, now=50) is None

    def test_eviction_at_capacity(self):
        cache = DnsCache(max_entries=3)
        for i in range(4):
            cache.put("d%d.example" % i, 1, a_records(ttl=100 + i), now=0)
        assert len(cache) == 3
        # The entry closest to expiry (d0, ttl=100) was evicted.
        assert cache.get("d0.example", 1, now=1) is None

    def test_refresh_at_capacity_does_not_evict(self):
        # Re-putting an existing key when the cache is full must not
        # evict a victim (regression: the eviction check ran before the
        # existing-key check, shrinking the cache on every refresh).
        cache = DnsCache(max_entries=3)
        for i in range(3):
            cache.put("d%d.example" % i, 1, a_records(ttl=100 + i), now=0)
        cache.put("d0.example", 1, a_records(ttl=500), now=0)
        assert len(cache) == 3
        for i in range(3):
            assert cache.get("d%d.example" % i, 1, now=1) is not None

    def test_refresh_is_case_insensitive_at_capacity(self):
        cache = DnsCache(max_entries=2)
        cache.put("a.example", 1, a_records(ttl=100), now=0)
        cache.put("b.example", 1, a_records(ttl=200), now=0)
        cache.put("A.Example", 1, a_records(ttl=300), now=0)
        assert len(cache) == 2
        assert cache.get("b.example", 1, now=1) is not None

    def test_flush(self):
        cache = DnsCache()
        cache.put("x.example", 1, a_records(), now=0)
        cache.flush()
        assert len(cache) == 0

    @given(st.integers(min_value=1, max_value=1000),
           st.integers(min_value=0, max_value=2000))
    def test_ttl_decay_property(self, ttl, elapsed):
        cache = DnsCache()
        cache.put("x.example", 1, a_records(ttl=ttl), now=0)
        records = cache.get("x.example", 1, now=elapsed)
        if elapsed >= ttl:
            assert records is None
        else:
            assert records[0].ttl == ttl - elapsed


class TestActivityModel:
    def test_normal_cycle(self):
        model = CacheActivityModel(
            CacheActivityModel.STYLE_NORMAL,
            tld_patterns={"com": (100.0, 0.0)}, ttl=1000)
        # Inside the cached window the TTL decays...
        assert model.observable_ttl("com", 0) == 1000
        assert model.observable_ttl("com", 400) == 600
        # ...then the entry is gone during the gap...
        assert model.observable_ttl("com", 1050) is None
        # ...and reappears at full TTL after a client lookup.
        assert model.observable_ttl("com", 1150) == 950

    def test_unpatterned_tld_never_cached(self):
        model = CacheActivityModel(
            CacheActivityModel.STYLE_NORMAL,
            tld_patterns={"com": (100.0, 0.0)}, ttl=1000)
        assert model.observable_ttl("de", 0) is None

    def test_idle_never_readded(self):
        model = CacheActivityModel(
            CacheActivityModel.STYLE_IDLE,
            tld_patterns={"com": (0.0, 0.0)}, ttl=1000)
        assert model.observable_ttl("com", 100) == 900
        assert model.observable_ttl("com", 2000) is None
        assert model.observable_ttl("com", 9999) is None

    def test_static_ttl(self):
        model = CacheActivityModel(CacheActivityModel.STYLE_STATIC_TTL,
                                   ttl=777)
        assert model.observable_ttl("com", 0) == 777
        assert model.observable_ttl("com", 99999) == 777

    def test_zero_ttl(self):
        model = CacheActivityModel(CacheActivityModel.STYLE_ZERO_TTL)
        assert model.observable_ttl("com", 123) == 0

    def test_empty_style(self):
        model = CacheActivityModel(CacheActivityModel.STYLE_EMPTY)
        assert model.observable_ttl("com", 0) == "empty"

    def test_single_then_silent(self):
        model = CacheActivityModel(CacheActivityModel.STYLE_SINGLE,
                                   ttl=500)
        assert model.observable_ttl("com", 0) == 500
        assert model.observable_ttl("com", 100) == "silent"
        assert model.observable_ttl("de", 100) == 500

    def test_unreachable(self):
        model = CacheActivityModel(CacheActivityModel.STYLE_UNREACHABLE)
        assert model.observable_ttl("com", 0) is None

    def test_resetting_stays_high(self):
        model = CacheActivityModel(
            CacheActivityModel.STYLE_RESETTING,
            tld_patterns={"com": (10.0, 0.0)}, ttl=1000)
        for t in range(0, 5000, 137):
            value = model.observable_ttl("com", t)
            assert value >= 750

    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_normal_ttl_bounds_property(self, t):
        model = CacheActivityModel(
            CacheActivityModel.STYLE_NORMAL,
            tld_patterns={"com": (500.0, 123.0)}, ttl=1000)
        value = model.observable_ttl("com", t)
        assert value is None or 0 <= value <= 1000
