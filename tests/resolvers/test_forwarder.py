"""Tests for the forwarding-proxy resolver mode (§2.2's DNS proxies)."""

import pytest

from repro.dnswire import Message
from repro.dnswire.constants import (
    CLASS_CH,
    QTYPE_TXT,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
)
from repro.netsim import UdpPacket
from repro.resolvers import ResolverNode, StaticIpBehavior
from repro.resolvers.software import SOFTWARE_CATALOG, STYLE_VERSION


@pytest.fixture
def world(mini):
    mini.builder.register_domain("example.com",
                                 {"example.com": ["198.18.0.1"]})
    upstream = ResolverNode(mini.infra.address_at(46000),
                            resolution_service=mini.service)
    mini.network.register(upstream)
    mini.upstream = upstream
    forwarder = ResolverNode(mini.infra.address_at(46001),
                             forward_to=upstream.ip,
                             software=SOFTWARE_CATALOG[5][0],
                             chaos_style=STYLE_VERSION)
    mini.network.register(forwarder)
    mini.forwarder = forwarder
    return mini


def ask(world, dst, name, qtype=1, qclass=1):
    query = Message.query(name, qtype=qtype, qclass=qclass, txid=77)
    packet = UdpPacket(world.client_ip, 1234, dst, 53, query.to_wire())
    responses = world.network.send_udp(packet)
    if not responses:
        return None, None
    return (Message.from_wire(responses[0].packet.payload),
            responses[0].packet.src_ip)


class TestForwarding:
    def test_relays_a_queries(self, world):
        message, source = ask(world, world.forwarder.ip, "example.com")
        assert message.rcode == RCODE_NOERROR
        assert message.a_addresses() == ["198.18.0.1"]
        # The client sees the FORWARDER as the responder.
        assert source == world.forwarder.ip
        assert message.header.txid == 77

    def test_relays_nxdomain(self, world):
        message, __ = ask(world, world.forwarder.ip, "nope.example.com")
        assert message.rcode == RCODE_NXDOMAIN

    def test_upstream_manipulation_passes_through(self, world):
        # A manipulating upstream poisons every client of the proxy.
        world.upstream.behaviors.append(StaticIpBehavior("6.6.6.6"))
        message, __ = ask(world, world.forwarder.ip, "example.com")
        assert message.a_addresses() == ["6.6.6.6"]

    def test_chaos_answered_locally(self, world):
        message, __ = ask(world, world.forwarder.ip, "version.bind",
                          qtype=QTYPE_TXT, qclass=CLASS_CH)
        # The forwarder's own software identity, not the upstream's.
        assert message.answers[0].data.text == \
            world.forwarder.software.version_string

    def test_dead_upstream_silent(self, world):
        orphan = ResolverNode(world.infra.address_at(46002),
                              forward_to=world.infra.address_at(46999))
        world.network.register(orphan)
        message, __ = ask(world, orphan.ip, "example.com")
        assert message is None

    def test_upstream_query_counted(self, world):
        before = world.upstream.query_count
        ask(world, world.forwarder.ip, "example.com")
        assert world.upstream.query_count == before + 1

    def test_divergent_source_forwarder(self, world):
        proxy = ResolverNode(world.infra.address_at(46003),
                             forward_to=world.upstream.ip,
                             answer_source_ip=world.infra.address_at(
                                 46004))
        world.network.register(proxy)
        message, source = ask(world, proxy.ip, "example.com")
        assert message.a_addresses() == ["198.18.0.1"]
        assert source == world.infra.address_at(46004)
