"""Tests for closed (IP-restricted) resolvers (§2.1)."""

import pytest

from repro.dnswire import Message
from repro.dnswire.constants import RCODE_NOERROR, RCODE_REFUSED
from repro.netsim import Ipv4Network, UdpPacket
from repro.resolvers import ResolverNode


@pytest.fixture
def world(mini):
    mini.builder.register_domain("example.com",
                                 {"example.com": ["198.18.0.1"]})
    mini.customer_net = Ipv4Network("100.100.0.0/16")
    closed = ResolverNode(mini.infra.address_at(47000),
                          resolution_service=mini.service,
                          allowed_networks=[mini.customer_net])
    mini.network.register(closed)
    mini.closed = closed
    return mini


def ask(world, src, name="example.com"):
    query = Message.query(name, txid=5)
    packet = UdpPacket(src, 1234, world.closed.ip, 53, query.to_wire())
    responses = world.network.send_udp(packet)
    return Message.from_wire(responses[0].packet.payload)


def test_customer_space_served(world):
    response = ask(world, "100.100.5.5")
    assert response.rcode == RCODE_NOERROR
    assert response.a_addresses() == ["198.18.0.1"]


def test_outsider_refused(world):
    response = ask(world, world.client_ip)
    assert response.rcode == RCODE_REFUSED
    assert not response.a_addresses()


def test_scanner_counts_closed_as_refused(world):
    from repro.scanner import Ipv4Scanner
    world.builder.register_domain("scan.dnsstudy.edu",
                                  wildcard_address="198.18.0.9")
    scanner = Ipv4Scanner(world.network, world.client_ip,
                          "scan.dnsstudy.edu")
    result = scanner.scan_addresses([world.closed.ip])
    assert world.closed.ip in result.refused
    assert world.closed.ip not in result.noerror


def test_forwarder_inside_customer_space_works(world):
    forwarder = ResolverNode("100.100.9.9",
                             forward_to=world.closed.ip)
    world.network.register(forwarder)
    query = Message.query("example.com", txid=6)
    packet = UdpPacket(world.client_ip, 999, forwarder.ip, 53,
                       query.to_wire())
    responses = world.network.send_udp(packet)
    message = Message.from_wire(responses[0].packet.payload)
    # The outside client reaches the closed resolver THROUGH the open
    # forwarder — the indirection the paper's proxies provide.
    assert message.a_addresses() == ["198.18.0.1"]
