"""Lazy materialization is order-independent.

The lazy population keeps only a 64-bit derivation seed per node;
:meth:`LazyPool.synthesize` replays the eager builder's draw sequence
from that seed, so the node that materializes must be a pure function
of ``(seed, pool, index)`` — no matter when it materializes, in what
order, or how many times the LRU evicted and rebuilt it in between.
These tests drive materialization forward, backward, and in a seeded
random-sample order (with a cache small enough to force constant
eviction) and require bit-identical node state, then require the scan
itself — the ultimate consumer — to produce byte-identical pickled
results across lazy/eager worlds at shard counts 1 and 4.
"""

import pickle
import random

import pytest

from repro.resolvers.population import LazyResolverNode
from repro.scenario import ScenarioConfig, build_scenario

SCALE = 120000          # a few hundred pool members: fast, full variety


def _scenario(lazy, node_cache=8192, seed=3):
    return build_scenario(ScenarioConfig(
        scale=SCALE, seed=seed, lazy_population=lazy,
        node_cache=node_cache))


def _fingerprint(node):
    """Bit-stable digest of everything a node's behavior depends on."""
    activity = node.activity
    return (
        node.ip,
        node.response_mode,
        node.chaos_style,
        repr(node.software),
        node.forward_to,
        node.answer_source_ip,
        node.gfw_immune,
        node.recursion_available,
        tuple(sorted(type(b).__name__ for b in node.behaviors)),
        type(node.device).__name__ if node.device else None,
        repr(node.device_page),
        tuple(sorted(
            (key, repr(value)) for key, value in vars(activity).items()))
        if activity else None,
    )


def _placeholders(scenario):
    nodes = [node for node in scenario.population.resolvers
             if isinstance(node, LazyResolverNode)]
    assert len(nodes) > 100
    return nodes


def _materialize(scenario, order):
    """ip -> fingerprint for every placeholder, touched in ``order``."""
    nodes = _placeholders(scenario)
    prints = {}
    for index in order(len(nodes)):
        node = nodes[index]
        prints[node.ip] = _fingerprint(node._real())
    return prints


def _forward(n):
    return range(n)


def _backward(n):
    return range(n - 1, -1, -1)


def _sampled(n):
    # A random *sample with replacement*: some nodes materialize many
    # times (cache hits and LRU rebuilds), interleaved arbitrarily,
    # before the final full sweep guarantees total coverage.
    rng = random.Random(97)
    return [rng.randrange(n) for __ in range(3 * n)] + list(range(n))


class TestMaterializationOrder:
    def test_forward_backward_sampled_identical(self):
        # node_cache=17 forces hundreds of evictions + rebuilds in
        # every traversal; the derived state must not care.
        reference = _materialize(_scenario(True, node_cache=17), _forward)
        assert _materialize(_scenario(True, node_cache=17),
                            _backward) == reference
        assert _materialize(_scenario(True, node_cache=17),
                            _sampled) == reference

    def test_rematerialization_after_eviction_is_identical(self):
        scenario = _scenario(True, node_cache=17)
        nodes = _placeholders(scenario)
        first = _fingerprint(nodes[0]._real())
        for node in nodes:          # evict node 0 many times over
            node._real()
        assert _fingerprint(nodes[0]._real()) == first

    def test_lazy_matches_eager_node_state(self):
        lazy = _materialize(_scenario(True), _forward)
        eager = {}
        for node in _scenario(False).population.resolvers:
            if node.ip in lazy:
                eager[node.ip] = _fingerprint(node)
        assert eager == lazy


class TestScanFingerprint:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_lazy_streamed_matches_eager_resident(self, shards):
        def run(lazy, stream):
            scenario = _scenario(lazy)
            campaign = scenario.new_campaign(
                verify=False, shards=shards, stream_results=stream,
                chunk_rows=64)
            return pickle.dumps(campaign.run_week().result)

        reference = run(lazy=False, stream=False)
        assert run(lazy=True, stream=False) == reference
        assert run(lazy=True, stream=True) == reference
