"""Tests for the resolver node: modes, CHAOS, A answers, snooping."""

import pytest

from repro.dnswire import Message
from repro.dnswire.constants import (
    CLASS_CH,
    QTYPE_A,
    QTYPE_NS,
    QTYPE_TXT,
    RCODE_NOERROR,
    RCODE_NOTIMP,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
)
from repro.netsim import UdpPacket
from repro.resolvers import ResolverNode, StaticIpBehavior
from repro.resolvers.cache import CacheActivityModel
from repro.resolvers.resolver import (
    MODE_NORMAL,
    MODE_REFUSED,
    MODE_SERVFAIL,
    MODE_SILENT,
)
from repro.resolvers.software import (
    SOFTWARE_CATALOG,
    STYLE_ERROR,
    STYLE_HIDDEN,
    STYLE_NO_VERSION,
    STYLE_VERSION,
)


@pytest.fixture
def world(mini):
    mini.builder.register_domain("example.com",
                                 {"example.com": ["198.18.0.1"]})
    return mini


def make_resolver(world, ip="198.18.9.1", **kwargs):
    node = ResolverNode(ip, resolution_service=world.service, **kwargs)
    world.network.register(node)
    return node


def ask(world, resolver_ip, name, qtype=QTYPE_A, qclass=1, rd=True):
    query = Message.query(name, qtype=qtype, qclass=qclass, txid=9, rd=rd)
    packet = UdpPacket(world.client_ip, 1234, resolver_ip, 53,
                       query.to_wire())
    responses = world.network.send_udp(packet)
    if not responses:
        return None
    return Message.from_wire(responses[0].packet.payload)


class TestModes:
    def test_normal_recursion(self, world):
        make_resolver(world)
        response = ask(world, "198.18.9.1", "example.com")
        assert response.rcode == RCODE_NOERROR
        assert response.a_addresses() == ["198.18.0.1"]

    def test_refused_mode(self, world):
        make_resolver(world, response_mode=MODE_REFUSED)
        assert ask(world, "198.18.9.1",
                   "example.com").rcode == RCODE_REFUSED

    def test_servfail_mode(self, world):
        make_resolver(world, response_mode=MODE_SERVFAIL)
        assert ask(world, "198.18.9.1",
                   "example.com").rcode == RCODE_SERVFAIL

    def test_silent_mode(self, world):
        make_resolver(world, response_mode=MODE_SILENT)
        assert ask(world, "198.18.9.1", "example.com") is None

    def test_nxdomain_propagates(self, world):
        make_resolver(world)
        assert ask(world, "198.18.9.1",
                   "missing.example.com").rcode == RCODE_NXDOMAIN


class TestAnswers:
    def test_0x20_case_echoed(self, world):
        make_resolver(world)
        response = ask(world, "198.18.9.1", "ExAmPlE.CoM")
        assert response.question.name == "ExAmPlE.CoM"

    def test_behavior_takes_priority(self, world):
        make_resolver(world, behaviors=[StaticIpBehavior("6.6.6.6")])
        response = ask(world, "198.18.9.1", "example.com")
        assert response.a_addresses() == ["6.6.6.6"]

    def test_answer_cached(self, world):
        resolver = make_resolver(world)
        ask(world, "198.18.9.1", "example.com")
        before = world.service.full_resolutions
        ask(world, "198.18.9.1", "example.com")
        assert world.service.full_resolutions == before
        assert resolver.cache.hits >= 1

    def test_cached_ttl_decays(self, world):
        make_resolver(world)
        first = ask(world, "198.18.9.1", "example.com")
        world.clock.advance(100)
        second = ask(world, "198.18.9.1", "example.com")
        assert second.answers[0].ttl < first.answers[0].ttl

    def test_divergent_answer_source(self, world):
        make_resolver(world, answer_source_ip="198.18.9.200")
        query = Message.query("example.com", txid=9)
        packet = UdpPacket(world.client_ip, 1234, "198.18.9.1", 53,
                           query.to_wire())
        responses = world.network.send_udp(packet)
        assert responses[0].packet.src_ip == "198.18.9.200"

    def test_notimp_for_exotic_qtype(self, world):
        make_resolver(world)
        response = ask(world, "198.18.9.1", "example.com", qtype=99)
        assert response.rcode == RCODE_NOTIMP


class TestChaos:
    def ask_version(self, world, name="version.bind"):
        return ask(world, "198.18.9.1", name, qtype=QTYPE_TXT,
                   qclass=CLASS_CH)

    def test_version_style(self, world):
        software = SOFTWARE_CATALOG[0][0]
        make_resolver(world, software=software,
                      chaos_style=STYLE_VERSION)
        response = self.ask_version(world)
        assert response.answers[0].data.text == software.version_string

    def test_error_style(self, world):
        make_resolver(world, chaos_style=STYLE_ERROR)
        response = self.ask_version(world)
        assert response.rcode in (RCODE_REFUSED, RCODE_SERVFAIL)

    def test_no_version_style(self, world):
        make_resolver(world, chaos_style=STYLE_NO_VERSION)
        response = self.ask_version(world)
        assert response.rcode == RCODE_NOERROR
        assert not response.answers

    def test_hidden_style(self, world):
        software = SOFTWARE_CATALOG[0][0]
        make_resolver(world, software=software, chaos_style=STYLE_HIDDEN)
        response = self.ask_version(world)
        text = response.answers[0].data.text
        assert text != software.version_string

    def test_chaos_answered_even_by_refused_mode(self, world):
        # CHAOS handling reflects the software, not the open/closed state.
        make_resolver(world, chaos_style=STYLE_NO_VERSION,
                      response_mode=MODE_REFUSED)
        assert self.ask_version(world).rcode == RCODE_NOERROR

    def test_version_server_also_answered(self, world):
        make_resolver(world, chaos_style=STYLE_NO_VERSION)
        assert self.ask_version(world,
                                "version.server").rcode == RCODE_NOERROR


class TestSnooping:
    def test_ns_ttl_from_activity(self, world):
        activity = CacheActivityModel(
            CacheActivityModel.STYLE_NORMAL,
            tld_patterns={"com": (100.0, 0.0)}, ttl=1000)
        make_resolver(world, activity=activity)
        response = ask(world, "198.18.9.1", "com", qtype=QTYPE_NS,
                       rd=False)
        assert response.rcode == RCODE_NOERROR
        assert response.answers[0].rtype == QTYPE_NS
        assert response.answers[0].ttl == 1000

    def test_uncached_tld_gives_empty(self, world):
        activity = CacheActivityModel(
            CacheActivityModel.STYLE_NORMAL,
            tld_patterns={"com": (100.0, 0.0)}, ttl=1000)
        make_resolver(world, activity=activity)
        response = ask(world, "198.18.9.1", "de", qtype=QTYPE_NS, rd=False)
        assert response.rcode == RCODE_NOERROR
        assert not response.answers

    def test_unreachable_style_silent(self, world):
        make_resolver(world, activity=CacheActivityModel(
            CacheActivityModel.STYLE_UNREACHABLE))
        assert ask(world, "198.18.9.1", "com", qtype=QTYPE_NS,
                   rd=False) is None


class TestDeviceSurface:
    def test_device_ports_and_banner(self, world):
        from repro.resolvers.devices import DEVICE_CATALOG
        device = DEVICE_CATALOG["zyxel-p-660hn-t1a"]
        make_resolver(world, device=device)
        banner = world.network.tcp_banner(world.client_ip, "198.18.9.1", 21)
        assert "ZyXEL" in banner

    def test_device_page_served(self, world):
        from repro.websim.http import HttpRequest
        make_resolver(world, device_page="<html>router</html>")
        response = world.network.http_request(
            world.client_ip, "198.18.9.1", HttpRequest("paypal.com"))
        assert response.body == "<html>router</html>"

    def test_no_device_no_services(self, world):
        resolver = make_resolver(world)
        assert resolver.tcp_ports() == frozenset()
        assert resolver.tcp_banner(80) is None
