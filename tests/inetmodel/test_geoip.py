"""Tests for GeoIP lookups."""

from repro.inetmodel import (
    AsRegistry,
    AutonomousSystem,
    GeoIpDatabase,
    PrefixAllocator,
)


def make_world():
    allocator = PrefixAllocator()
    registry = AsRegistry()
    prefixes = {}
    for asn, country in ((64500, "US"), (64501, "TR"), (64502, "CN")):
        prefix = allocator.allocate(22)
        registry.add(AutonomousSystem(asn, "AS %s" % country, country,
                                      prefixes=[prefix]))
        prefixes[country] = prefix
    return GeoIpDatabase(registry), prefixes


def test_country_lookup():
    geoip, prefixes = make_world()
    assert geoip.country(prefixes["TR"].address_at(9)) == "TR"
    assert geoip.country("223.0.0.1") == GeoIpDatabase.UNKNOWN


def test_rir_lookup():
    geoip, prefixes = make_world()
    assert geoip.rir(prefixes["CN"].address_at(2)) == "APNIC"
    assert geoip.rir(prefixes["US"].address_at(2)) == "ARIN"


def test_histograms():
    geoip, prefixes = make_world()
    ips = ([prefixes["US"].address_at(i) for i in range(3)]
           + [prefixes["TR"].address_at(i) for i in range(2)])
    by_country = geoip.count_by_country(ips)
    assert by_country == {"US": 3, "TR": 2}
    by_rir = geoip.count_by_rir(ips)
    assert by_rir == {"ARIN": 3, "RIPE": 2}
