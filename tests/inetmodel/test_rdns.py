"""Tests for the rDNS registry and dynamic-token matching."""

import pytest

from repro.inetmodel import (
    RdnsRegistry,
    dynamic_pool_name,
    has_dynamic_token,
    static_name,
)


class TestTokens:
    @pytest.mark.parametrize("name", [
        "host-1-2-3-4.dynamic.isp.example",
        "pool-4-3-2-1.broadband.net",
        "dialup-99.provider.example",
        "cpe-1-2-3-4.dsl.example.net",
        "1-2-3-4.dhcp.university.edu",
        "ppp-12.telco.example",
    ])
    def test_dynamic(self, name):
        assert has_dynamic_token(name)

    @pytest.mark.parametrize("name", [
        "static-1-2-3-4.isp.example",
        "mail.example.com",
        "web1.hosting.example",
        "",
        None,
    ])
    def test_not_dynamic(self, name):
        assert not has_dynamic_token(name)

    def test_generators(self):
        assert dynamic_pool_name("1.2.3.4", "isp.example") == \
            "host-1-2-3-4.dynamic.isp.example"
        assert static_name("1.2.3.4", "isp.example") == \
            "static-1-2-3-4.isp.example"
        assert has_dynamic_token(dynamic_pool_name("1.2.3.4", "x.example"))
        assert not has_dynamic_token(static_name("1.2.3.4", "x.example"))


class TestRegistry:
    def test_ptr_roundtrip(self):
        registry = RdnsRegistry()
        registry.set_ptr("1.2.3.4", "host.example.com")
        assert registry.ptr("1.2.3.4") == "host.example.com"
        assert "1.2.3.4" in registry
        assert len(registry) == 1

    def test_forward_confirmation(self):
        registry = RdnsRegistry()
        registry.set_ptr("1.2.3.4", "host.example.com")
        assert registry.forward("HOST.example.com") == "1.2.3.4"
        assert registry.forward_confirmed("1.2.3.4")

    def test_unconfirmed_ptr(self):
        # A PTR whose owner does not control the forward zone.
        registry = RdnsRegistry()
        registry.set_ptr("1.2.3.4", "www.paypal.com",
                         forward_confirmed=False)
        assert registry.ptr("1.2.3.4") == "www.paypal.com"
        assert registry.forward("www.paypal.com") is None
        assert not registry.forward_confirmed("1.2.3.4")

    def test_remove_cleans_both_tables(self):
        registry = RdnsRegistry()
        registry.set_ptr("1.2.3.4", "host.example.com")
        registry.remove("1.2.3.4")
        assert registry.ptr("1.2.3.4") is None
        assert registry.forward("host.example.com") is None

    def test_pointer_query_name(self):
        registry = RdnsRegistry()
        assert registry.pointer_query_name("1.2.3.4") == \
            "4.3.2.1.in-addr.arpa"
