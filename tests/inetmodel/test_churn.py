"""Tests for the DHCP-lease churn model."""

from repro.inetmodel import ChurnModel, LeasedHost, PrefixAllocator, \
    RdnsRegistry
from repro.inetmodel.rdns import has_dynamic_token
from repro.netsim import Network, Node, SimClock
from repro.netsim.clock import DAY, WEEK


def make_world():
    network = Network(SimClock(), seed=1)
    rdns = RdnsRegistry()
    churn = ChurnModel(network, rdns=rdns, seed=2)
    pool = PrefixAllocator().allocate(22)
    return network, rdns, churn, pool


def add_host(churn, network, pool, **kwargs):
    ip = churn.allocate_address(pool)
    node = Node(ip)
    host = LeasedHost(node, pool, **kwargs)
    if host.online:
        network.register(node)
    churn.add(host)
    return host


class TestLeases:
    def test_static_host_never_rebinds(self):
        network, __, churn, pool = make_world()
        host = add_host(churn, network, pool, lease_duration=None)
        original = host.node.ip
        network.clock.advance(100 * WEEK)
        churn.step()
        assert host.node.ip == original
        assert churn.rebind_count == 0

    def test_dynamic_host_rebinds_after_expiry(self):
        network, rdns, churn, pool = make_world()
        host = add_host(churn, network, pool, lease_duration=DAY,
                        isp_domain="isp.example")
        original = host.node.ip
        network.clock.advance(2 * DAY)
        churn.step()
        assert host.node.ip != original
        assert network.node_at(host.node.ip) is host.node
        assert network.node_at(original) is None
        assert churn.rebind_count == 1

    def test_rebind_updates_rdns(self):
        network, rdns, churn, pool = make_world()
        host = add_host(churn, network, pool, lease_duration=DAY,
                        isp_domain="isp.example")
        original = host.node.ip
        rdns.set_ptr(original, "host-x.dynamic.isp.example")
        network.clock.advance(2 * DAY)
        churn.step()
        assert rdns.ptr(original) is None
        new_name = rdns.ptr(host.node.ip)
        assert new_name and has_dynamic_token(new_name)

    def test_no_rebind_before_expiry(self):
        network, __, churn, pool = make_world()
        host = add_host(churn, network, pool, lease_duration=10 * WEEK)
        network.clock.advance(DAY)
        churn.step()
        assert churn.rebind_count == 0

    def test_rebind_stays_in_pool(self):
        network, __, churn, pool = make_world()
        host = add_host(churn, network, pool, lease_duration=DAY)
        for __i in range(5):
            network.clock.advance(2 * DAY)
            churn.step()
            assert host.node.ip in pool


class TestLifecycle:
    def test_offline_after(self):
        network, rdns, churn, pool = make_world()
        host = add_host(churn, network, pool, lease_duration=None,
                        offline_after=WEEK)
        ip = host.node.ip
        rdns.set_ptr(ip, "static-x.isp.example")
        network.clock.advance(2 * WEEK)
        churn.step()
        assert not host.online
        assert network.node_at(ip) is None
        assert rdns.ptr(ip) is None
        assert churn.offline_count == 1
        assert host not in churn.online_hosts()

    def test_online_after(self):
        network, __, churn, pool = make_world()
        host = add_host(churn, network, pool, lease_duration=None,
                        online_after=WEEK)
        assert not host.online
        assert network.node_at(host.node.ip) is None
        network.clock.advance(2 * WEEK)
        churn.step()
        assert host.online
        assert network.node_at(host.node.ip) is host.node

    def test_online_then_offline(self):
        network, __, churn, pool = make_world()
        host = add_host(churn, network, pool, lease_duration=None,
                        online_after=WEEK, offline_after=5 * WEEK)
        network.clock.advance(2 * WEEK)
        churn.step()
        assert host.online
        network.clock.advance(10 * WEEK)
        churn.step()
        assert not host.online

    def test_addresses_unique(self):
        network, __, churn, pool = make_world()
        hosts = [add_host(churn, network, pool, lease_duration=DAY)
                 for __i in range(50)]
        for __i in range(4):
            network.clock.advance(2 * DAY)
            churn.step()
            addresses = [host.node.ip for host in hosts]
            assert len(set(addresses)) == len(addresses)

    def test_allocate_address_reserves(self):
        network, __, churn, pool = make_world()
        first = churn.allocate_address(pool)
        second = churn.allocate_address(pool)
        assert first != second
