"""Tests for the prefix allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.inetmodel import PrefixAllocator
from repro.netsim.address import is_reserved


def test_alignment():
    allocator = PrefixAllocator()
    block = allocator.allocate(20)
    assert block.base % block.num_addresses == 0


def test_no_overlap():
    allocator = PrefixAllocator()
    blocks = [allocator.allocate(length)
              for length in (24, 20, 16, 24, 22, 18)]
    for i, left in enumerate(blocks):
        for right in blocks[i + 1:]:
            assert not left.contains_int(right.base)
            assert not right.contains_int(left.base)


def test_skips_reserved_space():
    allocator = PrefixAllocator(start="9.255.0.0")
    block = allocator.allocate(16)  # would land inside 10.0.0.0/8
    assert not is_reserved(block.base)
    assert not is_reserved(block.base + block.num_addresses - 1)


def test_exhaustion_raises():
    allocator = PrefixAllocator(start="223.255.0.0", end="223.255.255.255")
    allocator.allocate(16)
    with pytest.raises(RuntimeError):
        allocator.allocate(16)


def test_allocate_many():
    allocator = PrefixAllocator()
    blocks = allocator.allocate_many(24, 5)
    assert len(blocks) == 5
    assert len({block.base for block in blocks}) == 5


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=16, max_value=28), min_size=1,
                max_size=15))
def test_property_disjoint_and_clean(lengths):
    allocator = PrefixAllocator()
    blocks = [allocator.allocate(length) for length in lengths]
    seen = []
    for block in blocks:
        assert not is_reserved(block.base)
        assert not is_reserved(block.base + block.num_addresses - 1)
        for other in seen:
            assert block.base + block.num_addresses <= other.base \
                or other.base + other.num_addresses <= block.base
        seen.append(block)
