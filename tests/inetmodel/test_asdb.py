"""Tests for the AS registry and RIR mapping."""

import pytest

from repro.inetmodel import (
    AsRegistry,
    AutonomousSystem,
    PrefixAllocator,
    rir_for_country,
)


@pytest.fixture
def registry():
    allocator = PrefixAllocator()
    registry = AsRegistry()
    systems = {}
    for asn, (name, country) in enumerate(
            [("US Telco", "US"), ("CN Backbone", "CN"),
             ("BR Cable", "BR"), ("EG Net", "EG")], start=64500):
        system = AutonomousSystem(asn, name, country,
                                  prefixes=[allocator.allocate(20)])
        registry.add(system)
        systems[name] = system
    return registry, systems


class TestRirMapping:
    @pytest.mark.parametrize("country,rir", [
        ("US", "ARIN"), ("BR", "LACNIC"), ("DE", "RIPE"),
        ("CN", "APNIC"), ("EG", "AFRINIC"), ("IR", "RIPE"),
    ])
    def test_known(self, country, rir):
        assert rir_for_country(country) == rir

    def test_unknown(self):
        assert rir_for_country("ZZ") == "UNKNOWN"


class TestRegistry:
    def test_lookup_inside_prefix(self, registry):
        registry, systems = registry
        system = systems["US Telco"]
        inside = system.prefixes[0].address_at(5)
        assert registry.lookup(inside) is system
        assert registry.asn_of(inside) == system.asn
        assert registry.country_of(inside) == "US"
        assert registry.rir_of(inside) == "ARIN"

    def test_lookup_outside(self, registry):
        registry, __ = registry
        assert registry.lookup("223.255.255.254") is None
        assert registry.rir_of("223.255.255.254") == "UNKNOWN"

    def test_duplicate_asn_rejected(self, registry):
        registry, systems = registry
        with pytest.raises(ValueError):
            registry.add(AutonomousSystem(64500, "dup", "US"))

    def test_attach_prefix(self, registry):
        registry, systems = registry
        allocator = PrefixAllocator(start="200.0.0.0")
        extra = allocator.allocate(24)
        registry.attach_prefix(64501, extra)
        assert registry.asn_of(extra.address_at(1)) == 64501

    def test_all_systems(self, registry):
        registry, __ = registry
        assert len(registry.all_systems()) == 4
        assert len(registry) == 4

    def test_as_contains(self, registry):
        __, systems = registry
        system = systems["CN Backbone"]
        assert system.prefixes[0].address_at(1) in system
