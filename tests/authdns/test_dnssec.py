"""Tests for the simulated DNSSEC extension (§5)."""

import pytest

from repro.authdns.dnssec import (
    DnssecValidator,
    STRATEGY_FIRST,
    STRATEGY_WAIT_SIGNED,
    ValidatingClient,
    ZoneSigner,
    rrset_digest,
)
from repro.dnswire import Message
from repro.dnswire.records import ResourceRecord
from repro.netsim import GreatFirewall, Ipv4Network
from repro.resolvers import ResolverNode

ZONE_KEY = "zone-key-secret"


def signed_response(name="secure.example", address="198.18.0.5",
                    key=ZONE_KEY):
    query = Message.query(name, txid=1)
    response = query.make_response()
    response.answers.append(ResourceRecord.a(name, address))
    ZoneSigner(key).sign_answers(response)
    return response


class TestSignerValidator:
    def test_valid_signature_accepted(self):
        validator = DnssecValidator({"secure.example": ZONE_KEY})
        assert validator.validate(signed_response(), "secure.example")

    def test_wrong_key_rejected(self):
        validator = DnssecValidator({"secure.example": "other-key"})
        assert not validator.validate(signed_response(),
                                      "secure.example")

    def test_unsigned_rejected(self):
        validator = DnssecValidator({"secure.example": ZONE_KEY})
        query = Message.query("secure.example", txid=1)
        response = query.make_response()
        response.answers.append(ResourceRecord.a("secure.example",
                                                 "198.18.0.5"))
        assert not validator.validate(response, "secure.example")

    def test_tampered_addresses_rejected(self):
        # An attacker swapping the A record invalidates the digest.
        response = signed_response()
        response.answers[0] = ResourceRecord.a("secure.example",
                                               "6.6.6.6")
        validator = DnssecValidator({"secure.example": ZONE_KEY})
        assert not validator.validate(response, "secure.example")

    def test_anchor_covers_subdomains(self):
        validator = DnssecValidator({"example": ZONE_KEY})
        assert validator.expects_signature("www.secure.example")
        assert not validator.expects_signature("other.net")

    def test_digest_is_order_insensitive(self):
        assert rrset_digest("k", "a.example", ["1.1.1.1", "2.2.2.2"]) == \
            rrset_digest("k", "a.example", ["2.2.2.2", "1.1.1.1"])


@pytest.fixture
def gfw_world(mini):
    zone = mini.builder.register_domain(
        "secure.example", {"secure.example": ["198.18.0.5"]})
    zone.sign_with(ZONE_KEY)
    mini.builder.register_domain("plain.example",
                                 {"plain.example": ["198.18.0.6"]})
    gfw = GreatFirewall([Ipv4Network("110.0.0.0/16")],
                        ["secure.example", "plain.example"], seed=9)
    mini.network.add_middlebox(gfw)
    # An honest resolver inside the censored network, answering a client
    # outside it; the client's query crosses the firewall.
    resolver = ResolverNode("110.0.0.10",
                            resolution_service=mini.service,
                            gfw_immune=True)
    mini.network.register(resolver)
    mini.resolver_ip = resolver.ip
    return mini


class TestStrategiesAgainstInjection:
    def make_client(self, world, strategy):
        validator = DnssecValidator({"secure.example": ZONE_KEY})
        return ValidatingClient(world.network, world.client_ip,
                                validator=validator, strategy=strategy)

    def test_first_strategy_poisoned(self, gfw_world):
        client = self.make_client(gfw_world, STRATEGY_FIRST)
        addresses, authenticated = client.query(gfw_world.resolver_ip,
                                                "secure.example")
        # The forged response arrives first and wins.
        assert addresses != ["198.18.0.5"]
        assert not authenticated

    def test_wait_signed_strategy_protected(self, gfw_world):
        client = self.make_client(gfw_world, STRATEGY_WAIT_SIGNED)
        addresses, authenticated = client.query(gfw_world.resolver_ip,
                                                "secure.example")
        assert addresses == ["198.18.0.5"]
        assert authenticated

    def test_unsigned_domain_stays_poisonable(self, gfw_world):
        # §5's caveat: without prior knowledge that the domain signs,
        # the client cannot reject the unsigned forged answer.
        client = self.make_client(gfw_world, STRATEGY_WAIT_SIGNED)
        addresses, authenticated = client.query(gfw_world.resolver_ip,
                                                "plain.example")
        assert addresses != ["198.18.0.6"]
        assert not authenticated

    def test_clean_path_unaffected(self, gfw_world):
        # Outside the firewall the strategy changes nothing.
        honest = ResolverNode(gfw_world.infra.address_at(44000),
                              resolution_service=gfw_world.service)
        gfw_world.network.register(honest)
        client = self.make_client(gfw_world, STRATEGY_WAIT_SIGNED)
        addresses, __ = client.query(honest.ip, "secure.example")
        assert addresses == ["198.18.0.5"]
