"""Tests for authoritative name server behaviour."""

import pytest

from repro.authdns import AuthNsServer, Zone
from repro.dnswire import Message
from repro.dnswire.constants import (
    CLASS_CH,
    QTYPE_A,
    QTYPE_TXT,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
)
from repro.netsim import Network, SimClock, UdpPacket


@pytest.fixture
def server():
    zone = Zone("example.com")
    zone.add_a("example.com", "192.0.2.1")
    zone.add_cname("web.example.com", "cdn.example.com")
    zone.add_a("cdn.example.com", "192.0.2.10")
    return AuthNsServer("192.0.2.53", [zone])


def ask(server, name, qtype=QTYPE_A, qclass=1):
    query = Message.query(name, qtype=qtype, qclass=qclass, txid=5)
    return server.answer(query)


class TestAnswer:
    def test_authoritative_answer(self, server):
        response = ask(server, "example.com")
        assert response.rcode == RCODE_NOERROR
        assert response.header.aa
        assert not response.header.ra
        assert response.a_addresses() == ["192.0.2.1"]

    def test_refuses_foreign_zone(self, server):
        response = ask(server, "other.org")
        assert response.rcode == RCODE_REFUSED

    def test_refuses_chaos_class(self, server):
        response = ask(server, "version.bind", qtype=QTYPE_TXT,
                       qclass=CLASS_CH)
        assert response.rcode == RCODE_REFUSED

    def test_nxdomain(self, server):
        response = ask(server, "nope.example.com")
        assert response.rcode == RCODE_NXDOMAIN
        assert response.authorities

    def test_cname_chased_within_zone(self, server):
        response = ask(server, "web.example.com")
        assert response.a_addresses() == ["192.0.2.10"]
        types = [record.rtype for record in response.answers]
        assert 5 in types  # the CNAME itself is included

    def test_deepest_zone_wins(self):
        parent = Zone("example.com")
        parent.add_a("example.com", "192.0.2.1")
        child = Zone("sub.example.com")
        child.add_a("sub.example.com", "192.0.2.2")
        server = AuthNsServer("192.0.2.53", [parent, child])
        response = ask(server, "sub.example.com")
        assert response.a_addresses() == ["192.0.2.2"]


class TestUdpInterface:
    def test_via_network(self, server):
        network = Network(SimClock(), seed=1)
        network.register(server)
        query = Message.query("example.com", txid=42)
        packet = UdpPacket("1.0.0.1", 999, "192.0.2.53", 53,
                           query.to_wire())
        responses = network.send_udp(packet)
        assert len(responses) == 1
        message = Message.from_wire(responses[0].packet.payload)
        assert message.header.txid == 42
        assert message.a_addresses() == ["192.0.2.1"]
        assert server.query_count == 1

    def test_ignores_non_dns_port(self, server):
        network = Network(SimClock(), seed=1)
        network.register(server)
        packet = UdpPacket("1.0.0.1", 999, "192.0.2.53", 5353,
                           Message.query("example.com").to_wire())
        assert network.send_udp(packet) == []

    def test_ignores_garbage(self, server):
        assert server.handle_udp(
            UdpPacket("1.0.0.1", 999, "192.0.2.53", 53, b"garbage"),
            None) is None

    def test_ignores_responses(self, server):
        response = Message.query("example.com").make_response()
        packet = UdpPacket("1.0.0.1", 999, "192.0.2.53", 53,
                           response.to_wire())
        assert server.handle_udp(packet, None) is None
