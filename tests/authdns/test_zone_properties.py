"""Property tests for authoritative zone lookup invariants."""

from hypothesis import given, settings, strategies as st

from repro.authdns.zone import Zone, ZoneLookupResult
from repro.dnswire.constants import QTYPE_A

LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                max_size=8)


@settings(max_examples=50)
@given(st.lists(LABEL, min_size=1, max_size=4, unique=True),
       st.integers(min_value=0, max_value=255))
def test_added_records_always_found(labels, octet):
    zone = Zone("example.com")
    names = ["%s.example.com" % label for label in labels]
    for index, name in enumerate(names):
        zone.add_a(name, "10.0.%d.%d" % (index % 256, octet))
    for index, name in enumerate(names):
        result = zone.lookup(name, QTYPE_A)
        assert result.status == ZoneLookupResult.ANSWER
        assert result.records[0].data.address == \
            "10.0.%d.%d" % (index % 256, octet)


@settings(max_examples=50)
@given(LABEL, LABEL)
def test_exact_record_beats_wildcard(exact, other):
    zone = Zone("example.com")
    zone.add_a("*.example.com", "10.0.0.1")
    zone.add_a("%s.example.com" % exact, "10.0.0.2")
    exact_result = zone.lookup("%s.example.com" % exact, QTYPE_A)
    assert exact_result.records[0].data.address == "10.0.0.2"
    if other != exact:
        wild_result = zone.lookup("%s.example.com" % other, QTYPE_A)
        assert wild_result.records[0].data.address == "10.0.0.1"


@settings(max_examples=50)
@given(LABEL)
def test_lookup_never_crashes_on_any_name(label):
    zone = Zone("example.com")
    zone.add_a("www.example.com", "10.0.0.1")
    zone.delegate("sub.example.com", {"ns1.sub.example.com": "10.0.0.53"})
    for name in ("%s.example.com" % label,
                 "%s.sub.example.com" % label,
                 "%s.www.example.com" % label):
        result = zone.lookup(name, QTYPE_A)
        assert result.status in (ZoneLookupResult.ANSWER,
                                 ZoneLookupResult.DELEGATION,
                                 ZoneLookupResult.NXDOMAIN,
                                 ZoneLookupResult.NODATA)


@settings(max_examples=30)
@given(st.lists(LABEL, min_size=1, max_size=3, unique=True))
def test_delegation_shadows_everything_below(children):
    zone = Zone("example.com")
    for child in children:
        zone.delegate("%s.example.com" % child,
                      {"ns1.%s.example.com" % child: "10.0.0.53"})
    for child in children:
        for depth in ("", "a.", "a.b."):
            result = zone.lookup("%s%s.example.com" % (depth, child),
                                 QTYPE_A)
            assert result.status == ZoneLookupResult.DELEGATION
