"""Tests for the iterative resolution engine against a real hierarchy."""

import pytest

from repro.authdns import IterativeResolver
from repro.dnswire.constants import (
    QTYPE_A,
    QTYPE_PTR,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_SERVFAIL,
)


@pytest.fixture
def world(mini):
    mini.builder.register_domain(
        "example.com",
        {"example.com": ["198.18.0.1"], "www.example.com": ["198.18.0.2"]})
    zone = mini.builder.register_domain("cdn-user.net")
    zone.add_cname("cdn-user.net", "edge.example.com")
    mini.hierarchy.zone("example.com").add_a("edge.example.com",
                                             "198.18.0.9")
    mini.builder.register_domain("wild.org", wildcard_address="198.18.0.7")
    return mini


def resolver_for(world):
    return IterativeResolver(world.hierarchy.root_ips, world.client_ip)


class TestResolve:
    def test_follows_hierarchy(self, world):
        result = resolver_for(world).resolve(world.network,
                                             "www.example.com")
        assert result.rcode == RCODE_NOERROR
        assert result.a_addresses() == ["198.18.0.2"]
        # root referral + tld referral + final answer = 3 queries.
        assert result.queries_sent == 3

    def test_nxdomain_at_authns(self, world):
        result = resolver_for(world).resolve(world.network,
                                             "missing.example.com")
        assert result.rcode == RCODE_NXDOMAIN

    def test_nxdomain_at_tld(self, world):
        result = resolver_for(world).resolve(world.network,
                                             "unregistered-domain.com")
        assert result.rcode == RCODE_NXDOMAIN

    def test_unknown_tld(self, world):
        result = resolver_for(world).resolve(world.network, "x.zz")
        assert result.rcode == RCODE_NXDOMAIN

    def test_cname_across_zones(self, world):
        result = resolver_for(world).resolve(world.network, "cdn-user.net")
        assert result.rcode == RCODE_NOERROR
        assert result.a_addresses() == ["198.18.0.9"]

    def test_wildcard(self, world):
        result = resolver_for(world).resolve(world.network,
                                             "random-prefix.wild.org")
        assert result.a_addresses() == ["198.18.0.7"]

    def test_min_ttl(self, world):
        result = resolver_for(world).resolve(world.network, "example.com")
        assert result.min_ttl() == 300

    def test_servfail_when_roots_unreachable(self, world):
        broken = IterativeResolver(["203.0.113.1"], world.client_ip)
        result = broken.resolve(world.network, "example.com")
        assert result.rcode == RCODE_SERVFAIL

    def test_ptr_through_rdns_zone(self, world):
        world.rdns.set_ptr("198.18.0.1", "web1.example.com")
        result = resolver_for(world).resolve(
            world.network, "1.0.18.198.in-addr.arpa", QTYPE_PTR)
        assert result.rcode == RCODE_NOERROR
        assert result.records[0].data.name == "web1.example.com"

    def test_requires_root_servers(self, world):
        with pytest.raises(ValueError):
            IterativeResolver([], world.client_ip)
