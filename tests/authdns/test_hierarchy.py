"""Tests for the hierarchy builder."""

import pytest

from repro.authdns import IterativeResolver
from repro.dnswire.constants import QTYPE_MX, RCODE_NOERROR


class TestHierarchyBuilder:
    def test_register_domain_creates_tld_once(self, mini):
        mini.builder.register_domain("one.com", {"one.com": ["198.18.1.1"]})
        mini.builder.register_domain("two.com", {"two.com": ["198.18.1.2"]})
        assert mini.hierarchy.zone("com") is not None
        assert mini.hierarchy.zone("one.com") is not None
        assert mini.hierarchy.zone("two.com") is not None

    def test_rejects_bare_tld(self, mini):
        with pytest.raises(ValueError):
            mini.builder.register_domain("com")

    def test_mx_hosts(self, mini):
        mini.builder.register_domain(
            "mailer.net", {"mailer.net": ["198.18.1.3"]},
            mx_hosts=[(10, "mx1.mailer.net")])
        resolver = IterativeResolver(mini.hierarchy.root_ips,
                                     mini.client_ip)
        result = resolver.resolve(mini.network, "mailer.net", QTYPE_MX)
        assert result.rcode == RCODE_NOERROR
        assert result.records[0].data.exchange == "mx1.mailer.net"

    def test_servers_have_distinct_ips(self, mini):
        mini.builder.register_domain("a.com", {"a.com": ["198.18.1.1"]})
        mini.builder.register_domain("b.net", {"b.net": ["198.18.1.2"]})
        ips = {server.ip for server in mini.hierarchy.servers.values()}
        assert len(ips) == len(mini.hierarchy.servers)

    def test_rdns_zone_installed(self, mini):
        assert mini.hierarchy.zone("in-addr.arpa") is not None
        assert mini.hierarchy.zone("arpa") is not None
