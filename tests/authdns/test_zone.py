"""Tests for zone data and authoritative lookup semantics."""

import pytest

from repro.authdns.zone import Zone, ZoneLookupResult
from repro.dnswire.constants import QTYPE_A, QTYPE_CNAME, QTYPE_MX


@pytest.fixture
def zone():
    zone = Zone("example.com")
    zone.add_a("example.com", "192.0.2.1")
    zone.add_a("www.example.com", "192.0.2.2")
    zone.add_a("www.example.com", "192.0.2.3")
    zone.add_cname("alias.example.com", "www.example.com")
    zone.add_mx("example.com", 10, "mail.example.com")
    zone.add_a("*.wild.example.com", "192.0.2.99")
    zone.delegate("sub.example.com", {"ns1.sub.example.com": "192.0.2.53"})
    return zone


class TestLookupStatuses:
    def test_answer(self, zone):
        result = zone.lookup("www.example.com", QTYPE_A)
        assert result.status == ZoneLookupResult.ANSWER
        assert {r.data.address for r in result.records} == \
            {"192.0.2.2", "192.0.2.3"}

    def test_answer_case_insensitive(self, zone):
        result = zone.lookup("WWW.Example.COM", QTYPE_A)
        assert result.status == ZoneLookupResult.ANSWER

    def test_cname(self, zone):
        result = zone.lookup("alias.example.com", QTYPE_A)
        assert result.status == ZoneLookupResult.CNAME
        assert result.records[0].data.name == "www.example.com"

    def test_cname_query_direct(self, zone):
        result = zone.lookup("alias.example.com", QTYPE_CNAME)
        assert result.status == ZoneLookupResult.ANSWER

    def test_delegation(self, zone):
        result = zone.lookup("deep.sub.example.com", QTYPE_A)
        assert result.status == ZoneLookupResult.DELEGATION
        assert result.authority[0].data.name == "ns1.sub.example.com"
        assert result.additional[0].data.address == "192.0.2.53"

    def test_nxdomain(self, zone):
        result = zone.lookup("missing.example.com", QTYPE_A)
        assert result.status == ZoneLookupResult.NXDOMAIN
        assert result.authority  # SOA present

    def test_nodata(self, zone):
        result = zone.lookup("www.example.com", QTYPE_MX)
        assert result.status == ZoneLookupResult.NODATA

    def test_mx_answer(self, zone):
        result = zone.lookup("example.com", QTYPE_MX)
        assert result.status == ZoneLookupResult.ANSWER
        assert result.records[0].data.exchange == "mail.example.com"


class TestWildcards:
    def test_wildcard_synthesis(self, zone):
        result = zone.lookup("anything.wild.example.com", QTYPE_A)
        assert result.status == ZoneLookupResult.ANSWER
        assert result.records[0].data.address == "192.0.2.99"
        # The synthesized record carries the query name.
        assert result.records[0].name == "anything.wild.example.com"

    def test_wildcard_nodata_for_other_type(self, zone):
        result = zone.lookup("anything.wild.example.com", QTYPE_MX)
        assert result.status == ZoneLookupResult.NODATA

    def test_wildcard_does_not_cover_apex(self, zone):
        result = zone.lookup("wild.example.com", QTYPE_A)
        # No exact record at wild.example.com itself.
        assert result.status == ZoneLookupResult.NXDOMAIN


class TestZoneBounds:
    def test_covers(self, zone):
        assert zone.covers("example.com")
        assert zone.covers("a.b.example.com")
        assert not zone.covers("example.org")
        assert not zone.covers("badexample.com")

    def test_out_of_zone_record_rejected(self, zone):
        with pytest.raises(ValueError):
            zone.add_a("www.other.com", "192.0.2.1")

    def test_root_zone_covers_everything(self):
        root = Zone("")
        assert root.covers("anything.example")

    def test_tld_delegation(self):
        tld = Zone("com")
        tld.delegate("example.com", {"ns1.example.com": "192.0.2.53"})
        result = tld.lookup("www.example.com", QTYPE_A)
        assert result.status == ZoneLookupResult.DELEGATION
