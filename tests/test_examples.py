"""Smoke checks for the example scripts (compile + structure)."""

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath(
        "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3, "the repository promises >=3 examples"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_structure(path):
    """Every example is a documented script with a main() entry point."""
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), "%s needs a module docstring" % path
    function_names = {node.name for node in ast.walk(tree)
                      if isinstance(node, ast.FunctionDef)}
    assert "main" in function_names
    # __main__ guard present.
    assert any(isinstance(node, ast.If) for node in tree.body)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    """Examples should demonstrate the public package, not test shims."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            top = node.module.split(".")[0]
            assert top in ("repro", "collections", "sys", "random"), \
                "%s imports %s" % (path.name, node.module)
