"""Tests for the span tracer (repro.obs.trace)."""

import pytest

from repro.netsim.clock import SimClock
from repro.obs import Tracer


class TestSpans:
    def test_nested_spans_record_parentage(self):
        tracer = Tracer(seed=7)
        with tracer.span("scan", shards=2) as outer:
            with tracer.span("shard", start=0) as inner:
                assert tracer.active_span_id == inner["span_id"]
            assert tracer.active_span_id == outer["span_id"]
        assert tracer.active_span_id is None
        shard, scan = tracer.spans          # innermost finishes first
        assert shard["stage"] == "shard"
        assert shard["parent_id"] == scan["span_id"]
        assert scan["parent_id"] is None
        assert scan["attrs"] == {"shards": 2}

    def test_span_ids_are_sequential_and_seeded_trace_id_is_stable(self):
        first, second = Tracer(seed=7), Tracer(seed=7)
        assert first.trace_id == second.trace_id
        with first.span("a"):
            pass
        with first.span("b"):
            pass
        assert [s["span_id"] for s in first.spans] == ["s1", "s2"]

    def test_sim_clock_durations(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("scan"):
            clock.advance(12.5)
        span = tracer.spans[-1]
        assert span["sim_seconds"] == 12.5
        assert span["wall_seconds"] >= 0.0

    def test_exception_marks_span_error_and_pops_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("scan"):
                raise RuntimeError("boom")
        assert tracer.spans[-1]["status"] == "error"
        assert tracer.active_span_id is None

    def test_emit_records_instant_span(self):
        tracer = Tracer()
        with tracer.span("scan") as scan:
            emitted = tracer.emit("week", week=3, restored=True)
        assert emitted["attrs"] == {"week": 3, "restored": True}
        assert emitted["parent_id"] == scan["span_id"]
        assert emitted["wall_seconds"] is not None


class TestForkTransport:
    def test_rebase_keeps_stack_but_renames_namespace(self):
        tracer = Tracer(seed=7)
        with tracer.span("scan") as scan:
            tracer.rebase("w0.0.0:")
            assert tracer.spans == []
            with tracer.span("shard"):
                pass
            shard = tracer.spans[-1]
            assert shard["span_id"] == "w0.0.0:1"
            # Inherited stack: the worker's root still parents under
            # the span that was open at fork time.
            assert shard["parent_id"] == scan["span_id"]

    def test_absorb_reparents_dangling_roots(self):
        parent = Tracer(seed=7)
        with parent.span("scan") as scan:
            worker = [
                {"span_id": "w1:1", "parent_id": "gone", "stage": "shard",
                 "attrs": {}, "wall_start": 0.0, "wall_seconds": 1.0,
                 "sim_start": None, "sim_seconds": None, "status": "ok"},
                {"span_id": "w1:2", "parent_id": "w1:1", "stage": "sub",
                 "attrs": {}, "wall_start": 0.1, "wall_seconds": 0.5,
                 "sim_start": None, "sim_seconds": None, "status": "ok"},
            ]
            parent.absorb(worker)
        by_id = {s["span_id"]: s for s in parent.spans}
        assert by_id["w1:1"]["parent_id"] == scan["span_id"]
        # Intact internal parentage is preserved untouched.
        assert by_id["w1:2"]["parent_id"] == "w1:1"

    def test_absorb_empty_batch_is_a_noop(self):
        tracer = Tracer()
        tracer.absorb([])
        assert tracer.spans == []


class TestCheckpointContext:
    def test_adopt_continues_trace_id_and_sequence(self):
        original = Tracer(seed=7)
        with original.span("week"):
            pass
        context = original.context()
        resumed = Tracer(seed=99)
        assert resumed.trace_id != original.trace_id
        resumed.adopt(context)
        assert resumed.trace_id == original.trace_id
        assert resumed.seq == context["seq"]
        with resumed.span("week"):
            pass
        # No span-id collision with the pre-crash process.
        assert resumed.spans[-1]["span_id"] not in \
            {s["span_id"] for s in original.spans}

    def test_adopt_never_rewinds_sequence(self):
        tracer = Tracer(seed=7)
        for __ in range(5):
            with tracer.span("week"):
                pass
        tracer.adopt({"trace_id": tracer.trace_id, "seq": 2})
        assert tracer.seq == 5

    def test_adopt_tolerates_missing_context(self):
        tracer = Tracer(seed=7)
        tracer.adopt(None)
        tracer.adopt({})
        assert tracer.seq == 0
