"""End-to-end observability tests: traced scans, shards, and resume.

Covers the acceptance contract of the ``repro.obs`` subsystem against
the real scan stack:

* a traced fork-sharded campaign exports one schema-valid trace whose
  worker ``shard`` spans parent under the ``scan`` span;
* every fault-injected probe loss in the flight ring is attributed to
  the fault rule that ate it;
* a campaign killed at a checkpoint boundary and resumed with tracing
  on produces byte-identical scan results, and the resumed process
  adopts the interrupted run's trace id;
* the ``repro trace`` CLI validates and renders an exported trace.
"""

from repro.checkpoint import CheckpointedRun
from repro.faults import FaultPlan, FaultProfile, InjectedCrash
from repro.obs import FAULT_CAUSE_PREFIX, Observability, read_trace, \
    validate_trace
from repro.perf import PerfRegistry
from tests.checkpoint.test_resume_equivalence import (
    build_campaign_world,
    campaign_fingerprint,
    make_campaign,
)

WEEKS = 2


def traced_week(shards, faults=None, seed=7):
    world = build_campaign_world()
    if faults is not None:
        world.network.install_faults(FaultPlan(faults, seed=seed))
    perf = PerfRegistry()
    obs = Observability(clock=world.clock, seed=seed).install(
        world.network)
    campaign = make_campaign(world, shards=shards, perf=perf)
    campaign.run_week()
    return world, campaign, perf, obs


class TestTracedShardedScan:
    def test_shard_spans_parent_under_scan_span(self, tmp_path):
        __, __, perf, obs = traced_week(shards=4)
        path = str(tmp_path / "trace.jsonl")
        obs.export(path, perf=perf, meta={"command": "test"})
        records = read_trace(path)
        validate_trace(records)
        spans = [r for r in records if r["type"] == "span"]
        by_stage = {}
        for span in spans:
            by_stage.setdefault(span["stage"], []).append(span)
        assert len(by_stage["scan"]) == 1
        scan_id = by_stage["scan"][0]["span_id"]
        assert len(by_stage["shard"]) == 4
        assert all(s["parent_id"] == scan_id for s in by_stage["shard"])
        assert by_stage["scan"][0]["parent_id"] == \
            by_stage["week"][0]["span_id"]
        # Worker spans are namespaced per (origin, attempt, start).
        assert len({s["span_id"] for s in spans}) == len(spans)

    def test_trace_is_deterministic_for_a_fixed_seed(self):
        __, __, __, first = traced_week(shards=2)
        __, __, __, second = traced_week(shards=2)

        def shape(obs):
            return [(s["span_id"], s["parent_id"], s["stage"],
                     sorted(s["attrs"].items())) for s in obs.tracer.spans]

        assert shape(first) == shape(second)
        assert first.tracer.trace_id == second.tracer.trace_id

    def test_probe_rtt_histogram_lands_in_perf(self):
        __, __, perf, __ = traced_week(shards=1)
        histogram = perf.histograms["probe_rtt_seconds"]
        assert histogram.count > 0
        assert "probe_rtt_seconds" in perf.format_report("x")


class TestLossAttribution:
    def test_every_injected_loss_names_its_fault_rule(self):
        world, __, __, obs = traced_week(
            shards=2, faults=FaultProfile(loss_rate=0.2))
        injected = world.network.fault_counters.get("injected_loss", 0)
        assert injected > 0
        breakdown = obs.recorder.drop_breakdown()
        assert breakdown.get(FAULT_CAUSE_PREFIX + "injected_loss") \
            == injected
        # No unattributed losses: every lost/response_lost event in the
        # ring carries a cause.
        for event in obs.recorder.export_events():
            if event[1] in ("lost", "response_lost"):
                assert event[4], event

    def test_untraced_run_is_unaffected_by_faulted_tracing(self):
        # Same seed, tracing on vs off: identical scan results.
        faults = FaultProfile(loss_rate=0.2)
        __, traced, __, __ = traced_week(shards=2, faults=faults)
        world = build_campaign_world()
        world.network.install_faults(FaultPlan(faults, seed=7))
        plain = make_campaign(world, shards=2, perf=PerfRegistry())
        plain.run_week()
        assert campaign_fingerprint(plain) == campaign_fingerprint(traced)


class TestTracedResume:
    def run_traced(self, directory, plan, trace_seed):
        """One checkpointed incarnation; returns on crash or success."""
        world = build_campaign_world()
        perf = PerfRegistry()
        obs = Observability(clock=world.clock, seed=trace_seed).install(
            world.network)
        campaign = make_campaign(world, shards=2, perf=perf)
        checkpoint = CheckpointedRun(directory, meta={},
                                     resume=plan is None,
                                     fault_plan=plan)
        try:
            campaign.run(WEEKS, checkpoint=checkpoint)
        except InjectedCrash:
            checkpoint.close()
            return campaign, obs, False
        checkpoint.close()
        return campaign, obs, True

    def test_resume_adopts_trace_id_and_results_match(self, tmp_path):
        clean_world = build_campaign_world()
        clean = make_campaign(clean_world, shards=2, perf=PerfRegistry())
        clean.run(WEEKS)

        directory = str(tmp_path / "ckpt")
        plan = FaultPlan(FaultProfile(crash_points=("week:0",)), seed=3)
        __, first_obs, finished = self.run_traced(directory, plan,
                                                  trace_seed=7)
        assert not finished
        # The resumed incarnation starts with a *different* trace id
        # (different seed) and must adopt the interrupted run's.
        resumed, resumed_obs, finished = self.run_traced(directory, None,
                                                         trace_seed=99)
        assert finished
        assert resumed_obs.tracer.trace_id == first_obs.tracer.trace_id
        assert campaign_fingerprint(resumed) == campaign_fingerprint(clean)
        # The fast-forwarded week is visible as a restored marker span.
        restored = [s for s in resumed_obs.tracer.spans
                    if s["attrs"].get("restored")]
        assert any(s["stage"] == "week" for s in restored)


class TestTraceCli:
    def test_trace_subcommand_validates_and_renders(self, tmp_path,
                                                    capsys):
        from repro.cli import main
        path = str(tmp_path / "trace.jsonl")
        assert main(["scan", "--scale", "120000", "--seed", "3",
                     "--trace-out", path]) == 0
        capsys.readouterr()
        assert main(["trace", path, "--validate-only"]) == 0
        assert "valid trace" in capsys.readouterr().out
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "critical path" in out

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"type": "span"}\n')
        assert main(["trace", path]) == 2
        assert "invalid trace" in capsys.readouterr().err
