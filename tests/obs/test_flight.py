"""Tests for the packet flight recorder (repro.obs.flight)."""

from repro.obs import FlightRecorder
from repro.obs.flight import FAULT_CAUSE_PREFIX


def lost(recorder, cause, n=1, t=0.0):
    for __ in range(n):
        recorder.record(t, "lost", "198.18.0.1", 42, cause=cause)


class TestRecording:
    def test_events_and_tallies(self):
        recorder = FlightRecorder()
        recorder.record(1.0, "sent", "198.18.0.1", 42)
        recorder.record(1.1, "answered", "198.18.0.1", 42, latency=0.1)
        lost(recorder, "baseline_loss")
        assert len(recorder.events) == 3
        assert recorder.event_counts == {"sent": 1, "answered": 1,
                                         "lost": 1}
        assert recorder.drop_breakdown() == {"baseline_loss": 1}

    def test_ring_bounds_memory_but_tallies_stay_exact(self):
        recorder = FlightRecorder(capacity=4)
        lost(recorder, "baseline_loss", n=10)
        assert len(recorder.events) == 4
        assert recorder.dropped_events == 6
        assert recorder.cause_counts["baseline_loss"] == 10
        assert recorder.event_counts["lost"] == 10

    def test_reset_clears_everything(self):
        recorder = FlightRecorder(capacity=4)
        lost(recorder, "baseline_loss", n=6)
        recorder.reset()
        assert len(recorder.events) == 0
        assert recorder.cause_counts == {}
        assert recorder.event_counts == {}
        assert recorder.dropped_events == 0


class TestTransport:
    def test_export_absorb_state_round_trip(self):
        worker = FlightRecorder()
        worker.record(1.0, "sent", "198.18.0.1", 42)
        lost(worker, FAULT_CAUSE_PREFIX + "injected_loss", n=2)
        parent = FlightRecorder()
        parent.record(0.5, "sent", "198.18.0.9", 7)
        parent.absorb_state(worker.export_state())
        assert len(parent.events) == 4
        assert parent.event_counts == {"sent": 2, "lost": 2}
        assert parent.drop_breakdown() == {"fault:injected_loss": 2}

    def test_absorbed_tallies_survive_ring_eviction(self):
        # The worker's ring already evicted events; the parent must add
        # the worker's *exact* tallies, not recount the surviving ring.
        worker = FlightRecorder(capacity=2)
        lost(worker, "baseline_loss", n=5)
        parent = FlightRecorder(capacity=2)
        parent.absorb_state(worker.export_state())
        assert len(parent.events) == 2
        assert parent.cause_counts["baseline_loss"] == 5
        assert parent.dropped_events == 3

    def test_absorb_state_tolerates_json_round_tripped_events(self):
        import json
        worker = FlightRecorder()
        lost(worker, "baseline_loss")
        state = json.loads(json.dumps(worker.export_state()))
        parent = FlightRecorder()
        parent.absorb_state(state)
        assert parent.export_events() == worker.export_events()

    def test_absorb_plain_event_list_recounts(self):
        worker = FlightRecorder()
        lost(worker, "baseline_loss", n=3)
        parent = FlightRecorder()
        parent.absorb(worker.export_events())
        assert parent.cause_counts == {"baseline_loss": 3}


class TestExportDict:
    def test_integer_destination_is_normalised(self):
        record = FlightRecorder.event_dict(
            (1.5, "lost", "198.18.0.1", (198 << 24) | (18 << 16) | 7,
             "baseline_loss", None))
        assert record["type"] == "flight"
        assert record["dst"] == "198.18.0.7"
        assert record["cause"] == "baseline_loss"

    def test_string_destination_passes_through(self):
        record = FlightRecorder.event_dict(
            (1.5, "answered", "198.18.0.1", "10.0.0.1", None, 0.25))
        assert record["dst"] == "10.0.0.1"
        assert record["latency"] == 0.25
