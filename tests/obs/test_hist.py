"""Tests for the log-bucketed histogram (repro.obs.hist)."""

import itertools
import json

from repro.obs.hist import LogHistogram, bucket_bounds, bucket_index


class TestBucketing:
    def test_value_falls_inside_its_bucket_bounds(self):
        for value in (1e-6, 0.0004, 0.02, 0.5, 1.0, 3.7, 1024.0):
            low, high = bucket_bounds(bucket_index(value))
            assert low <= value < high, value

    def test_nonpositive_values_share_the_underflow_bucket(self):
        assert bucket_index(0.0) == bucket_index(-3.0)
        assert bucket_bounds(bucket_index(0.0)) == (0.0, 0.0)

    def test_resolution_is_within_one_octave_eighth(self):
        # Adjacent bucket bounds are ~9% apart: the relative error of
        # a midpoint estimate stays below one sub-bucket's width.
        low, high = bucket_bounds(bucket_index(0.123))
        assert high / low <= 1.0 + 1.0 / 8 + 1e-9

    def test_bucketing_is_deterministic(self):
        assert bucket_index(0.25) == bucket_index(0.25)
        # Exact powers of two land at the base of their octave.
        assert bucket_bounds(bucket_index(0.5))[0] == 0.5
        assert bucket_bounds(bucket_index(1.0))[0] == 1.0


class TestStatistics:
    def test_count_mean_min_max(self):
        histogram = LogHistogram()
        histogram.observe_many([0.1, 0.2, 0.3])
        assert histogram.count == 3
        assert histogram.min == 0.1
        assert histogram.max == 0.3
        assert abs(histogram.mean - 0.2) < 1e-9

    def test_percentiles_are_clamped_to_observed_range(self):
        histogram = LogHistogram()
        histogram.observe_many([0.010, 0.011, 0.012, 5.0])
        assert histogram.percentile(50) >= 0.010
        assert histogram.percentile(99) <= 5.0
        assert histogram.percentile(100) == 5.0

    def test_percentile_accuracy_within_bucket_resolution(self):
        histogram = LogHistogram()
        values = [0.001 * (i + 1) for i in range(1000)]
        histogram.observe_many(values)
        for q in (50, 90, 99):
            exact = values[int(len(values) * q / 100) - 1]
            assert abs(histogram.percentile(q) - exact) / exact < 0.10

    def test_empty_histogram(self):
        histogram = LogHistogram()
        assert histogram.percentile(50) == 0.0
        assert histogram.mean == 0.0
        assert histogram.format_summary() == "empty"


class TestMerge:
    def test_merge_is_exact_and_order_independent(self):
        batches = [[0.001, 0.02, 0.02], [0.5, 0.0007], [3.0], []]
        snapshots = []
        for order in itertools.permutations(range(len(batches))):
            merged = LogHistogram()
            for index in order:
                shard = LogHistogram()
                shard.observe_many(batches[index])
                merged.merge(shard)
            snapshots.append(merged.snapshot())
        assert all(snapshot == snapshots[0] for snapshot in snapshots)

    def test_merge_equals_direct_observation(self):
        values = [0.004, 0.004, 0.1, 2.5, 0.00009]
        direct = LogHistogram()
        direct.observe_many(values)
        left, right = LogHistogram(), LogHistogram()
        left.observe_many(values[:2])
        right.observe_many(values[2:])
        assert left.merge(right).snapshot() == direct.snapshot()

    def test_merge_into_empty(self):
        shard = LogHistogram()
        shard.observe(0.25)
        merged = LogHistogram().merge(shard)
        assert merged.snapshot() == shard.snapshot()


class TestSnapshotRestore:
    def test_round_trip_is_bit_identical_through_json(self):
        histogram = LogHistogram()
        histogram.observe_many([0.001, 0.05, 0.05, 1.75])
        snapshot = histogram.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        restored = LogHistogram.restore(snapshot)
        assert restored.snapshot() == snapshot
        assert restored.percentile(50) == histogram.percentile(50)

    def test_restored_histogram_keeps_merging_exactly(self):
        first, second = LogHistogram(), LogHistogram()
        first.observe_many([0.1, 0.2])
        second.observe_many([0.4])
        direct = LogHistogram()
        direct.observe_many([0.1, 0.2, 0.4])
        restored = LogHistogram.restore(first.snapshot())
        assert restored.merge(second).snapshot() == direct.snapshot()

    def test_format_summary_mentions_percentiles(self):
        histogram = LogHistogram()
        histogram.observe_many([0.010] * 99 + [1.0])
        summary = histogram.format_summary()
        assert "n=100" in summary
        assert "p50=" in summary and "p99=" in summary
