"""Tests for JSONL trace export, validation, and report rendering."""

import pytest

from repro.netsim.clock import SimClock
from repro.obs import (FlightRecorder, LogHistogram, TraceSchemaError,
                       Tracer, export_trace, read_trace, trace_records,
                       validate_trace)
from repro.obs.report import (critical_path, drop_breakdown,
                              render_trace_report, stage_summary)
from repro.perf import PerfRegistry


def build_trace():
    clock = SimClock()
    tracer = Tracer(clock=clock, seed=7)
    recorder = FlightRecorder()
    with tracer.span("scan", shards=2):
        with tracer.span("shard", origin=0):
            recorder.record(clock.now, "sent", "198.18.0.1", 42)
            recorder.record(clock.now, "answered", "198.18.0.1", 42,
                            latency=0.05)
            clock.advance(30.0)
        with tracer.span("shard", origin=1):
            recorder.record(clock.now, "lost", "198.18.0.1", 43,
                            cause="fault:injected_loss")
            clock.advance(10.0)
    perf = PerfRegistry()
    perf.observe_many("probe_rtt_seconds", [0.05, 0.06, 0.2])
    return tracer, recorder, perf


class TestExport:
    def test_round_trip_and_validation(self, tmp_path):
        tracer, recorder, perf = build_trace()
        path = str(tmp_path / "trace.jsonl")
        spans, events = export_trace(path, tracer=tracer,
                                     recorder=recorder, perf=perf,
                                     meta={"command": "scan"})
        assert (spans, events) == (3, 3)
        records = read_trace(path)
        summary = validate_trace(records)
        assert summary == {"spans": 3, "flight_events": 3, "losses": 1,
                           "losses_attributed": 1}
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["command"] == "scan"
        assert meta["drop_causes"] == {"fault:injected_loss": 1}
        assert all(r["trace_id"] == tracer.trace_id for r in records)

    def test_histograms_ride_along(self, tmp_path):
        tracer, recorder, perf = build_trace()
        path = str(tmp_path / "trace.jsonl")
        export_trace(path, tracer=tracer, recorder=recorder, perf=perf)
        hists = [r for r in read_trace(path) if r["type"] == "hist"]
        assert [h["name"] for h in hists] == ["probe_rtt_seconds"]
        restored = LogHistogram.restore(hists[0]["snapshot"])
        assert restored.count == 3


class TestValidation:
    def meta(self, **extra):
        head = {"type": "meta", "schema_version": 1, "trace_id": "t"}
        head.update(extra)
        return head

    def span(self, span_id, parent_id=None, stage="scan"):
        return {"type": "span", "span_id": span_id,
                "parent_id": parent_id, "stage": stage, "attrs": {},
                "wall_start": 0.0, "wall_seconds": 1.0}

    def test_meta_must_come_first(self):
        with pytest.raises(TraceSchemaError, match="meta line"):
            validate_trace([self.span("s1"), self.meta()])

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceSchemaError, match="empty"):
            validate_trace([])

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(TraceSchemaError, match="schema version"):
            validate_trace([self.meta(schema_version=99)])

    def test_loss_without_cause_rejected(self):
        bad = {"type": "flight", "t": 0.0, "event": "lost",
               "src": "a", "dst": "b", "cause": None}
        with pytest.raises(TraceSchemaError, match="no drop cause"):
            validate_trace([self.meta(), bad])

    def test_response_loss_also_requires_cause(self):
        bad = {"type": "flight", "t": 0.0, "event": "response_lost",
               "src": "a", "dst": "b"}
        with pytest.raises(TraceSchemaError, match="no drop cause"):
            validate_trace([self.meta(), bad])

    def test_duplicate_span_ids_rejected(self):
        with pytest.raises(TraceSchemaError, match="duplicate span id"):
            validate_trace([self.meta(), self.span("s1"),
                            self.span("s1")])

    def test_unresolvable_parent_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown parent"):
            validate_trace([self.meta(),
                            self.span("s2", parent_id="ghost")])

    def test_missing_span_field_rejected(self):
        broken = self.span("s1")
        del broken["wall_start"]
        with pytest.raises(TraceSchemaError, match="wall_start"):
            validate_trace([self.meta(), broken])

    def test_unknown_record_type_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown type"):
            validate_trace([self.meta(), {"type": "mystery"}])


class TestReport:
    def records(self):
        tracer, recorder, perf = build_trace()
        return list(trace_records(tracer, recorder, perf,
                                  meta={"command": "scan"}))

    def test_stage_summary_aggregates_by_stage(self):
        stages = {e["stage"]: e for e in stage_summary(self.records())}
        assert stages["shard"]["count"] == 2
        assert stages["scan"]["count"] == 1
        assert stages["shard"]["sim_seconds"] == 40.0

    def test_critical_path_walks_root_to_leaf(self):
        path = critical_path(self.records())
        assert [span["stage"] for span in path] == ["scan", "shard"]

    def test_critical_path_picks_the_expensive_chain(self):
        meta = {"type": "meta", "schema_version": 1, "trace_id": "t"}
        spans = [
            {"type": "span", "span_id": "s1", "parent_id": None,
             "stage": "scan", "attrs": {}, "wall_start": 0.0,
             "wall_seconds": 5.0},
            {"type": "span", "span_id": "s2", "parent_id": "s1",
             "stage": "shard", "attrs": {}, "wall_start": 0.0,
             "wall_seconds": 1.0},
            {"type": "span", "span_id": "s3", "parent_id": "s1",
             "stage": "shard", "attrs": {}, "wall_start": 1.0,
             "wall_seconds": 4.0},
        ]
        path = critical_path([meta] + spans)
        assert [span["span_id"] for span in path] == ["s1", "s3"]

    def test_critical_path_of_absorbed_fragment(self):
        # Every span has a parent (a worker batch whose root was
        # re-parented to an id missing from this export).
        spans = [
            {"type": "span", "span_id": "w1", "parent_id": "gone",
             "stage": "shard", "attrs": {}, "wall_start": 0.0,
             "wall_seconds": 2.0},
        ]
        path = critical_path(spans)
        assert [span["span_id"] for span in path] == ["w1"]

    def test_drop_breakdown_prefers_exact_meta_tallies(self):
        records = self.records()
        assert drop_breakdown(records) == {"fault:injected_loss": 1}
        # Without the meta line it falls back to counting flight events.
        assert drop_breakdown(records[1:]) == {"fault:injected_loss": 1}

    def test_render_mentions_every_section(self):
        report = render_trace_report(self.records())
        assert "timeline" in report
        assert "critical path" in report
        assert "fault:injected_loss" in report
        assert "probe_rtt_seconds" in report
        assert "command: scan" in report
