"""Tests for the full-study driver and report renderer."""

import pytest

from repro.reporting import render_markdown, run_full_study


@pytest.fixture(scope="module")
def study(small_scenario_module):
    scenario = small_scenario_module
    return scenario, run_full_study(
        scenario, weeks=3, snoop_sample=40,
        pipeline_categories=("Adult", "Alexa"))


@pytest.fixture(scope="module")
def small_scenario_module():
    from repro.scenario import ScenarioConfig, build_scenario
    return build_scenario(ScenarioConfig(scale=60000, seed=13,
                                         loss_rate=0.0))


class TestRunFullStudy:
    def test_all_sections_populated(self, study):
        __, results = study
        assert len(results.series) == 3
        assert results.survival[0][1] == 100.0
        assert results.countries
        assert results.rirs
        assert results.software["responding"] > 0
        assert results.devices["tcp_responders"] > 0
        assert results.utilization["total"] == 40
        assert set(results.prefilter) == {"Adult", "Alexa"}
        assert set(results.table5) == {"Adult", "Alexa"}
        assert results.fig4 is not None
        assert results.cn_coverage["responders"] > 0
        assert results.case_studies["mail_listeners"] is not None
        assert results.resolver_count > 100

    def test_progress_callback(self, small_scenario_module):
        messages = []
        run_full_study(small_scenario_module, weeks=1, snoop_sample=5,
                       pipeline_categories=("Dating",),
                       progress=messages.append)
        assert any("weekly" in message for message in messages)
        assert any("Dating" in message for message in messages)


class TestRenderMarkdown:
    def test_renders_every_section(self, study):
        scenario, results = study
        report = render_markdown(results, scenario=scenario)
        for heading in ("# Open DNS resolver study",
                        "## Figure 1", "## Figure 2", "## Table 1",
                        "## Table 2", "## Table 3", "## Table 4",
                        "## Section 2.6", "## Section 4.1",
                        "## Table 5", "## Figure 4", "## Section 4.3"):
            assert heading in report, heading
        assert "NOERROR decline ratio" in report
        assert "CN coverage" in report

    def test_renders_without_scenario(self, study):
        __, results = study
        report = render_markdown(results)
        assert "Scale 1:" not in report
        assert "## Table 5" in report
