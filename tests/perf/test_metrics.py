"""Tests for the performance instrumentation registry."""

from repro.perf import PerfRegistry


class TestCounters:
    def test_count_and_read(self):
        perf = PerfRegistry()
        perf.count("probes_sent")
        perf.count("probes_sent", 41)
        assert perf.counter("probes_sent") == 42
        assert perf.counter("missing") == 0


class TestGauges:
    def test_set_and_read(self):
        perf = PerfRegistry()
        perf.gauge("pipeline_domain_scan_qps", 125.0)
        assert perf.gauge_value("pipeline_domain_scan_qps") == 125.0
        assert perf.gauge_value("missing") == 0.0
        assert perf.gauge_value("missing", default=-1.0) == -1.0

    def test_last_value_wins(self):
        perf = PerfRegistry()
        perf.gauge("hit_rate", 0.2)
        perf.gauge("hit_rate", 0.9)
        assert perf.gauge_value("hit_rate") == 0.9

    def test_merge_overwrites(self):
        parent, shard = PerfRegistry(), PerfRegistry()
        parent.gauge("hit_rate", 0.1)
        shard.gauge("hit_rate", 0.5)
        shard.gauge("qps", 10.0)
        parent.merge(shard)
        assert parent.gauge_value("hit_rate") == 0.5
        assert parent.gauge_value("qps") == 10.0

    def test_snapshot_and_report(self):
        import json

        perf = PerfRegistry()
        perf.gauge("hit_rate", 0.25)
        snapshot = perf.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["gauges"]["hit_rate"] == 0.25
        report = perf.format_report("perf x")
        assert "hit_rate" in report
        assert "0.25" in report


class TestGaugePolicies:
    def shard(self, name, value, policy):
        registry = PerfRegistry()
        registry.declare_gauge(name, policy)
        registry.gauge(name, value)
        return registry

    def test_unknown_policy_rejected(self):
        import pytest
        with pytest.raises(ValueError, match="unknown gauge policy"):
            PerfRegistry().declare_gauge("x", "median")

    def test_declared_merges_are_order_independent(self):
        import itertools

        values = [0.2, 0.9, 0.5]
        for policy, expected in (("last", 0.5), ("max", 0.9),
                                 ("min", 0.2), ("sum", 1.6),
                                 ("mean", 1.6 / 3)):
            for order in itertools.permutations(range(len(values))):
                parent = PerfRegistry()
                parent.declare_gauge("g", policy)
                for rank in order:
                    parent.merge(self.shard("g", values[rank], policy),
                                 rank=rank)
                assert abs(parent.gauge_value("g") - expected) < 1e-12, \
                    (policy, order)

    def test_last_policy_keeps_highest_shard_rank(self):
        # Shard 2 finishing before shard 0 must not lose its value to
        # the later-arriving lower-ranked shard.
        parent = PerfRegistry()
        parent.declare_gauge("qps", "last")
        parent.merge(self.shard("qps", 30.0, "last"), rank=2)
        parent.merge(self.shard("qps", 10.0, "last"), rank=0)
        assert parent.gauge_value("qps") == 30.0

    def test_policy_travels_with_the_shard_registry(self):
        # Only the shard declared the policy; the parent learns it from
        # the merge instead of falling back to overwrite.
        parent = PerfRegistry()
        parent.merge(self.shard("g", 5.0, "max"), rank=1)
        parent.merge(self.shard("g", 3.0, "max"), rank=0)
        assert parent.gauge_value("g") == 5.0
        assert parent.gauge_policies["g"] == "max"

    def test_permuted_shard_merges_yield_identical_snapshots(self):
        import itertools

        def shard(rank):
            registry = PerfRegistry()
            registry.declare_gauge("hit_rate", "last")
            registry.declare_gauge("peak_qps", "max")
            registry.declare_gauge("probes_total", "sum")
            registry.gauge("hit_rate", 0.1 * (rank + 1))
            registry.gauge("peak_qps", 100.0 * (3 - rank))
            registry.gauge("probes_total", 10.0 * (rank + 1))
            registry.count("probes_sent", rank + 1)
            registry.record_seconds("shard_wall", 0.5)
            registry.observe_many("probe_rtt_seconds",
                                  [0.01 * (rank + 1)] * 3)
            return registry

        snapshots = []
        for order in itertools.permutations(range(3)):
            parent = PerfRegistry()
            for rank in order:
                parent.merge(shard(rank), rank=rank)
            snapshots.append(parent.snapshot())
        assert all(snapshot == snapshots[0] for snapshot in snapshots)


class TestTimers:
    def test_record_accumulates(self):
        perf = PerfRegistry()
        perf.record_seconds("scan_wall", 1.5)
        perf.record_seconds("scan_wall", 0.5)
        assert perf.seconds("scan_wall") == 2.0
        assert perf.timers["scan_wall"] == [2.0, 2]
        assert perf.seconds("missing") == 0.0

    def test_stage_context_manager(self):
        perf = PerfRegistry()
        with perf.stage("pipeline_clustering"):
            pass
        assert perf.seconds("pipeline_clustering") >= 0.0
        assert perf.timers["pipeline_clustering"][1] == 1

    def test_stage_records_on_exception(self):
        perf = PerfRegistry()
        try:
            with perf.stage("broken"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert perf.timers["broken"][1] == 1

    def test_rate(self):
        perf = PerfRegistry()
        perf.count("probes_sent", 100)
        perf.record_seconds("scan_wall", 4.0)
        assert perf.rate("probes_sent", "scan_wall") == 25.0
        assert perf.rate("probes_sent", "missing") == 0.0


class TestAggregation:
    def test_merge_folds_shard_registry(self):
        parent, shard = PerfRegistry(), PerfRegistry()
        parent.count("probes_sent", 10)
        parent.record_seconds("shard_wall", 1.0)
        shard.count("probes_sent", 5)
        shard.count("responses_seen", 2)
        shard.record_seconds("shard_wall", 2.0)
        parent.merge(shard)
        assert parent.counter("probes_sent") == 15
        assert parent.counter("responses_seen") == 2
        assert parent.timers["shard_wall"] == [3.0, 2]

    def test_snapshot_is_plain_data(self):
        import json

        perf = PerfRegistry()
        perf.count("probes_sent", 3)
        perf.record_seconds("scan_wall", 0.25)
        snapshot = perf.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"]["probes_sent"] == 3
        assert snapshot["timers"]["scan_wall"]["entries"] == 1

    def test_snapshot_restore_merge_round_trip(self):
        import json

        shard = PerfRegistry()
        shard.declare_gauge("peak_qps", "max")
        shard.gauge("peak_qps", 120.0)
        shard.count("probes_sent", 7)
        shard.record_seconds("shard_wall", 1.25)
        shard.observe_many("probe_rtt_seconds", [0.01, 0.04, 0.4])
        snapshot = shard.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

        restored = PerfRegistry().restore(
            json.loads(json.dumps(snapshot)))
        assert restored.snapshot() == snapshot

        direct, via_restore = PerfRegistry(), PerfRegistry()
        direct.merge(shard, rank=0)
        via_restore.merge(restored, rank=0)
        assert via_restore.snapshot() == direct.snapshot()
        assert via_restore.histograms["probe_rtt_seconds"].count == 3

    def test_restore_replaces_previous_contents(self):
        registry = PerfRegistry()
        registry.count("stale", 99)
        registry.observe("stale_hist", 1.0)
        registry.restore({"counters": {"fresh": 1}})
        assert registry.counter("stale") == 0
        assert registry.counter("fresh") == 1
        assert registry.histograms == {}


class TestHistograms:
    def test_observe_and_report(self):
        perf = PerfRegistry()
        perf.observe("probe_rtt_seconds", 0.02)
        perf.observe_many("probe_rtt_seconds", [0.03, 0.05])
        assert perf.histograms["probe_rtt_seconds"].count == 3
        report = perf.format_report("perf")
        assert "probe_rtt_seconds" in report
        assert "p99=" in report

    def test_observe_many_empty_creates_nothing(self):
        perf = PerfRegistry()
        perf.observe_many("probe_rtt_seconds", [])
        assert perf.histograms == {}

    def test_histograms_merge_exactly_across_shards(self):
        direct = PerfRegistry()
        direct.observe_many("rtt", [0.01, 0.02, 0.03, 0.5])
        left, right = PerfRegistry(), PerfRegistry()
        left.observe_many("rtt", [0.01, 0.02])
        right.observe_many("rtt", [0.03, 0.5])
        merged = PerfRegistry()
        merged.merge(left, rank=0)
        merged.merge(right, rank=1)
        assert merged.histograms["rtt"].snapshot() == \
            direct.histograms["rtt"].snapshot()


class TestDerivedRates:
    def test_declared_rate_appears_in_report(self):
        perf = PerfRegistry()
        perf.declare_rate("pipeline_domain_qps", "pipeline_domain_queries",
                          "pipeline_domain_scan")
        perf.count("pipeline_domain_queries", 500)
        perf.record_seconds("pipeline_domain_scan", 2.0)
        report = perf.format_report("perf")
        assert "pipeline_domain_qps" in report
        assert "250" in report

    def test_undriven_rate_stays_silent(self):
        perf = PerfRegistry()
        perf.declare_rate("idle_qps", "never_counted", "never_timed")
        assert "idle_qps" not in perf.format_report("perf")

    def test_rates_survive_snapshot_restore(self):
        perf = PerfRegistry()
        perf.declare_rate("qps", "queries", "wall")
        restored = PerfRegistry().restore(perf.snapshot())
        assert restored.rates["qps"] == ["queries", "wall"]

    def test_format_report_includes_throughput(self):
        perf = PerfRegistry()
        perf.count("probes_sent", 200)
        perf.record_seconds("scan_wall", 2.0)
        report = perf.format_report("perf scan")
        assert "[perf scan]" in report
        assert "probes_sent" in report
        assert "probes_per_sec" in report
        assert "100" in report
