"""Tests for the performance instrumentation registry."""

from repro.perf import PerfRegistry


class TestCounters:
    def test_count_and_read(self):
        perf = PerfRegistry()
        perf.count("probes_sent")
        perf.count("probes_sent", 41)
        assert perf.counter("probes_sent") == 42
        assert perf.counter("missing") == 0


class TestGauges:
    def test_set_and_read(self):
        perf = PerfRegistry()
        perf.gauge("pipeline_domain_scan_qps", 125.0)
        assert perf.gauge_value("pipeline_domain_scan_qps") == 125.0
        assert perf.gauge_value("missing") == 0.0
        assert perf.gauge_value("missing", default=-1.0) == -1.0

    def test_last_value_wins(self):
        perf = PerfRegistry()
        perf.gauge("hit_rate", 0.2)
        perf.gauge("hit_rate", 0.9)
        assert perf.gauge_value("hit_rate") == 0.9

    def test_merge_overwrites(self):
        parent, shard = PerfRegistry(), PerfRegistry()
        parent.gauge("hit_rate", 0.1)
        shard.gauge("hit_rate", 0.5)
        shard.gauge("qps", 10.0)
        parent.merge(shard)
        assert parent.gauge_value("hit_rate") == 0.5
        assert parent.gauge_value("qps") == 10.0

    def test_snapshot_and_report(self):
        import json

        perf = PerfRegistry()
        perf.gauge("hit_rate", 0.25)
        snapshot = perf.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["gauges"]["hit_rate"] == 0.25
        report = perf.format_report("perf x")
        assert "hit_rate" in report
        assert "0.25" in report


class TestTimers:
    def test_record_accumulates(self):
        perf = PerfRegistry()
        perf.record_seconds("scan_wall", 1.5)
        perf.record_seconds("scan_wall", 0.5)
        assert perf.seconds("scan_wall") == 2.0
        assert perf.timers["scan_wall"] == [2.0, 2]
        assert perf.seconds("missing") == 0.0

    def test_stage_context_manager(self):
        perf = PerfRegistry()
        with perf.stage("pipeline_clustering"):
            pass
        assert perf.seconds("pipeline_clustering") >= 0.0
        assert perf.timers["pipeline_clustering"][1] == 1

    def test_stage_records_on_exception(self):
        perf = PerfRegistry()
        try:
            with perf.stage("broken"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert perf.timers["broken"][1] == 1

    def test_rate(self):
        perf = PerfRegistry()
        perf.count("probes_sent", 100)
        perf.record_seconds("scan_wall", 4.0)
        assert perf.rate("probes_sent", "scan_wall") == 25.0
        assert perf.rate("probes_sent", "missing") == 0.0


class TestAggregation:
    def test_merge_folds_shard_registry(self):
        parent, shard = PerfRegistry(), PerfRegistry()
        parent.count("probes_sent", 10)
        parent.record_seconds("shard_wall", 1.0)
        shard.count("probes_sent", 5)
        shard.count("responses_seen", 2)
        shard.record_seconds("shard_wall", 2.0)
        parent.merge(shard)
        assert parent.counter("probes_sent") == 15
        assert parent.counter("responses_seen") == 2
        assert parent.timers["shard_wall"] == [3.0, 2]

    def test_snapshot_is_plain_data(self):
        import json

        perf = PerfRegistry()
        perf.count("probes_sent", 3)
        perf.record_seconds("scan_wall", 0.25)
        snapshot = perf.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"]["probes_sent"] == 3
        assert snapshot["timers"]["scan_wall"]["entries"] == 1

    def test_format_report_includes_throughput(self):
        perf = PerfRegistry()
        perf.count("probes_sent", 200)
        perf.record_seconds("scan_wall", 2.0)
        report = perf.format_report("perf scan")
        assert "[perf scan]" in report
        assert "probes_sent" in report
        assert "probes_per_sec" in report
        assert "100" in report
