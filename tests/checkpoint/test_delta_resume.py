"""Kill-anywhere resume equivalence for differential campaigns.

Extends :mod:`tests.checkpoint.test_resume_equivalence` to the delta
scanning plane: a campaign crashed at a delta-week boundary or inside a
drift-escalation sweep and resumed in a fresh process must reproduce the
uninterrupted run *byte for byte* — carried-forward rows, audit probes,
drift verdicts, escalation provenance, and the ``carried`` tallies all
replay identically, because the forecast is a pure read, the audit
sample is a pure hash, and the committed world state restores the loss
and flow draws the interrupted incarnation had consumed.
"""

import pickle

import pytest

from repro.checkpoint import CheckpointedRun
from repro.faults import FaultPlan, FaultProfile, InjectedCrash
from repro.inetmodel import ChurnModel, LeasedHost
from repro.netsim.clock import DAY
from repro.perf import PerfRegistry
from repro.resolvers import ResolverNode
from repro.scanner import DeltaConfig, ScanCampaign, ScanTargetSpace
from tests.checkpoint.test_resume_equivalence import \
    assert_campaigns_identical
from tests.conftest import MiniWorld

WEEKS = 4


class SabotagedChurn(ChurnModel):
    """A churn model with scheduled *out-of-model* decommissions.

    ``sabotage[step_index]`` hosts are taken offline when that
    :meth:`step` runs — after the campaign asked :meth:`pending_churn`,
    so the forecast cannot see it coming and only the audit probes can.
    Deterministic per step count, so every resume incarnation rebuilds
    the identical drift.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.sabotage = {}
        self.steps_taken = 0

    def step(self):
        for host in self.sabotage.get(self.steps_taken, ()):
            if host.online:
                self.take_offline(host)
        self.steps_taken += 1
        super().step()


def build_delta_world(sabotage_week=None, sabotage_pools=(0,)):
    """Four static /26 pools plus one day-lease pool, optionally with a
    scheduled unmodeled kill of whole static pools at one week."""
    world = MiniWorld()
    world.builder.register_domain("scan.dnsstudy.edu",
                                  wildcard_address="198.18.0.99")
    world.service.wildcard_suffixes = ("scan.dnsstudy.edu",)
    churn = SabotagedChurn(world.network, rdns=world.rdns, seed=5)

    def populate(pool, count, lease):
        hosts = []
        for _ in range(count):
            ip = churn.allocate_address(pool)
            node = ResolverNode(ip, resolution_service=world.service)
            world.network.register(node)
            host = LeasedHost(node, pool, lease_duration=lease)
            churn.add(host)
            hosts.append(host)
        return hosts

    static_pools = [world.allocator.allocate(26) for _ in range(4)]
    by_pool = [populate(pool, 8, None) for pool in static_pools]
    dynamic_pool = world.allocator.allocate(26)
    populate(dynamic_pool, 4, DAY)
    if sabotage_week is not None:
        churn.sabotage[sabotage_week] = [
            host for index in sabotage_pools for host in by_pool[index]]
    world.pools = static_pools + [dynamic_pool]
    world.churn = churn
    return world


def make_campaign(world, shards=1, perf=None):
    return ScanCampaign(
        world.network, world.churn, ScanTargetSpace(world.pools),
        world.client_ip, "scan.dnsstudy.edu", shards=shards, perf=perf,
        delta=DeltaConfig(audit_fraction=0.9, drift_budget=0.5,
                          window_bits=26))


def run_clean(build, shards=1):
    world = build()
    perf = PerfRegistry()
    campaign = make_campaign(world, shards=shards, perf=perf)
    campaign.run(WEEKS)
    return campaign, perf, world


def run_until_done(build, directory, plan, shards=1, max_restarts=8):
    meta = {"shards": shards, "weeks": WEEKS, "delta": True}
    crashes = 0
    for attempt in range(max_restarts):
        world = build()
        perf = PerfRegistry()
        campaign = make_campaign(world, shards=shards, perf=perf)
        checkpoint = CheckpointedRun(directory, meta=meta,
                                     resume=attempt > 0, fault_plan=plan)
        try:
            campaign.run(WEEKS, checkpoint=checkpoint)
        except InjectedCrash:
            crashes += 1
            checkpoint.close()
            continue
        checkpoint.close()
        return campaign, perf, world, crashes
    raise AssertionError("campaign did not finish in %d restarts"
                         % max_restarts)


def assert_byte_identical(clean_campaign, resumed_campaign):
    """The delta report contract: not just equal views, equal pickles —
    carried tallies, provenance, and column bytes included."""
    assert len(resumed_campaign.snapshots) == len(clean_campaign.snapshots)
    for mine, theirs in zip(clean_campaign.snapshots,
                            resumed_campaign.snapshots):
        assert pickle.dumps(theirs.result) == pickle.dumps(mine.result)


def week_entry(campaign, week):
    for entry in campaign.snapshots[week].result.provenance:
        if entry.get("kind") == "delta" and entry.get("status") == "ok":
            return entry
    raise AssertionError("week %d has no delta provenance" % week)


class TestDeltaCampaignResume:
    @pytest.mark.parametrize("week", [1, 2])
    def test_crash_at_delta_week_boundary(self, tmp_path, week):
        clean = run_clean(build_delta_world)
        plan = FaultPlan(FaultProfile(crash_points=("week:%d" % week,)),
                         seed=3)
        campaign, perf, world, crashes = run_until_done(
            build_delta_world, str(tmp_path / "ckpt"), plan)
        assert crashes == 1
        # The interrupted weeks really were delta weeks with carried
        # verdicts — the test would be vacuous otherwise.
        entry = week_entry(campaign, week)
        assert entry["mode"] == "delta" and entry["carried"] > 0
        assert_campaigns_identical(clean, (campaign, perf, world))
        assert_byte_identical(clean[0], campaign)

    @pytest.mark.parametrize("origin", [0, 1, 3])
    def test_crash_inside_escalated_window_sweep(self, tmp_path, origin):
        """Sabotage one static pool mid-campaign: week 2's audit drives
        a window escalation, and the crash lands inside the escalated
        sweep itself (the ``delta`` checkpoint scope)."""
        build = lambda: build_delta_world(sabotage_week=2,
                                          sabotage_pools=(0,))
        clean = run_clean(build, shards=4)
        plan = FaultPlan(FaultProfile(
            crash_points=("shard:week/2/delta/%d" % origin,)), seed=3)
        campaign, perf, world, crashes = run_until_done(
            build, str(tmp_path / "ckpt"), plan, shards=4)
        assert crashes == 1
        escalated = [entry for entry
                     in campaign.snapshots[2].result.provenance
                     if entry.get("status") == "delta_escalated"]
        assert escalated, "sabotage did not trigger a window escalation"
        assert_campaigns_identical(clean, (campaign, perf, world))
        assert_byte_identical(clean[0], campaign)

    def test_crash_inside_global_escalation_sweep(self, tmp_path):
        """Sabotage every static pool: the aggregate audit failure share
        blows the budget, week 2 falls back to a full sweep, and the
        crash lands inside that sweep."""
        build = lambda: build_delta_world(sabotage_week=2,
                                          sabotage_pools=(0, 1, 2, 3))
        clean = run_clean(build, shards=4)
        plan = FaultPlan(FaultProfile(
            crash_points=("shard:week/2/scan/2",)), seed=3)
        campaign, perf, world, crashes = run_until_done(
            build, str(tmp_path / "ckpt"), plan, shards=4)
        assert crashes == 1
        fallback = [entry for entry
                    in campaign.snapshots[2].result.provenance
                    if entry.get("status") == "delta_full_sweep"]
        assert fallback, "sabotage did not trigger the global fallback"
        assert_campaigns_identical(clean, (campaign, perf, world))
        assert_byte_identical(clean[0], campaign)

    def test_torn_journal_write_mid_delta_campaign(self, tmp_path):
        clean = run_clean(build_delta_world)
        plan = FaultPlan(FaultProfile(torn_points=(1,)), seed=3)
        campaign, perf, world, crashes = run_until_done(
            build_delta_world, str(tmp_path / "ckpt"), plan)
        assert crashes == 1
        assert_campaigns_identical(clean, (campaign, perf, world))
        assert_byte_identical(clean[0], campaign)

    def test_uninterrupted_checkpointed_delta_matches_clean(self,
                                                            tmp_path):
        clean = run_clean(build_delta_world, shards=4)
        campaign, perf, world, crashes = run_until_done(
            build_delta_world, str(tmp_path / "ckpt"), plan=None,
            shards=4)
        assert crashes == 0
        assert_campaigns_identical(clean, (campaign, perf, world))
        assert_byte_identical(clean[0], campaign)
