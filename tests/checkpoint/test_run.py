"""Tests for the CheckpointedRun supervisor (commit/restore/resume)."""

import os

import pytest

from repro.checkpoint import CheckpointedRun, CheckpointError
from repro.faults import FaultPlan, FaultProfile, InjectedCrash


def open_run(tmp_path, **kwargs):
    return CheckpointedRun(str(tmp_path / "ckpt"), **kwargs)


class TestCommitRestore:
    def test_roundtrip_with_state(self, tmp_path):
        run = open_run(tmp_path)
        run.commit(("week", 0), {"result": [1, 2]}, state={"clock": 7.0})
        run.close()
        resumed = open_run(tmp_path, resume=True)
        assert resumed.completed(("week", 0))
        record = resumed.restore(("week", 0))
        assert record["payload"] == {"result": [1, 2]}
        assert record["state"] == {"clock": 7.0}
        assert resumed.restore(("week", 1)) is None

    def test_scope_prefixes_keys_and_nests(self, tmp_path):
        run = open_run(tmp_path)
        scope = run.scope("week", 3).scope("scan")
        scope.commit(("shard", 0), "payload")
        assert run.completed(("week", 3, "scan", "shard", 0))
        assert scope.completed(("shard", 0))
        assert scope.restore(("shard", 0))["payload"] == "payload"

    def test_corrupt_snapshot_quarantined_not_fatal(self, tmp_path):
        run = open_run(tmp_path)
        run.commit(("week", 0), "payload")
        run.close()
        resumed = open_run(tmp_path, resume=True)
        path = resumed.store.path_for(("week", 0))
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.write(b"\x00")
        assert resumed.restore(("week", 0)) is None
        assert not resumed.completed(("week", 0))
        assert resumed.provenance["snapshots_quarantined"] == 1
        assert os.listdir(resumed.quarantine_dir)

    def test_missing_snapshot_reruns_unit(self, tmp_path):
        run = open_run(tmp_path)
        run.commit(("week", 0), "payload")
        os.remove(run.store.path_for(("week", 0)))
        run.close()
        resumed = open_run(tmp_path, resume=True)
        assert resumed.restore(("week", 0)) is None


class TestMetaValidation:
    def test_reopen_without_resume_refused(self, tmp_path):
        run = open_run(tmp_path, meta={"command": "campaign"})
        run.commit(("week", 0), "x")
        run.close()
        with pytest.raises(CheckpointError):
            open_run(tmp_path, meta={"command": "campaign"})

    def test_resume_with_matching_meta_allowed(self, tmp_path):
        run = open_run(tmp_path, meta={"seed": 7})
        run.commit(("week", 0), "x")
        run.close()
        resumed = open_run(tmp_path, meta={"seed": 7}, resume=True)
        assert resumed.completed(("week", 0))

    def test_resume_with_mismatched_meta_refused(self, tmp_path):
        run = open_run(tmp_path, meta={"seed": 7})
        run.commit(("week", 0), "x")
        run.close()
        with pytest.raises(CheckpointError):
            open_run(tmp_path, meta={"seed": 8}, resume=True)


class TestCrashPlane:
    def test_forced_crash_fires_once_across_resume(self, tmp_path):
        plan = FaultPlan(FaultProfile(crash_points=("week:1",)), seed=3)
        run = open_run(tmp_path, fault_plan=plan)
        run.maybe_crash("week", (0,))  # different point: no crash
        with pytest.raises(InjectedCrash) as crash:
            run.maybe_crash("week", (1,))
        assert crash.value.point == "week:1"
        run.close()
        # The occurrence was journaled: the resumed run proceeds.
        resumed = open_run(tmp_path, resume=True, fault_plan=plan)
        resumed.maybe_crash("week", (1,))
        assert resumed.provenance["crashes_injected"] == 1

    def test_scoped_crash_point_uses_prefixed_canon(self, tmp_path):
        plan = FaultPlan(
            FaultProfile(crash_points=("shard:week/2/scan/1",)), seed=3)
        run = open_run(tmp_path, fault_plan=plan)
        scope = run.scope("week", 2, "scan")
        with pytest.raises(InjectedCrash):
            scope.maybe_crash("shard", (1,))

    def test_forced_torn_write_then_resume_commits(self, tmp_path):
        plan = FaultPlan(FaultProfile(torn_points=(1,)), seed=3)
        run = open_run(tmp_path, fault_plan=plan)
        run.commit(("week", 0), "w0")
        with pytest.raises(InjectedCrash) as crash:
            run.commit(("week", 1), "w1")
        assert crash.value.kind == "torn_write"
        run.close()
        resumed = open_run(tmp_path, resume=True, fault_plan=plan)
        # The torn record was quarantined: week 1 is not committed...
        assert resumed.completed(("week", 0))
        assert not resumed.completed(("week", 1))
        assert resumed.provenance["journal_records_quarantined"] == 1
        # ...and the torn-write draw has moved on (epoch advanced), so
        # recommitting the unit lands durably this time.
        resumed.commit(("week", 1), "w1")
        resumed.close()
        final = open_run(tmp_path, resume=True, fault_plan=plan)
        assert final.completed(("week", 1))


class TestProvenance:
    def test_provenance_counts_and_notes(self, tmp_path):
        run = open_run(tmp_path)
        run.commit(("week", 0), "x")
        run.note("resumed_from_week", 0)
        run.note("resumed_from_week", 5)  # first write wins
        provenance = run.provenance
        assert provenance["resumed"] is False
        assert provenance["units_committed"] == 1
        assert provenance["resumed_from_week"] == 0
        run.close()
        resumed = open_run(tmp_path, resume=True)
        resumed.restore(("week", 0))
        provenance = resumed.provenance
        assert provenance["resumed"] is True
        assert provenance["journal_records_replayed"] == 1
        assert provenance["units_restored"] == 1

    def test_write_provenance_is_valid_json(self, tmp_path):
        import json
        run = open_run(tmp_path)
        run.commit(("week", 0), "x")
        path = run.write_provenance()
        with open(path) as handle:
            data = json.load(handle)
        assert data["units_committed"] == 1
