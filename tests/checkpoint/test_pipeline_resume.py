"""Stage-boundary kill/resume equivalence for the classification pipeline.

Mirrors ``test_resume_equivalence`` for :class:`ManipulationPipeline`:
crash the run at every stage boundary, resume it in a fresh process
(fresh world, fresh pipeline), and require the final
:class:`PipelineReport`, traffic counters, and clock to be bit-identical
to a never-interrupted, never-checkpointed run.
"""

import pytest

from repro.checkpoint import CheckpointedRun
from repro.core.pipeline import ManipulationPipeline
from repro.datasets import ScanDomain
from repro.faults import FaultPlan, FaultProfile, InjectedCrash
from repro.inetmodel import AsRegistry, AutonomousSystem
from repro.perf import PerfRegistry
from repro.resolvers import (
    CensorshipBehavior,
    ProxyAllBehavior,
    ResolverNode,
    StaticIpBehavior,
)
from repro.websim import TransparentProxy, WebServer
from repro.websim.httpserver import StaticPageServer
from repro.websim.pages import censorship_landing
from tests.checkpoint.test_resume_equivalence import curated_counters
from tests.conftest import MiniWorld

STAGES = ("domain_scan", "prefilter", "ground_truth", "acquisition",
          "clustering", "labeling")


def build_pipeline_world(perf=None, shards=1):
    """The hand-built manipulation world from tests/core/test_pipeline,
    as a function so every process incarnation rebuilds it identically."""
    mini = MiniWorld()
    mini.web_ip = mini.infra.address_at(40020)
    mini.add_web_domain("blocked.example", mini.web_ip, category="Alexa")
    mini.add_web_domain("normal.example",
                        mini.infra.address_at(40021), category="Misc")
    foreign = mini.allocator.allocate(24)
    mini.landing_ip = foreign.address_at(1)
    mini.network.register(StaticPageServer(mini.landing_ip,
                                           censorship_landing("TR")))
    mini.proxy_ip = foreign.address_at(2)
    mini.network.register(TransparentProxy(mini.proxy_ip, mini.sites))
    mini.error_ip = foreign.address_at(3)
    mini.network.register(WebServer(mini.error_ip, mini.sites,
                                    ["unrelated.example"], https=False))
    mini.resolver_ips = {}
    for name, behaviors in (
            ("honest", []),
            ("censor", [CensorshipBehavior(["blocked.example"],
                                           [mini.landing_ip])]),
            ("proxy", [ProxyAllBehavior([mini.proxy_ip])]),
            ("misdirect", [StaticIpBehavior(mini.error_ip)])):
        ip = mini.infra.address_at(41000 + len(mini.resolver_ips))
        mini.network.register(ResolverNode(
            ip, resolution_service=mini.service, behaviors=behaviors))
        mini.resolver_ips[name] = ip
    registry = AsRegistry()
    registry.add(AutonomousSystem(64500, "Infra", "US",
                                  prefixes=[mini.infra]))
    mini.catalog = [ScanDomain("blocked.example", "Alexa"),
                    ScanDomain("normal.example", "Misc")]
    mini.pipeline = ManipulationPipeline(
        mini.network, mini.service, registry, mini.rdns, mini.ca,
        known_cdn_common_names=(), source_ip=mini.client_ip,
        domain_catalog=mini.catalog, perf=perf, shards=shards)
    return mini


def observation_key(observation):
    return (observation.domain, observation.resolver_ip,
            observation.rcode, tuple(observation.addresses),
            observation.source_ip, observation.injected_suspect,
            observation.ns_record_count)


def capture_key(capture):
    return (capture.key(), capture.status, capture.body, capture.scheme,
            tuple(capture.redirects), capture.failure, capture.final_host)


def report_fingerprint(report):
    prefilter = report.prefilter
    return {
        "observations": sorted(observation_key(o)
                               for o in report.observations),
        "prefilter": None if prefilter is None else {
            "legitimate": len(prefilter.legitimate),
            "unknown": len(prefilter.unknown),
            "empty": len(prefilter.empty),
            "nx_correct": prefilter.nx_correct,
            "errors": len(prefilter.errors),
            "unknown_keys": sorted(t.key() for t in prefilter.unknown),
        },
        "http_captures": sorted(capture_key(c)
                                for c in report.http_captures),
        "mail_captures": sorted(
            (c.domain, c.ip, c.resolver_ip, tuple(c.banners))
            for c in report.mail_captures),
        "failed_captures": sorted(capture_key(c)
                                  for c in report.failed_captures),
        "clusters": sorted(tuple(sorted(c.key() for c in cluster.items))
                           for cluster in report.clusters),
        "dendrogram": (report.dendrogram.merges
                       if report.dendrogram is not None else None),
        "labeled": sorted((l.capture.key(), l.label, l.sublabel,
                           l.cluster_id) for l in report.labeled),
        "diff_clusters": sorted(
            tuple(sorted((p.capture.key(), p.similarity_to_truth,
                          sorted(p.added.items()),
                          sorted(p.removed.items()))
                         for p in cluster.items))
            for cluster in report.diff_clusters),
        "ground_truth_bodies": report.ground_truth_bodies,
        "degraded": report.degraded,
    }


def run_clean_pipeline():
    perf = PerfRegistry()
    world = build_pipeline_world(perf=perf)
    report = world.pipeline.run(list(world.resolver_ips.values()),
                                world.catalog)
    return report, perf, world


def run_pipeline_until_done(directory, plan, max_restarts=8):
    crashes = 0
    for attempt in range(max_restarts):
        perf = PerfRegistry()
        world = build_pipeline_world(perf=perf)
        checkpoint = CheckpointedRun(directory, meta={"stages": STAGES},
                                     resume=attempt > 0, fault_plan=plan)
        try:
            report = world.pipeline.run(
                list(world.resolver_ips.values()), world.catalog,
                checkpoint=checkpoint)
        except InjectedCrash:
            crashes += 1
            checkpoint.close()
            continue
        provenance = checkpoint.provenance
        checkpoint.close()
        return report, perf, world, provenance, crashes
    raise AssertionError("pipeline did not finish in %d restarts"
                         % max_restarts)


def assert_pipelines_identical(clean, resumed):
    clean_report, clean_perf, clean_world = clean
    resumed_report, resumed_perf, resumed_world = resumed
    assert report_fingerprint(resumed_report) == \
        report_fingerprint(clean_report)
    assert resumed_world.clock.now == clean_world.clock.now
    for name in ("udp_queries_sent", "udp_queries_lost",
                 "udp_responses_corrupted"):
        assert getattr(resumed_world.network, name) == \
            getattr(clean_world.network, name), name
    assert curated_counters(resumed_perf) == curated_counters(clean_perf)


class TestPipelineResume:
    @pytest.mark.parametrize("stage", STAGES)
    def test_crash_at_every_stage_boundary(self, tmp_path, stage):
        clean = run_clean_pipeline()
        plan = FaultPlan(FaultProfile(crash_points=("stage:%s" % stage,)),
                         seed=3)
        report, perf, world, provenance, crashes = \
            run_pipeline_until_done(str(tmp_path / "ckpt"), plan)
        assert crashes == 1
        assert provenance["resumed"] is True
        assert provenance["units_restored"] == STAGES.index(stage) + 1
        assert_pipelines_identical(clean, (report, perf, world))

    def test_torn_write_at_stage_commit(self, tmp_path):
        clean = run_clean_pipeline()
        # Sequence 2 is the ground_truth stage's commit record.
        plan = FaultPlan(FaultProfile(torn_points=(2,)), seed=3)
        report, perf, world, provenance, crashes = \
            run_pipeline_until_done(str(tmp_path / "ckpt"), plan)
        assert crashes == 1
        assert provenance["journal_records_quarantined"] == 1
        assert_pipelines_identical(clean, (report, perf, world))

    def test_uninterrupted_checkpointed_run_matches_clean(self, tmp_path):
        clean = run_clean_pipeline()
        report, perf, world, provenance, crashes = \
            run_pipeline_until_done(str(tmp_path / "ckpt"), plan=None)
        assert crashes == 0
        assert provenance["resumed"] is False
        assert_pipelines_identical(clean, (report, perf, world))
