"""Tests for the atomic snapshot store (durable-replace + checksums)."""

import os

import pytest

from repro.checkpoint import (
    SnapshotCorruption,
    SnapshotStore,
    atomic_write_bytes,
    atomic_write_text,
    decode_snapshot,
    encode_snapshot,
    key_filename,
)
from repro.perf import PerfRegistry


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"hello")
        with open(path, "rb") as handle:
            assert handle.read() == b"hello"

    def test_replaces_existing_file(self, tmp_path):
        path = str(tmp_path / "report.md")
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        with open(path) as handle:
            assert handle.read() == "second"

    def test_leaves_no_temp_file_behind(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"data")
        assert os.listdir(str(tmp_path)) == ["out.bin"]


class TestSnapshotCodec:
    def test_roundtrip(self):
        payload = {"week": 3, "items": [1, 2, 3]}
        assert decode_snapshot(encode_snapshot(payload)) == payload

    def test_truncated_header_rejected(self):
        with pytest.raises(SnapshotCorruption):
            decode_snapshot(b"SN")

    def test_wrong_magic_rejected(self):
        data = bytearray(encode_snapshot("x"))
        data[0] ^= 0xFF
        with pytest.raises(SnapshotCorruption):
            decode_snapshot(bytes(data))

    def test_flipped_payload_bit_rejected(self):
        data = bytearray(encode_snapshot({"a": 1}))
        data[-1] ^= 0x01
        with pytest.raises(SnapshotCorruption):
            decode_snapshot(bytes(data))


class TestKeyFilename:
    def test_stable_and_distinct(self):
        a = key_filename(("week", 3))
        assert a == key_filename(("week", 3))
        assert a != key_filename(("week", 4))

    def test_unusual_characters_sanitized_without_collision(self):
        a = key_filename(("stage", "a/b"))
        b = key_filename(("stage", "a:b"))
        assert "/" not in a and ":" not in b
        assert a != b  # the crc suffix keeps collapsed names distinct


class TestSnapshotStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        store.save(("week", 0), {"result": [1, 2]})
        assert store.load(("week", 0)) == {"result": [1, 2]}

    def test_corrupt_file_raises(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        store.save(("week", 0), "payload")
        path = store.path_for(("week", 0))
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.write(b"\x00")
        with pytest.raises(SnapshotCorruption):
            store.load(("week", 0))

    def test_missing_raises_file_not_found(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        with pytest.raises(FileNotFoundError):
            store.load(("never", "written"))

    def test_discard(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        store.save(("x",), 1)
        store.discard(("x",))
        store.discard(("x",))  # idempotent
        with pytest.raises(FileNotFoundError):
            store.load(("x",))

    def test_perf_counters(self, tmp_path):
        perf = PerfRegistry()
        store = SnapshotStore(str(tmp_path / "snaps"), perf=perf)
        store.save(("a",), "payload")
        assert perf.counter("checkpoint_snapshots_written") == 1
        assert perf.counter("checkpoint_snapshot_bytes") > 0
