"""Kill-anywhere resume equivalence: crash → resume → identical output.

The durability contract of :mod:`repro.checkpoint` is not "resume runs
to completion" but "resume is *indistinguishable*": a campaign or
pipeline killed at any injected crash point and resumed in a fresh
process must produce bit-identical results, traffic counters, clocks,
and provenance compared to a never-interrupted run.  These tests build
the same deterministic world fresh for every process incarnation (as a
real restart would), drive it through forced crash/torn-write draws at
every unit boundary, and compare against an uncheckpointed clean run.
"""

import pytest

from repro.checkpoint import CheckpointedRun
from repro.faults import FaultPlan, FaultProfile, InjectedCrash
from repro.inetmodel import ChurnModel, LeasedHost
from repro.netsim.clock import DAY, WEEK
from repro.perf import PerfRegistry
from repro.resolvers import ResolverNode
from repro.scanner import ScanCampaign, ScanTargetSpace
from tests.conftest import MiniWorld

WEEKS = 3

# Traffic/processing counters that must match bit-for-bit between a
# clean and a resumed run.  Wall-clock artifacts (timers, heartbeat
# tallies, hang kills) and the checkpoint subsystem's own bookkeeping
# are excluded by name/prefix.
_NONDETERMINISTIC = {"heartbeats_seen", "workers_hung"}
_EXCLUDED_PREFIXES = ("checkpoint_",)


def curated_counters(perf):
    return {name: value for name, value in perf.counters.items()
            if name not in _NONDETERMINISTIC
            and not name.startswith(_EXCLUDED_PREFIXES)}


def scan_fingerprint(result):
    return {
        "counts": result.counts(),
        "responders": sorted(result.responders),
        "divergent": sorted(result.divergent_sources),
        "probes_sent": result.probes_sent,
        "retransmissions": result.retransmissions,
        "provenance": getattr(result, "provenance", []),
    }


def campaign_fingerprint(campaign):
    return [
        {"week": snapshot.week,
         "scan": scan_fingerprint(snapshot.result),
         "verification": (scan_fingerprint(snapshot.verification)
                          if snapshot.verification is not None else None)}
        for snapshot in campaign.snapshots]


# -- campaign world (rebuilt identically per process incarnation) ---------

def build_campaign_world():
    world = MiniWorld()
    world.builder.register_domain("scan.dnsstudy.edu",
                                  wildcard_address="198.18.0.99")
    world.service.wildcard_suffixes = ("scan.dnsstudy.edu",)
    pool = world.allocator.allocate(26)
    churn = ChurnModel(world.network, rdns=world.rdns, seed=5)
    for lease in (None, None, DAY, 2 * WEEK):
        ip = churn.allocate_address(pool)
        node = ResolverNode(ip, resolution_service=world.service)
        world.network.register(node)
        churn.add(LeasedHost(node, pool, lease_duration=lease))
    world.pool = pool
    world.churn = churn
    return world


def make_campaign(world, shards=1, perf=None, verify=False):
    return ScanCampaign(
        world.network, world.churn, ScanTargetSpace([world.pool]),
        world.client_ip, "scan.dnsstudy.edu", shards=shards, perf=perf,
        verification_source_ip=(world.infra.address_at(777)
                                if verify else None))


def run_clean_campaign(shards=1, verify=False):
    world = build_campaign_world()
    perf = PerfRegistry()
    campaign = make_campaign(world, shards=shards, perf=perf,
                             verify=verify)
    campaign.run(WEEKS, verify_last=verify)
    return campaign, perf, world


def run_campaign_until_done(directory, plan, shards=1, verify=False,
                            max_restarts=8):
    """Drive a checkpointed campaign through crashes until it finishes,
    rebuilding the world from scratch for every incarnation."""
    meta = {"shards": shards, "weeks": WEEKS}
    crashes = 0
    for attempt in range(max_restarts):
        world = build_campaign_world()
        perf = PerfRegistry()
        campaign = make_campaign(world, shards=shards, perf=perf,
                                 verify=verify)
        checkpoint = CheckpointedRun(directory, meta=meta,
                                     resume=attempt > 0, fault_plan=plan)
        try:
            campaign.run(WEEKS, verify_last=verify,
                         checkpoint=checkpoint)
        except InjectedCrash:
            crashes += 1
            checkpoint.close()
            continue
        provenance = checkpoint.provenance
        checkpoint.close()
        return campaign, perf, world, provenance, crashes
    raise AssertionError("campaign did not finish in %d restarts"
                         % max_restarts)


def assert_campaigns_identical(clean, resumed):
    clean_campaign, clean_perf, clean_world = clean
    resumed_campaign, resumed_perf, resumed_world = resumed
    assert campaign_fingerprint(resumed_campaign) == \
        campaign_fingerprint(clean_campaign)
    assert resumed_world.clock.now == clean_world.clock.now
    for name in ("udp_queries_sent", "udp_queries_lost",
                 "udp_responses_corrupted"):
        assert getattr(resumed_world.network, name) == \
            getattr(clean_world.network, name), name
    assert resumed_world.churn.rebind_count == \
        clean_world.churn.rebind_count
    assert resumed_world.churn.offline_count == \
        clean_world.churn.offline_count
    assert curated_counters(resumed_perf) == curated_counters(clean_perf)


class TestCampaignResume:
    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("week", range(WEEKS))
    def test_crash_at_every_week_boundary(self, tmp_path, shards, week):
        clean = run_clean_campaign(shards=shards)
        plan = FaultPlan(FaultProfile(crash_points=("week:%d" % week,)),
                         seed=3)
        campaign, perf, world, provenance, crashes = \
            run_campaign_until_done(str(tmp_path / "ckpt"), plan,
                                    shards=shards)
        assert crashes == 1
        assert provenance["resumed"] is True
        assert provenance["journal_records_replayed"] >= week + 1
        assert provenance["resumed_from_week"] == week + 1 if \
            week + 1 < WEEKS else "resumed_from_week" not in provenance
        assert_campaigns_identical(clean, (campaign, perf, world))

    @pytest.mark.parametrize("origin", [0, 2, 3])
    def test_crash_at_shard_boundaries_mid_week(self, tmp_path, origin):
        clean = run_clean_campaign(shards=4)
        plan = FaultPlan(FaultProfile(
            crash_points=("shard:week/1/scan/%d" % origin,)), seed=3)
        campaign, perf, world, provenance, crashes = \
            run_campaign_until_done(str(tmp_path / "ckpt"), plan, shards=4)
        assert crashes == 1
        # The crash hit mid-week: week 1 itself had to resume.
        assert provenance["resumed_from_week"] == 1
        assert_campaigns_identical(clean, (campaign, perf, world))

    def test_torn_journal_write_mid_campaign(self, tmp_path):
        clean = run_clean_campaign(shards=1)
        # Sequence 1 is week 1's commit record (shards=1: one record per
        # week); tearing it kills the run mid-append.
        plan = FaultPlan(FaultProfile(torn_points=(1,)), seed=3)
        campaign, perf, world, provenance, crashes = \
            run_campaign_until_done(str(tmp_path / "ckpt"), plan, shards=1)
        assert crashes == 1
        assert provenance["journal_records_quarantined"] == 1
        assert_campaigns_identical(clean, (campaign, perf, world))

    def test_multiple_crashes_and_torn_writes(self, tmp_path):
        clean = run_clean_campaign(shards=4)
        plan = FaultPlan(FaultProfile(
            crash_points=("week:0", "shard:week/1/scan/2", "week:2"),
            torn_points=(2,)), seed=3)
        campaign, perf, world, provenance, crashes = \
            run_campaign_until_done(str(tmp_path / "ckpt"), plan, shards=4)
        assert crashes >= 3
        assert_campaigns_identical(clean, (campaign, perf, world))

    def test_verify_last_week_resumes_identically(self, tmp_path):
        # Crash right before the final (verified) week: the resumed run
        # must reproduce both the scan and the verification scan.
        clean = run_clean_campaign(shards=1, verify=True)
        plan = FaultPlan(FaultProfile(crash_points=("week:1",)), seed=3)
        campaign, perf, world, provenance, crashes = \
            run_campaign_until_done(str(tmp_path / "ckpt"), plan,
                                    shards=1, verify=True)
        assert crashes == 1
        assert campaign.last().verification is not None
        assert_campaigns_identical(clean, (campaign, perf, world))

    def test_uninterrupted_checkpointed_run_matches_clean(self, tmp_path):
        clean = run_clean_campaign(shards=4)
        campaign, perf, world, provenance, crashes = \
            run_campaign_until_done(str(tmp_path / "ckpt"), plan=None,
                                    shards=4)
        assert crashes == 0
        assert provenance["resumed"] is False
        assert_campaigns_identical(clean, (campaign, perf, world))
