"""Tests for the write-ahead journal's append and torn-safe replay."""

import os

from repro.checkpoint import Journal
from repro.perf import PerfRegistry


def make_journal(tmp_path, name="journal.wal", perf=None):
    return Journal(str(tmp_path / name), perf=perf)


class TestAppendReplay:
    def test_roundtrip_preserves_order(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.replay()
        for index in range(5):
            journal.append({"seq": index})
        journal.close()
        replay = make_journal(tmp_path).replay()
        assert [record["seq"] for record in replay.records] == list(range(5))
        assert replay.replayed == 5
        assert replay.quarantined == 0

    def test_missing_file_replays_empty(self, tmp_path):
        replay = make_journal(tmp_path).replay()
        assert replay.records == []
        assert replay.replayed == 0

    def test_seq_continues_after_replay(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("a")
        journal.append("b")
        journal.close()
        reopened = make_journal(tmp_path)
        reopened.replay()
        assert reopened.append("c") == 2


class TestTornTail:
    def test_truncated_last_record_is_quarantined(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append({"n": 1})
        journal.append({"n": 2})
        journal.append({"n": 3})
        journal.close()
        # Tear the tail mid-record, as a crash during append would.
        path = journal.path
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 4)
        quarantined = []
        replay = make_journal(tmp_path).replay(
            quarantine=lambda raw, reason: quarantined.append(reason))
        assert [record["n"] for record in replay.records] == [1, 2]
        assert replay.quarantined == 1
        assert replay.torn_bytes > 0
        assert quarantined == ["torn-tail"]

    def test_replay_truncates_tail_for_clean_appends(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("a")
        journal.append("b")
        journal.close()
        with open(journal.path, "r+b") as handle:
            handle.truncate(os.path.getsize(journal.path) - 3)
        reopened = make_journal(tmp_path)
        reopened.replay()
        reopened.append("b2")
        reopened.close()
        final = make_journal(tmp_path).replay()
        assert final.records == ["a", "b2"]
        assert final.quarantined == 0

    def test_append_torn_leaves_recoverable_journal(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("committed")
        journal.append_torn("never-lands")
        journal.close()
        replay = make_journal(tmp_path).replay()
        assert replay.records == ["committed"]
        assert replay.quarantined == 1


class TestCorruptRecords:
    def _flip_payload_byte(self, path, record_index):
        """Flip one payload byte of the ``record_index``-th record."""
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        offset = 0
        for __ in range(record_index):
            length = int.from_bytes(data[offset + 2:offset + 6], "big")
            offset += 10 + length
        length = int.from_bytes(data[offset + 2:offset + 6], "big")
        data[offset + 10 + length - 1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))

    def test_crc_mismatch_mid_file_skips_only_that_record(self, tmp_path):
        journal = make_journal(tmp_path)
        for index in range(3):
            journal.append({"n": index})
        journal.close()
        self._flip_payload_byte(journal.path, 1)
        quarantined = []
        replay = make_journal(tmp_path).replay(
            quarantine=lambda raw, reason: quarantined.append(reason))
        assert [record["n"] for record in replay.records] == [0, 2]
        assert replay.quarantined == 1
        assert quarantined == ["crc-mismatch"]

    def test_lost_framing_quarantines_remainder(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("first")
        journal.append("second")
        journal.close()
        with open(journal.path, "rb") as handle:
            data = bytearray(handle.read())
        # Destroy the second record's magic: framing is lost from there.
        length = int.from_bytes(data[2:6], "big")
        data[10 + length] ^= 0xFF
        with open(journal.path, "wb") as handle:
            handle.write(bytes(data))
        quarantined = []
        replay = make_journal(tmp_path).replay(
            quarantine=lambda raw, reason: quarantined.append(reason))
        assert replay.records == ["first"]
        assert quarantined == ["lost-framing"]

    def test_absurd_length_treated_as_damage(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("first")
        journal.close()
        with open(journal.path, "ab") as handle:
            handle.write(b"\xc4W" + (1 << 30).to_bytes(4, "big")
                         + b"\x00" * 8)
        quarantined = []
        replay = make_journal(tmp_path).replay(
            quarantine=lambda raw, reason: quarantined.append(reason))
        assert replay.records == ["first"]
        assert quarantined == ["bad-length"]


class TestPerfCounters:
    def test_append_and_replay_counters(self, tmp_path):
        perf = PerfRegistry()
        journal = make_journal(tmp_path, perf=perf)
        journal.append("a")
        journal.append("b")
        journal.close()
        assert perf.counter("checkpoint_journal_appends") == 2
        assert perf.counter("checkpoint_journal_fsyncs") == 2
        assert perf.counter("checkpoint_journal_bytes") > 0
        replay_perf = PerfRegistry()
        make_journal(tmp_path, perf=replay_perf).replay()
        assert replay_perf.counter(
            "checkpoint_journal_records_replayed") == 2
