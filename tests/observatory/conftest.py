"""Shared observatory fixtures: a checkpointed MiniWorld campaign.

The ingest/query/service tests all need the same thing — a finished
campaign whose checkpoint directory the observatory can tail — so one
module builds it.  The world is deterministic (same builder as the
delta-scanning tests), which is what makes the crash-resume equality
assertions meaningful.
"""

import pytest

from repro.checkpoint import CheckpointedRun
from repro.inetmodel import ChurnModel, LeasedHost
from repro.netsim.address import ip_to_int
from repro.netsim.clock import DAY
from repro.resolvers import ResolverNode
from repro.scanner import ScanCampaign, ScanTargetSpace
from tests.conftest import MiniWorld

WEEKS = 3


def build_world(seed=5):
    world = MiniWorld()
    world.builder.register_domain("scan.dnsstudy.edu",
                                  wildcard_address="198.18.0.99")
    world.service.wildcard_suffixes = ("scan.dnsstudy.edu",)
    churn = ChurnModel(world.network, rdns=world.rdns, seed=seed)

    def populate(pool, count, lease):
        for _ in range(count):
            ip = churn.allocate_address(pool)
            node = ResolverNode(ip, resolution_service=world.service)
            world.network.register(node)
            churn.add(LeasedHost(node, pool, lease_duration=lease))

    world.static_pool = world.allocator.allocate(26)
    populate(world.static_pool, 6, None)
    world.dynamic_pool = world.allocator.allocate(26)
    populate(world.dynamic_pool, 4, DAY)
    world.churn = churn
    return world


def make_campaign(world, perf=None):
    return ScanCampaign(
        world.network, world.churn,
        ScanTargetSpace([world.static_pool, world.dynamic_pool]),
        world.client_ip, "scan.dnsstudy.edu", perf=perf)


def run_checkpointed_campaign(directory, weeks=WEEKS, seed=5):
    """Run a fresh deterministic campaign, committing every week."""
    world = build_world(seed=seed)
    campaign = make_campaign(world)
    checkpoint = CheckpointedRun(str(directory),
                                 meta={"command": "campaign",
                                       "weeks": weeks, "seed": seed})
    campaign.run(weeks, checkpoint=checkpoint)
    checkpoint.write_provenance()
    checkpoint.close()
    return world, campaign


class FakeGeo:
    """Deterministic ip -> (country, rir, asn) without a full scenario."""

    COUNTRIES = ("US", "DE", "BR", "JP")
    RIRS = ("ARIN", "RIPE", "LACNIC", "APNIC")

    def locate(self, ip):
        value = ip_to_int(ip)
        index = value % len(self.COUNTRIES)
        return (self.COUNTRIES[index], self.RIRS[index],
                64500 + (value >> 8) % 16)

    # GeoIpDatabase surface for the batch analysis side of identity
    # comparisons — counts derived from the same mapping as locate().
    def count_by_country(self, ips):
        counts = {}
        for ip in ips:
            country = self.locate(ip)[0]
            counts[country] = counts.get(country, 0) + 1
        return counts

    def count_by_rir(self, ips):
        counts = {}
        for ip in ips:
            rir = self.locate(ip)[1]
            counts[rir] = counts.get(rir, 0) + 1
        return counts


@pytest.fixture(scope="module")
def campaign_checkpoint(tmp_path_factory):
    """(checkpoint_dir, world, campaign) for one finished campaign."""
    directory = tmp_path_factory.mktemp("observatory-ckpt")
    world, campaign = run_checkpointed_campaign(directory)
    return directory, world, campaign
