"""HTTP/JSON API: every route answers what the query plane answers."""

import json
import urllib.error
import urllib.request

import pytest

from repro.observatory import (
    Observatory,
    ObservatoryServer,
    ResolverStore,
    ingest_checkpoint,
)
from repro.perf import PerfRegistry

from tests.observatory.conftest import FakeGeo


@pytest.fixture(scope="module")
def served(campaign_checkpoint, tmp_path_factory):
    directory, __, campaign = campaign_checkpoint
    store = ResolverStore(
        str(tmp_path_factory.mktemp("observatory-http") / "store"))
    ingest_checkpoint(store, str(directory), geo=FakeGeo())
    observatory = Observatory(store, perf=PerfRegistry())
    server = ObservatoryServer(observatory, port=0).start()
    yield server, observatory, campaign
    server.stop()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as resp:
        return json.loads(resp.read())


class TestRoutes:
    def test_healthz(self, served):
        server, observatory, __ = served
        body = get(server, "/healthz")
        assert body["ok"] is True
        assert body["generation"] == observatory.store.generation

    def test_stats_carries_query_counters(self, served):
        server, observatory, __ = served
        body = get(server, "/stats")
        assert body["resolvers"] == len(observatory.store)
        assert body["weeks"] == 3
        assert body["queries_served"] >= 0

    def test_resolver_matches_direct_lookup(self, served):
        server, observatory, campaign = served
        ip = sorted(campaign.snapshots[0].result.responders)[0]
        assert get(server, "/resolver/" + ip) == observatory.lookup(ip)

    def test_unknown_resolver_is_404(self, served):
        server, __, __ = served
        with pytest.raises(urllib.error.HTTPError) as error:
            get(server, "/resolver/203.0.113.254")
        assert error.value.code == 404

    def test_rankings_match_query_plane(self, served):
        server, observatory, __ = served
        body = get(server, "/rankings/countries?top=3")
        rows, share = observatory.country_rankings(top=3)
        assert body == json.loads(json.dumps(
            {"rows": rows, "top_share": share}))
        rirs = get(server, "/rankings/rirs")
        assert rirs["rows"] == json.loads(
            json.dumps(observatory.rir_rankings()))

    def test_survival_matches_query_plane(self, served):
        server, observatory, __ = served
        body = get(server, "/survival")
        assert body["curve"] == [[week, pct] for week, pct
                                 in observatory.survival()]

    def test_timeline_route(self, served):
        server, __, campaign = served
        ip = sorted(campaign.snapshots[0].result.responders)[0]
        base = ip.rsplit(".", 1)[0] + ".0"
        body = get(server, "/timeline/%s/24" % base)
        assert body["prefix"] == "%s/24" % base
        assert [row["week"] for row in body["rows"]] == [0, 1, 2]

    def test_bad_prefix_is_400(self, served):
        server, __, __ = served
        with pytest.raises(urllib.error.HTTPError) as error:
            get(server, "/timeline/nonsense/24")
        assert error.value.code == 400

    def test_unknown_route_is_404(self, served):
        server, __, __ = served
        with pytest.raises(urllib.error.HTTPError) as error:
            get(server, "/no/such/thing")
        assert error.value.code == 404

    def test_queries_served_counter_moves(self, served):
        server, observatory, campaign = served
        ip = sorted(campaign.snapshots[0].result.responders)[0]
        before = observatory.perf.counter("observatory_queries_served")
        get(server, "/resolver/" + ip)
        assert observatory.perf.counter("observatory_queries_served") \
            == before + 1
