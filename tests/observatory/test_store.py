"""ResolverStore: columnar records, generation swaps, bounded residency."""

import os

import pytest

from repro.netsim.address import ip_to_int
from repro.observatory import ObservatoryError, ResolverStore, WeekColumns
from repro.scanner import ScanResult

FLAG_CARRIED = ScanResult.FLAG_CARRIED


def make_week(week, targets, noerror=None):
    from array import array
    columns = WeekColumns(week)
    columns.targets = array("I", sorted(targets))
    columns.noerror = array("I", sorted(noerror if noerror is not None
                                        else targets))
    columns.probes_sent = len(targets)
    columns.counts = {"noerror": len(columns.noerror),
                      "refused": 0, "servfail": 0, "other": 0}
    return columns


def populate(store):
    a, b, c = (ip_to_int(ip) for ip in
               ("10.0.0.1", "10.0.0.2", "192.168.7.9"))
    for week, alive in enumerate(([a, b, c], [a, c], [a])):
        for value in alive:
            store.observe(value, week, 0, 0)
        store.put_week(make_week(week, alive))
    store.observe(b, 1, 5, FLAG_CARRIED)     # late REFUSED sighting
    store.locate(a, "US", "ARIN", 64500)
    store.locate(c, "DE", "RIPE", 64501)
    store.set_software(a, "bind", "9.8.1")
    store.set_device(c, "router", "linux", "tp-link")
    store.add_verdict(c, "MALICIOUS", "phishing")
    store.add_verdict(c, "ADS", None)
    return a, b, c


class TestRecords:
    def test_point_lookup_round_trips_every_column(self):
        store = ResolverStore()
        a, b, c = populate(store)
        record = store.record("10.0.0.1")
        assert record["first_week"] == 0 and record["last_week"] == 2
        assert record["weeks_seen"] == [0, 1, 2]
        assert (record["country"], record["rir"]) == ("US", "ARIN")
        assert record["asn"] == 64500
        assert record["software"] == {"outcome": "bind",
                                      "version": "9.8.1"}
        assert record["verdict"] == "CLEAN"
        late = store.record(b)
        assert late["last_rcode"] == 5
        assert late["flags"] & FLAG_CARRIED
        flagged = store.record("192.168.7.9")
        assert flagged["verdict"] == "MANIPULATING"
        assert flagged["labels"] == ["ADS/", "MALICIOUS/phishing"]
        assert flagged["device"]["vendor"] == "tp-link"

    def test_unknown_resolver_is_none(self):
        store = ResolverStore()
        populate(store)
        assert store.record("1.2.3.4") is None

    def test_rows_where_filters_compose(self):
        store = ResolverStore()
        populate(store)
        assert store.rows_where(country="US") == ["10.0.0.1"]
        assert store.rows_where(rir="RIPE") == ["192.168.7.9"]
        assert store.rows_where(asn=64500) == ["10.0.0.1"]
        assert store.rows_where(verdict_label="MALICIOUS") \
            == ["192.168.7.9"]
        assert store.rows_where(country="US", asn=64501) == []

    def test_verdict_fold_order_never_changes_the_digest(self):
        one, two = ResolverStore(), ResolverStore()
        value = ip_to_int("10.0.0.1")
        for store, order in ((one, ("A", "B", "C")),
                             (two, ("C", "A", "B"))):
            store.observe(value, 0, 0, 0)
            store.put_week(make_week(0, [value]))
            for label in order:
                store.add_verdict(value, label, "x")
        assert one.digest() == two.digest()


class TestPersistence:
    def test_save_open_round_trip(self, tmp_path):
        store = ResolverStore(str(tmp_path / "store"))
        populate(store)
        generation = store.save()
        assert generation == 1
        reopened = ResolverStore.open(str(tmp_path / "store"))
        assert reopened.digest() == store.digest()
        assert reopened.record("192.168.7.9") \
            == store.record("192.168.7.9")
        assert reopened.weeks() == [0, 1, 2]
        assert [w for w in reopened.weeks()
                if list(reopened.week(w).targets)
                == list(store.week(w).targets)] == [0, 1, 2]

    def test_open_missing_store_is_a_clear_error(self, tmp_path):
        with pytest.raises(ObservatoryError):
            ResolverStore.open(str(tmp_path / "nothing"))

    def test_generation_swap_prunes_old_and_links_unchanged(self,
                                                            tmp_path):
        store = ResolverStore(str(tmp_path / "store"))
        populate(store)
        store.save()
        # Fold one new week; old week files are carried into gen-2.
        value = ip_to_int("10.9.9.9")
        store.observe(value, 3, 0, 0)
        store.put_week(make_week(3, [value]))
        assert store.save() == 2
        names = sorted(os.listdir(tmp_path / "store"))
        assert names == ["MANIFEST.json", "gen-00000002"]
        reopened = ResolverStore.open(str(tmp_path / "store"))
        assert reopened.weeks() == [0, 1, 2, 3]
        assert reopened.digest() == store.digest()

    def test_bookkeeping_never_taints_the_content_digest(self,
                                                         tmp_path):
        one = ResolverStore(str(tmp_path / "one"))
        two = ResolverStore(str(tmp_path / "two"))
        populate(one)
        populate(two)
        two.cursors["feed-cafecafe"] = 17
        two.ingested["campaign/week/0"] = "deadbeef"
        assert one.digest() == two.digest()


class TestResidency:
    def test_week_cache_bounds_resident_weeks(self, tmp_path):
        store = ResolverStore(str(tmp_path / "store"), week_cache=2)
        values = [ip_to_int("10.0.0.%d" % octet)
                  for octet in range(1, 6)]
        for week, value in enumerate(values):
            store.observe(value, week, 0, 0)
            store.put_week(make_week(week, [value]))
        # All dirty: nothing evictable yet.
        assert store.resident_weeks() == [0, 1, 2, 3, 4]
        store.save()
        assert len(store.resident_weeks()) <= 2
        # Evicted weeks lazy-load from the generation on demand.
        assert list(store.week(0).targets) == [values[0]]
        assert len(store.resident_weeks()) <= 2

    def test_week_cache_must_be_positive(self):
        with pytest.raises(ValueError):
            ResolverStore(week_cache=0)
