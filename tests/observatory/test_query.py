"""Query plane: batch-vs-ingested answer identity, lookups, timelines."""

import pytest

from repro.analysis.churn import churn_survival, format_survival
from repro.analysis.geography import (
    country_fluctuation,
    format_fluctuation,
    rir_fluctuation,
)
from repro.observatory import Observatory, ResolverStore, ingest_checkpoint
from repro.perf import PerfRegistry

from tests.observatory.conftest import FakeGeo


@pytest.fixture(scope="module")
def observatory(campaign_checkpoint, tmp_path_factory):
    directory, __, campaign = campaign_checkpoint
    store = ResolverStore(
        str(tmp_path_factory.mktemp("observatory-store") / "store"))
    ingest_checkpoint(store, str(directory), geo=FakeGeo())
    return Observatory(store, perf=PerfRegistry()), campaign


class TestAnswerIdentity:
    """The acceptance bar: rankings and survival from the store are
    byte-identical to the batch analysis over the live snapshots."""

    def test_table1_country_rankings(self, observatory):
        observatory, campaign = observatory
        geo = FakeGeo()
        batch_rows, batch_share = country_fluctuation(
            campaign.snapshots[0].result, campaign.snapshots[-1].result,
            geo)
        rows, share = observatory.country_rankings()
        assert format_fluctuation(rows, "Country") \
            == format_fluctuation(batch_rows, "Country")
        assert share == batch_share

    def test_table2_rir_rankings(self, observatory):
        observatory, campaign = observatory
        batch_rows = rir_fluctuation(campaign.snapshots[0].result,
                                     campaign.snapshots[-1].result,
                                     FakeGeo())
        assert format_fluctuation(observatory.rir_rankings(), "RIR") \
            == format_fluctuation(batch_rows, "RIR")

    def test_figure2_survival_curve(self, observatory):
        observatory, campaign = observatory
        assert format_survival(observatory.survival()) \
            == format_survival(churn_survival(campaign.snapshots))


class TestPointQueries:
    def test_lookup_counts_queries_and_latency(self, observatory):
        observatory, campaign = observatory
        perf = observatory.perf
        before = perf.counter("observatory_queries_served")
        ips = sorted(campaign.snapshots[0].result.responders)[:5]
        records = observatory.lookup_many(ips)
        assert [record["ip"] for record in records] == ips
        assert observatory.lookup(ips[0])["ip"] == ips[0]
        assert perf.counter("observatory_queries_served") \
            == before + len(ips) + 1
        assert perf.histograms["observatory_lookup_seconds"].count > 0

    def test_lookup_unknown_is_none(self, observatory):
        observatory, __ = observatory
        assert observatory.lookup("203.0.113.254") is None

    def test_resolvers_in_uses_the_geo_index(self, observatory):
        observatory, campaign = observatory
        geo = FakeGeo()
        want = sorted(
            (ip for ip in {ip for snapshot in campaign.snapshots
                           for ip in snapshot.result.responders}
             if geo.locate(ip)[0] == "US"),
            key=lambda ip: tuple(int(p) for p in ip.split(".")))
        assert observatory.resolvers_in(country="US") == want


class TestTimeline:
    def test_prefix_timeline_tracks_arrivals_and_departures(
            self, observatory):
        observatory, campaign = observatory
        prefix = campaign.snapshots[0].result.responders
        network = sorted(prefix)[0].rsplit(".", 1)[0] + ".0/24"
        rows = observatory.timeline(network)
        assert [row["week"] for row in rows] == [0, 1, 2]
        assert rows[0]["new"] == rows[0]["responders"]
        assert rows[0]["gone"] == 0
        for earlier, later in zip(rows, rows[1:]):
            assert later["responders"] == (earlier["responders"]
                                           + later["new"]
                                           - later["gone"])

    def test_bad_prefix_is_a_value_error(self, observatory):
        observatory, __ = observatory
        with pytest.raises(ValueError):
            observatory.timeline("not-a-prefix/99")


class TestStats:
    def test_stats_reflect_the_store(self, observatory):
        observatory, __ = observatory
        stats = observatory.stats()
        assert stats["weeks"] == 3
        assert stats["first_week"] == 0 and stats["last_week"] == 2
        assert stats["resolvers"] == len(observatory.store)
        assert stats["generation"] == observatory.store.generation
        assert stats["disk_bytes"] > 0

    def test_rankings_on_an_empty_store_fail_clearly(self):
        empty = Observatory(ResolverStore())
        with pytest.raises(LookupError):
            empty.country_rankings()
