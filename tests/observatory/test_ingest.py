"""Ingest: incremental, idempotent, crash-resume indistinguishable."""

import pytest

from repro.checkpoint import CheckpointedRun
from repro.faults import FaultPlan, FaultProfile, InjectedCrash
from repro.observatory import ResolverStore, ingest_checkpoint
from repro.obs import Tracer
from repro.perf import PerfRegistry

from tests.observatory.conftest import (
    WEEKS,
    FakeGeo,
    build_world,
    make_campaign,
    run_checkpointed_campaign,
)


def ingest_fresh(directory, tmp_path, name="store", **kwargs):
    store = ResolverStore(str(tmp_path / name))
    report = ingest_checkpoint(store, str(directory), **kwargs)
    return store, report


class TestFolding:
    def test_every_week_folds_once(self, campaign_checkpoint, tmp_path):
        directory, __, campaign = campaign_checkpoint
        store, report = ingest_fresh(directory, tmp_path)
        assert report.weeks_folded == list(range(WEEKS))
        assert report.units_folded == WEEKS
        assert store.weeks() == list(range(WEEKS))
        for snapshot in campaign.snapshots:
            week = store.week(snapshot.week)
            assert {ip for ip in snapshot.result.responders} == {
                "%d.%d.%d.%d" % (v >> 24, (v >> 16) & 255,
                                 (v >> 8) & 255, v & 255)
                for v in week.targets}
            assert week.probes_sent == snapshot.result.probes_sent

    def test_geo_enrichment_labels_every_responder(
            self, campaign_checkpoint, tmp_path):
        directory, __, campaign = campaign_checkpoint
        store, __ = ingest_fresh(directory, tmp_path, geo=FakeGeo())
        geo = FakeGeo()
        for ip in campaign.snapshots[0].result.responders:
            record = store.record(ip)
            country, rir, asn = geo.locate(ip)
            assert (record["country"], record["rir"],
                    record["asn"]) == (country, rir, asn)

    def test_perf_and_tracer_instrumented(self, campaign_checkpoint,
                                          tmp_path):
        directory, __, __ = campaign_checkpoint
        perf, tracer = PerfRegistry(), Tracer(seed=1)
        __, report = ingest_fresh(directory, tmp_path, perf=perf,
                                  tracer=tracer)
        assert perf.counter("observatory_units_folded") \
            == report.units_folded
        assert perf.gauge_value("observatory_ingest_lag_records") >= 0
        assert perf.seconds("observatory_ingest") > 0
        spans = [span for span in tracer.spans
                 if span["stage"] == "observatory_ingest"]
        assert len(spans) == 1 and spans[0]["status"] == "ok"


class TestIdempotence:
    def test_reingesting_the_same_journal_is_a_noop(
            self, campaign_checkpoint, tmp_path):
        directory, __, __ = campaign_checkpoint
        store, first = ingest_fresh(directory, tmp_path)
        digest = store.digest()
        generation = store.generation
        again = ingest_checkpoint(store, str(directory))
        assert not again.changed()
        assert again.units_seen == 0          # cursor skipped the span
        assert store.digest() == digest
        assert store.generation == generation  # no new generation

    def test_replayed_span_is_recognized_by_the_ledger(
            self, campaign_checkpoint, tmp_path):
        # Losing the cursor (as a journal replayed from scratch would)
        # must not double-fold: the per-unit digest ledger catches it.
        directory, __, __ = campaign_checkpoint
        store, __ = ingest_fresh(directory, tmp_path)
        digest = store.digest()
        store.cursors.clear()
        again = ingest_checkpoint(store, str(directory))
        assert again.units_skipped == WEEKS
        assert again.units_folded == 0
        assert store.digest() == digest

    def test_reopened_store_still_knows_what_it_ingested(
            self, campaign_checkpoint, tmp_path):
        directory, __, __ = campaign_checkpoint
        store, __ = ingest_fresh(directory, tmp_path)
        reopened = ResolverStore.open(str(tmp_path / "store"))
        again = ingest_checkpoint(reopened, str(directory))
        assert not again.changed()
        assert reopened.digest() == store.digest()


class TestCrashResumeEquality:
    def test_store_from_resumed_campaign_equals_uninterrupted(
            self, tmp_path):
        # Uninterrupted run.
        clean_dir = tmp_path / "clean-ckpt"
        run_checkpointed_campaign(clean_dir)
        clean_store, __ = ingest_fresh(clean_dir, tmp_path, "clean",
                                       geo=FakeGeo())
        # Crashed-at-week-1, resumed-to-completion run: same world
        # builder, fresh incarnation per restart.
        crash_dir = str(tmp_path / "crash-ckpt")
        plan = FaultPlan(FaultProfile(crash_points=("week:1",)), seed=3)
        world = build_world()
        campaign = make_campaign(world)
        checkpoint = CheckpointedRun(crash_dir, meta={"weeks": WEEKS},
                                     fault_plan=plan)
        with pytest.raises(InjectedCrash):
            campaign.run(WEEKS, checkpoint=checkpoint)
        checkpoint.close()
        world = build_world()
        campaign = make_campaign(world)
        checkpoint = CheckpointedRun(crash_dir, meta={"weeks": WEEKS},
                                     resume=True)
        campaign.run(WEEKS, checkpoint=checkpoint)
        checkpoint.close()
        resumed_store, __ = ingest_fresh(crash_dir, tmp_path, "resumed",
                                         geo=FakeGeo())
        assert resumed_store.digest() == clean_store.digest()
        assert resumed_store.weeks() == clean_store.weeks()

    def test_ingest_of_partial_run_then_rest_matches_one_shot(
            self, tmp_path):
        # Tail a crashed (incomplete) run, then re-tail after resume:
        # the two-pass store equals a single ingest of the whole run.
        crash_dir = str(tmp_path / "ckpt")
        plan = FaultPlan(FaultProfile(crash_points=("week:1",)), seed=3)
        world = build_world()
        campaign = make_campaign(world)
        checkpoint = CheckpointedRun(crash_dir, meta={"weeks": WEEKS},
                                     fault_plan=plan)
        with pytest.raises(InjectedCrash):
            campaign.run(WEEKS, checkpoint=checkpoint)
        checkpoint.close()
        tailing = ResolverStore(str(tmp_path / "tailing"))
        early = ingest_checkpoint(tailing, crash_dir, geo=FakeGeo())
        assert early.changed()                # week 0 landed pre-crash
        world = build_world()
        campaign = make_campaign(world)
        checkpoint = CheckpointedRun(crash_dir, meta={"weeks": WEEKS},
                                     resume=True)
        campaign.run(WEEKS, checkpoint=checkpoint)
        checkpoint.close()
        ingest_checkpoint(tailing, crash_dir, geo=FakeGeo())
        oneshot, __ = ingest_fresh(crash_dir, tmp_path, "oneshot",
                                   geo=FakeGeo())
        assert tailing.digest() == oneshot.digest()


# -- label units (fingerprint / pipeline), hand-committed -----------------

class FakeChaosObservation:
    def __init__(self, ip, outcome, version):
        self.resolver_ip = ip
        self.outcome = outcome
        self.version_string = version


class FakeCapture:
    def __init__(self, ip):
        self.resolver_ip = ip


class FakeLabeled:
    def __init__(self, ip, label, sublabel):
        self.capture = FakeCapture(ip)
        self.label = label
        self.sublabel = sublabel


class TestLabelUnits:
    def commit_labels(self, directory):
        checkpoint = CheckpointedRun(str(directory),
                                     meta={"command": "fullstudy"})
        checkpoint.commit(
            ("campaign", "study", "fingerprint"),
            {"software": [FakeChaosObservation("10.0.0.1", "bind",
                                               "9.8.1")],
             "classifications": {"10.0.0.2": ("router", "linux",
                                              "netgear")}})
        checkpoint.commit(
            ("pipeline", "Banking", "stage", "labeling"),
            {"labeled": [FakeLabeled("10.0.0.1", "MALICIOUS",
                                     "phishing")],
             "diff_clusters": [], "degraded": []})
        checkpoint.close()

    def test_fingerprints_and_verdicts_fold(self, tmp_path):
        self.commit_labels(tmp_path / "ckpt")
        store = ResolverStore()
        report = ingest_checkpoint(store, str(tmp_path / "ckpt"),
                                   save=False)
        assert report.fingerprints == 2 and report.verdicts == 1
        one = store.record("10.0.0.1")
        assert one["software"] == {"outcome": "bind",
                                  "version": "9.8.1"}
        assert one["verdict"] == "MANIPULATING"
        assert one["labels"] == ["MALICIOUS/phishing"]
        two = store.record("10.0.0.2")
        assert two["device"] == {"hardware": "router", "os": "linux",
                                 "vendor": "netgear"}
        assert two["verdict"] == "CLEAN"

    def test_label_units_are_idempotent_too(self, tmp_path):
        self.commit_labels(tmp_path / "ckpt")
        store = ResolverStore()
        ingest_checkpoint(store, str(tmp_path / "ckpt"), save=False)
        digest = store.digest()
        store.cursors.clear()
        again = ingest_checkpoint(store, str(tmp_path / "ckpt"),
                                  save=False)
        assert again.units_folded == 0 and again.units_skipped == 2
        assert store.digest() == digest
