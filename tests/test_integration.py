"""Integration tests: the paper's experiments at miniature scale.

Uses the session-scoped small scenario (scale 1:40000); these check that
the qualitative shapes the benchmarks reproduce at larger scale emerge
end-to-end, not exact percentages.
"""

import pytest

from repro.analysis import (
    churn_survival,
    classification_table,
    magnitude_series,
    social_geography,
    software_table,
    utilization_summary,
)
from repro.analysis.devices import device_table
from repro.datasets import DOMAIN_SETS, SNOOPING_TLDS
from repro.scanner import (
    BannerGrabber,
    CacheSnoopingProber,
    ChaosScanner,
    FingerprintMatcher,
)


@pytest.fixture(scope="module")
def campaign_run(small_scenario):
    campaign = small_scenario.new_campaign(verify=False)
    campaign.run(8)
    return campaign


class TestWeeklyScans:
    def test_magnitude_series_monotone_overall(self, campaign_run):
        series = magnitude_series(campaign_run.snapshots)
        assert len(series) == 8
        assert series[0]["noerror"] > 0
        # The population declines over the campaign (Fig. 1 shape).
        assert series[-1]["noerror"] <= series[0]["noerror"]

    def test_rcode_breakdown_present(self, campaign_run):
        counts = campaign_run.first().result.counts()
        assert counts["refused"] > 0
        assert counts["servfail"] > 0
        assert counts["noerror"] > counts["refused"]

    def test_churn_curve_decreasing(self, campaign_run):
        curve = churn_survival(campaign_run.snapshots)
        assert curve[0][1] == 100.0
        # Week-1 churn is severe (paper: 52.2% gone).
        assert curve[1][1] < 85.0
        assert curve[-1][1] <= curve[1][1]

    def test_divergent_sources_observed(self, campaign_run):
        # Multi-homed hosts / proxies answering from other addresses.
        assert campaign_run.first().result.divergent_sources


class TestFingerprinting:
    def test_chaos_outcome_mix(self, small_scenario, campaign_run):
        resolvers = sorted(campaign_run.last().result.noerror)
        scanner = ChaosScanner(small_scenario.network,
                               small_scenario.scanner_ip)
        table = software_table(scanner.scan(resolvers))
        # Two thirds leak nothing; BIND dominates the leakers.
        assert table["version_share_pct"] < 55
        if table["rows"]:
            assert table["rows"][0]["software"].startswith("BIND")

    def test_device_mix(self, small_scenario, campaign_run):
        resolvers = sorted(campaign_run.last().result.noerror)
        grabber = BannerGrabber(small_scenario.network,
                                small_scenario.scanner_ip)
        banners = grabber.grab_all(resolvers)
        table = device_table(FingerprintMatcher().classify_all(banners),
                             total_scanned=len(resolvers))
        # Roughly a quarter of resolvers expose TCP services.
        assert 10 < table["tcp_responding_share_pct"] < 45
        hardware = {row["name"]: row["share_pct"]
                    for row in table["hardware"]}
        assert hardware.get("Router", 0) > hardware.get("Camera", 0)


class TestUtilization:
    def test_snooping_classes(self, small_scenario, campaign_run):
        resolvers = sorted(campaign_run.last().result.noerror)[:120]
        prober = CacheSnoopingProber(
            small_scenario.network, small_scenario.scanner_ip,
            SNOOPING_TLDS, duration_hours=36)
        summary = utilization_summary(prober.run(resolvers))
        assert summary["responding_share_pct"] > 60
        assert summary["in_use_share_pct"] > 30


class TestManipulationPipeline:
    @pytest.fixture(scope="class")
    def adult_report(self, small_scenario, campaign_run):
        resolvers = sorted(campaign_run.last().result.noerror)
        pipeline = small_scenario.new_pipeline()
        return pipeline.run(resolvers, list(DOMAIN_SETS["Adult"]))

    def test_prefilter_majority_legitimate(self, adult_report):
        stats = adult_report.prefilter.stats()
        assert stats["legitimate_share"] > 0.6
        assert stats["unknown_share"] < 0.35

    def test_censorship_dominates_adult_suspicious(self, adult_report):
        table = classification_table({"Adult": adult_report})
        rows = table["Adult"]
        assert rows["Censorship"]["avg_pct"] > rows["Search"]["avg_pct"]
        assert rows["Censorship"]["avg_pct"] > 20

    def test_nearly_everything_classified(self, adult_report):
        assert adult_report.classified_share() > 0.9

    def test_social_censorship_geography(self, small_scenario,
                                         campaign_run):
        resolvers = sorted(campaign_run.last().result.noerror)
        pipeline = small_scenario.new_pipeline()
        report = pipeline.run(resolvers, [
            d for d in DOMAIN_SETS["Alexa"]
            if d.name in ("facebook.com", "twitter.com", "youtube.com")])
        fig4 = social_geography(
            report, small_scenario.geoip,
            ["facebook.com", "twitter.com", "youtube.com"])
        unexpected = fig4.unexpected_shares()
        assert unexpected, "no unexpected responses at all"
        # China leads the unexpected-response distribution (Fig. 4b).
        assert unexpected[0][0] == "CN"
        assert unexpected[0][1] > 30
