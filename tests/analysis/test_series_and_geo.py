"""Tests for magnitude, geography, fluctuation, and churn analyses."""

import pytest

from repro.analysis.churn import (
    churn_survival,
    day_one_leavers,
    dynamic_rdns_share,
)
from repro.analysis.fluctuation import (
    EXPLANATION_BLOCKED,
    EXPLANATION_FILTERED,
    EXPLANATION_SHUTDOWN,
    as_fluctuation,
    broadband_share_of_top_networks,
    classify_dark_networks,
    dark_networks,
)
from repro.analysis.geography import (
    country_fluctuation,
    extreme_changes,
    format_fluctuation,
    rir_fluctuation,
)
from repro.analysis.magnitude import (
    decline_ratio,
    format_series,
    magnitude_series,
)
from repro.inetmodel import (
    AsRegistry,
    AutonomousSystem,
    GeoIpDatabase,
    PrefixAllocator,
    RdnsRegistry,
)
from repro.scanner.campaign import WeeklySnapshot
from repro.scanner.ipv4scan import ScanResult


def make_result(timestamp, ips_by_rcode):
    result = ScanResult(timestamp)
    for rcode, ips in ips_by_rcode.items():
        for ip in ips:
            result.record(ip, rcode, ip)
    return result


def make_world():
    allocator = PrefixAllocator()
    registry = AsRegistry()
    prefixes = {}
    plans = [(64500, "US", "broadband"), (64501, "TR", "broadband"),
             (64502, "CN", "hosting")]
    for asn, country, kind in plans:
        prefix = allocator.allocate(22)
        registry.add(AutonomousSystem(asn, "AS-%s" % country, country,
                                      kind, [prefix]))
        prefixes[country] = prefix
    return registry, GeoIpDatabase(registry), prefixes


class TestMagnitude:
    def test_series_and_decline(self):
        snapshots = [
            WeeklySnapshot(0, make_result(0, {0: ["1.0.0.%d" % i
                                                  for i in range(10)]})),
            WeeklySnapshot(1, make_result(1, {0: ["1.0.0.%d" % i
                                                  for i in range(6)]})),
        ]
        series = magnitude_series(snapshots)
        assert series[0]["noerror"] == 10
        assert series[1]["noerror"] == 6
        assert decline_ratio(series) == pytest.approx(0.6)
        assert "week" in format_series(series)

    def test_decline_ratio_empty(self):
        assert decline_ratio([]) == 0.0


class TestGeography:
    def test_country_fluctuation(self):
        __, geoip, prefixes = make_world()
        first = make_result(0, {0: [prefixes["US"].address_at(i)
                                    for i in range(10)]
                                + [prefixes["TR"].address_at(i)
                                   for i in range(6)]})
        last = make_result(1, {0: [prefixes["US"].address_at(i)
                                   for i in range(8)]
                               + [prefixes["TR"].address_at(i)
                                  for i in range(2)]})
        rows, top_share = country_fluctuation(first, last, geoip, top=2)
        assert rows[0]["country"] == "US"
        assert rows[0]["delta_pct"] == pytest.approx(-20.0)
        assert rows[1]["country"] == "TR"
        assert rows[1]["delta_pct"] == pytest.approx(-66.7, abs=0.1)
        assert top_share == pytest.approx(100.0)
        assert "US" in format_fluctuation(rows, "Country")

    def test_extreme_changes_sorted(self):
        __, geoip, prefixes = make_world()
        first = make_result(0, {0: [prefixes["US"].address_at(i)
                                    for i in range(20)]
                                + [prefixes["TR"].address_at(i)
                                   for i in range(20)]})
        last = make_result(1, {0: [prefixes["US"].address_at(i)
                                   for i in range(20)]
                               + [prefixes["TR"].address_at(i)
                                  for i in range(1)]})
        changes = extreme_changes(first, last, geoip, min_first=10)
        assert changes[0][0] == "TR"  # strongest decline first

    def test_rir_fluctuation(self):
        __, geoip, prefixes = make_world()
        first = make_result(0, {0: [prefixes["US"].address_at(1),
                                    prefixes["CN"].address_at(1),
                                    prefixes["CN"].address_at(2)]})
        last = make_result(1, {0: [prefixes["CN"].address_at(1)]})
        rows = rir_fluctuation(first, last, geoip)
        assert rows[0]["rir"] == "APNIC"
        assert rows[0]["first"] == 2


class TestAsFluctuation:
    def test_largest_drop_first(self):
        registry, __, prefixes = make_world()
        first = make_result(0, {0: [prefixes["US"].address_at(i)
                                    for i in range(10)]
                                + [prefixes["TR"].address_at(i)
                                   for i in range(10)]})
        last = make_result(1, {0: [prefixes["US"].address_at(i)
                                   for i in range(9)]})
        rows = as_fluctuation(first, last, registry)
        assert rows[0]["country"] == "TR"
        assert rows[0]["delta"] == -10

    def test_dark_network_classification(self):
        registry, __, prefixes = make_world()
        first = make_result(0, {0: [prefixes["US"].address_at(i)
                                    for i in range(150)]
                                + [prefixes["TR"].address_at(i)
                                   for i in range(120)]
                                + [prefixes["CN"].address_at(i)
                                   for i in range(30)]})
        last = make_result(1, {0: []})
        dark = dark_networks(first, last, registry)
        assert len(dark) == 3
        # Verification scan still reaches the US network: blocked.
        verification = make_result(1, {0: [prefixes["US"].address_at(0)]})
        classified = classify_dark_networks(dark, verification, registry)
        by_country = {row["country"]: row["explanation"]
                      for row in classified}
        assert by_country["US"] == EXPLANATION_BLOCKED
        assert by_country["TR"] == EXPLANATION_FILTERED  # >= 100 resolvers
        assert by_country["CN"] == EXPLANATION_SHUTDOWN  # < 100 resolvers

    def test_broadband_share(self):
        registry, __, prefixes = make_world()
        result = make_result(0, {0: [prefixes["US"].address_at(i)
                                     for i in range(10)]
                                 + [prefixes["CN"].address_at(i)
                                    for i in range(5)]})
        share, rows = broadband_share_of_top_networks(result, registry)
        assert share == pytest.approx(100 * 10 / 15)
        assert rows[0]["kind"] == "broadband"


class TestChurnAnalysis:
    def test_survival_curve(self):
        cohort_ips = ["1.0.0.%d" % i for i in range(10)]
        snapshots = [
            WeeklySnapshot(0, make_result(0, {0: cohort_ips})),
            WeeklySnapshot(1, make_result(1, {0: cohort_ips[:5]
                                              + ["9.9.9.9"]})),
            WeeklySnapshot(2, make_result(2, {0: cohort_ips[:2]})),
        ]
        curve = churn_survival(snapshots)
        assert curve == [(0, 100.0), (1, 50.0), (2, 20.0)]

    def test_day_one_leavers(self):
        first = make_result(0, {0: ["1.0.0.1", "1.0.0.2", "1.0.0.3"]})
        day1 = make_result(1, {0: ["1.0.0.2"]})
        assert day_one_leavers(first, day1) == {"1.0.0.1", "1.0.0.3"}

    def test_dynamic_rdns_share(self):
        rdns = RdnsRegistry()
        rdns.set_ptr("1.0.0.1", "host-1.dynamic.isp.example")
        rdns.set_ptr("1.0.0.2", "static-2.isp.example")
        # 1.0.0.3 has no PTR at all.
        stats = dynamic_rdns_share({"1.0.0.1", "1.0.0.2", "1.0.0.3"},
                                   rdns)
        assert stats["leavers"] == 3
        assert stats["with_rdns"] == 2
        assert stats["dynamic"] == 1
        assert stats["dynamic_share_pct"] == pytest.approx(50.0)
