"""Tests for the §4.2 unfetchable-tuple breakdown and the behavior
producing same-network answers."""

import pytest

from repro.analysis.manipulation import unfetchable_breakdown
from repro.core.acquisition import HttpCapture
from repro.core.pipeline import PipelineReport
from repro.inetmodel import AsRegistry, AutonomousSystem, PrefixAllocator
from repro.resolvers.behaviors import SameNetworkBehavior


class FakeResolver:
    def __init__(self, ip):
        self.ip = ip


class TestSameNetworkBehavior:
    def test_answer_in_own_slash24(self):
        behavior = SameNetworkBehavior(offset=200)
        answer = behavior.answer(FakeResolver("77.1.2.3"), "x.com", None)
        assert answer.addresses == ["77.1.2.200"]

    def test_applies_to_every_domain(self):
        behavior = SameNetworkBehavior()
        for domain in ("a.com", "b.net"):
            assert behavior.answer(FakeResolver("10.9.8.7"), domain,
                                   None) is not None


class TestUnfetchableBreakdown:
    def make_report(self):
        report = PipelineReport()
        report.failed_captures = [
            HttpCapture("a.com", "192.168.1.1", "77.1.2.3",
                        failure="lan"),
            HttpCapture("a.com", "10.0.0.1", "77.1.2.3", failure="lan"),
            HttpCapture("b.com", "77.1.2.200", "77.1.2.3",
                        failure="unreachable"),     # same /24
            HttpCapture("c.com", "200.9.9.9", "77.1.2.3",
                        failure="unreachable"),     # unrelated
        ]
        return report

    def test_shares_without_registry(self):
        stats = unfetchable_breakdown(self.make_report())
        assert stats["unfetchable"] == 4
        assert stats["lan_share_pct"] == pytest.approx(50.0)
        assert stats["same_network_share_pct"] == pytest.approx(25.0)
        assert stats["other_share_pct"] == pytest.approx(25.0)

    def test_same_as_detected_with_registry(self):
        allocator = PrefixAllocator(start="77.0.0.0")
        prefix = allocator.allocate(16)
        registry = AsRegistry()
        registry.add(AutonomousSystem(64500, "ISP", "US",
                                      prefixes=[prefix]))
        report = PipelineReport()
        report.failed_captures = [
            # Different /24 but same AS as the resolver.
            HttpCapture("a.com", "77.0.99.5", "77.0.1.3",
                        failure="unreachable"),
        ]
        stats = unfetchable_breakdown(report, registry)
        assert stats["same_network_share_pct"] == pytest.approx(100.0)

    def test_empty_report(self):
        stats = unfetchable_breakdown(PipelineReport())
        assert stats["unfetchable"] == 0
        assert stats["lan_share_pct"] == 0.0
