"""Tests for the §2.6 utilization classification."""

import pytest

from repro.analysis.utilization import (
    CLASS_DECREASING,
    CLASS_EMPTY,
    CLASS_IDLE,
    CLASS_IN_USE,
    CLASS_RESETTING,
    CLASS_SINGLE,
    CLASS_STATIC_TTL,
    CLASS_UNRESPONSIVE,
    CLASS_ZERO_TTL,
    classify_trace,
    utilization_summary,
)
from repro.scanner.snooping import SnoopingTrace

HOUR = 3600
T = 172800  # the snooped TLDs' NS TTL


def trace_from(series_by_tld):
    trace = SnoopingTrace("1.2.3.4")
    for tld, series in series_by_tld.items():
        for timestamp, value in series:
            trace.record(tld, timestamp, value)
    return trace


def decaying(start_ttl, hours, t0=0):
    return [(t0 + h * HOUR, start_ttl - h * HOUR) for h in range(hours)]


class TestClassification:
    def test_unresponsive(self):
        trace = trace_from({"com": [(0, None), (HOUR, None)]})
        assert classify_trace(trace)[0] == CLASS_UNRESPONSIVE

    def test_empty(self):
        trace = trace_from({"com": [(0, "empty"), (HOUR, "empty")]})
        assert classify_trace(trace)[0] == CLASS_EMPTY

    def test_single(self):
        trace = trace_from({
            "com": [(0, T), (HOUR, None), (2 * HOUR, None)],
            "de": [(0, T), (HOUR, None)],
        })
        assert classify_trace(trace)[0] == CLASS_SINGLE

    def test_static_ttl(self):
        trace = trace_from({"com": [(h * HOUR, 7200) for h in range(5)]})
        assert classify_trace(trace)[0] == CLASS_STATIC_TTL

    def test_zero_ttl(self):
        trace = trace_from({"com": [(h * HOUR, 0) for h in range(5)]})
        assert classify_trace(trace)[0] == CLASS_ZERO_TTL

    def test_idle_decay_only(self):
        trace = trace_from({"com": decaying(T, 10)})
        assert classify_trace(trace)[0] == CLASS_DECREASING

    def test_in_use_needs_three_tlds(self):
        # A refresh: TTL expires between probes and comes back at ~full.
        def refreshed_series():
            return [(0, HOUR // 2),             # about to expire
                    (HOUR, T - HOUR // 4)]      # re-added after expiry
        two = trace_from({"com": refreshed_series(),
                          "de": refreshed_series(),
                          "fr": decaying(T, 2)})
        assert classify_trace(two)[0] != CLASS_IN_USE
        three = trace_from({"com": refreshed_series(),
                            "de": refreshed_series(),
                            "net": refreshed_series()})
        cls, detail = classify_trace(three)
        assert cls == CLASS_IN_USE
        assert detail["refreshed_tlds"] == 3

    def test_frequent_detection(self):
        # Expiry at t=1800; re-add 2s later; observed at t=3600 the TTL
        # is T - (3600 - 1802) = T - 1798.
        series = [(0, 1800), (HOUR, T - 1798)]
        trace = trace_from({"com": series, "de": series, "net": series})
        cls, detail = classify_trace(trace)
        assert cls == CLASS_IN_USE
        assert detail["frequent"]

    def test_slow_refresh_not_frequent(self):
        # Re-added 30 minutes after expiry.
        series = [(0, 1800), (HOUR, T - 1)]
        trace = trace_from({"com": series, "de": series, "net": series})
        cls, detail = classify_trace(trace)
        assert cls == CLASS_IN_USE
        assert not detail["frequent"]

    def test_resetting(self):
        # TTL jumps back up while far from expiry.
        series = [(0, T - 100), (HOUR, T - 50), (2 * HOUR, T - 80)]
        trace = trace_from({"com": series})
        assert classify_trace(trace)[0] == CLASS_RESETTING

    def test_idle_single_observation_per_run(self):
        trace = trace_from({"com": [(0, 500), (HOUR, None)],
                            "de": [(0, None), (HOUR, None)],
                            "fr": [(0, 400), (HOUR, None),
                                   (2 * HOUR, None)]})
        # Two TLDs answered once each then fell silent -> single.
        assert classify_trace(trace)[0] == CLASS_SINGLE


class TestSummary:
    def test_aggregation(self):
        traces = [
            trace_from({"com": [(0, None)]}),                # unresponsive
            trace_from({"com": [(0, "empty")]}),             # empty
            trace_from({"com": [(h * HOUR, 500) for h in range(3)]}),
        ]
        summary = utilization_summary(traces)
        assert summary["total"] == 3
        assert summary["responding"] == 2
        assert summary["responding_share_pct"] == pytest.approx(
            100 * 2 / 3)
        assert summary["class_shares_pct"][CLASS_EMPTY] == pytest.approx(
            50.0)
