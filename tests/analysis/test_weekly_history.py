"""Tests for the weekly per-AS history helper."""

from repro.analysis.fluctuation import weekly_as_history
from repro.inetmodel import AsRegistry, AutonomousSystem, PrefixAllocator
from repro.scanner.campaign import WeeklySnapshot
from repro.scanner.ipv4scan import ScanResult


def make_world():
    allocator = PrefixAllocator()
    registry = AsRegistry()
    prefixes = {}
    for asn in (64500, 64501):
        prefix = allocator.allocate(24)
        registry.add(AutonomousSystem(asn, "AS%d" % asn, "US",
                                      prefixes=[prefix]))
        prefixes[asn] = prefix
    return registry, prefixes


def snapshot(week, ips):
    result = ScanResult(week)
    for ip in ips:
        result.record(ip, 0, ip)
    return WeeklySnapshot(week, result)


def test_history_counts_per_week():
    registry, prefixes = make_world()
    snapshots = [
        snapshot(0, [prefixes[64500].address_at(i) for i in range(3)]
                 + [prefixes[64501].address_at(1)]),
        snapshot(1, [prefixes[64500].address_at(0)]),
        snapshot(2, []),
    ]
    history = weekly_as_history(snapshots, registry)
    assert history[64500] == [3, 1, 0]
    assert history[64501] == [1, 0, 0]


def test_history_restricted_to_asns():
    registry, prefixes = make_world()
    snapshots = [snapshot(0, [prefixes[64500].address_at(0),
                              prefixes[64501].address_at(0)])]
    history = weekly_as_history(snapshots, registry, asns=[64501])
    assert set(history) == {64501}
    assert history[64501] == [1]


def test_late_appearing_as_backfilled_with_zeros():
    registry, prefixes = make_world()
    snapshots = [
        snapshot(0, [prefixes[64500].address_at(0)]),
        snapshot(1, [prefixes[64501].address_at(0)]),
    ]
    history = weekly_as_history(snapshots, registry)
    assert history[64501] == [0, 1]
    assert history[64500] == [1, 0]
