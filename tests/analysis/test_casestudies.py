"""Tests for the §4.3 case-study extraction."""

import pytest

from repro.analysis.casestudies import case_study_summary, \
    format_case_studies
from repro.core.acquisition import HttpCapture, MailCapture
from repro.core.labeling import (
    LABEL_LOGIN,
    LABEL_MISC,
    LabeledCapture,
    SUBLABEL_AD_INJECTION,
    SUBLABEL_MALWARE,
    SUBLABEL_PHISHING,
    SUBLABEL_PROXY,
)
from repro.core.pipeline import PipelineReport
from repro.websim import pages


def labeled(domain, ip, resolver, label, sublabel=None, body="x"):
    capture = HttpCapture(domain, ip, resolver, status=200, body=body)
    return LabeledCapture(capture, label, sublabel)


def make_report():
    report = PipelineReport()
    inject_body = pages.inject_ad_banner(
        "<html><body><p>site</p></body></html>")
    report.labeled = [
        labeled("doubleclick.net", "9.0.0.1", "r1", LABEL_MISC,
                SUBLABEL_AD_INJECTION, body=inject_body),
        labeled("doubleclick.net", "9.0.0.1", "r2", LABEL_MISC,
                SUBLABEL_AD_INJECTION, body=inject_body),
        # Cluster-label spillover without the signature: not counted.
        labeled("adnxs.com", "9.0.0.5", "r3", LABEL_MISC,
                SUBLABEL_AD_INJECTION, body="<html>plain</html>"),
        labeled("paypal.com", "9.0.1.1", "r4", LABEL_MISC,
                SUBLABEL_PHISHING, body=pages.phishing_paypal()),
        labeled("bank.example", "9.0.1.2", "r5", LABEL_MISC,
                SUBLABEL_PHISHING),
        labeled("get.adobe.com", "9.0.2.1", "r6", LABEL_MISC,
                SUBLABEL_MALWARE, body=pages.malware_update_page()),
        labeled("example.com", "9.0.3.1", "r7", LABEL_MISC,
                SUBLABEL_PROXY),
        labeled("example.com", "9.0.3.2", "r8", LABEL_MISC,
                SUBLABEL_PROXY),
        labeled("x.example", "9.0.4.1", "r9", LABEL_LOGIN),
    ]
    report.mail_captures = [
        MailCapture("imap.gmail.com", "9.0.5.1", "r10",
                    {"imap": "* OK Dovecot ready."}),
        MailCapture("imap.gmail.com", "9.0.5.2", "r11",
                    {"imap": "* OK Gimap ready for requests"}),
        MailCapture("imap.gmail.com", "9.0.5.3", "r12", {}),
    ]
    return report


class TestCaseStudySummary:
    def test_ad_injection_requires_signature(self):
        summary = case_study_summary(make_report())
        assert summary["ad_injection"]["resolvers"] == 2
        assert summary["ad_injection"]["ips"] == 1

    def test_phishing_groups(self):
        summary = case_study_summary(make_report())
        assert summary["phishing"]["resolvers"] == 2
        assert summary["phishing_paypal"]["resolvers"] == 1
        assert summary["phishing_paypal"]["img_tags"] == 46
        assert summary["phishing_paypal"]["posts_to_php"]
        assert summary["phishing_bank"]["resolvers"] == 1

    def test_malware(self):
        summary = case_study_summary(make_report())
        assert summary["malware"]["resolvers"] == 1

    def test_proxies_without_network(self):
        summary = case_study_summary(make_report())
        assert summary["proxy_all"]["resolvers"] == 2

    def test_proxy_split_with_network(self, mini):
        from repro.websim import TransparentProxy
        mini.network.register(TransparentProxy(
            "9.0.3.1", mini.sites, https=True, ca=mini.ca))
        mini.network.register(TransparentProxy("9.0.3.2", mini.sites,
                                               https=False))
        summary = case_study_summary(make_report(),
                                     network=mini.network)
        assert summary["proxy_tls"]["resolvers"] == 1
        assert summary["proxy_http_only"]["resolvers"] == 1

    def test_mail_classification(self):
        summary = case_study_summary(make_report())
        assert summary["mail_listeners"]["resolvers"] == 2
        assert summary["mail_banner_copies"]["resolvers"] == 1

    def test_login_group(self):
        summary = case_study_summary(make_report())
        assert summary["login"]["resolvers"] == 1

    def test_format(self):
        text = format_case_studies(case_study_summary(make_report()))
        assert "phishing_paypal" in text
        assert "mail_listeners" in text
