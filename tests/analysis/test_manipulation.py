"""Tests for §4 analyses: Table 5, Figure 4, coverage, case studies."""

import pytest

from repro.analysis.manipulation import (
    censorship_coverage,
    classification_table,
    gfw_double_responses,
    legit_addresses_from_report,
    prefilter_summary,
    social_geography,
    suspicious_behavior_stats,
)
from repro.core.acquisition import HttpCapture
from repro.core.labeling import (
    LABEL_CENSORSHIP,
    LABEL_HTTP_ERROR,
    CATEGORY_LABELS,
)
from repro.core.labeling import LabeledCapture
from repro.core.pipeline import PipelineReport
from repro.core.prefilter import PrefilterResult, ResponseTuple
from repro.inetmodel import (
    AsRegistry,
    AutonomousSystem,
    GeoIpDatabase,
    PrefixAllocator,
)
from repro.scanner.domainscan import DnsObservation


def make_geo():
    allocator = PrefixAllocator()
    registry = AsRegistry()
    prefixes = {}
    for asn, country in ((64500, "CN"), (64501, "IR"), (64502, "US")):
        prefix = allocator.allocate(24)
        registry.add(AutonomousSystem(asn, country, country,
                                      prefixes=[prefix]))
        prefixes[country] = prefix
    return GeoIpDatabase(registry), prefixes


def labeled(domain, ip, resolver, label, sublabel=None):
    capture = HttpCapture(domain, ip, resolver, status=200, body="x")
    return LabeledCapture(capture, label, sublabel)


def report_with(observations=(), unknown=(), legitimate=(), labels=()):
    report = PipelineReport()
    report.observations = list(observations)
    report.prefilter = PrefilterResult()
    report.prefilter.observations = len(report.observations)
    report.prefilter.unknown = [ResponseTuple(*t) for t in unknown]
    report.prefilter.legitimate = [ResponseTuple(*t) for t in legitimate]
    report.labeled = list(labels)
    return report


class TestClassificationTable:
    def test_avg_and_max(self):
        labels = (
            # domain a: 2 resolvers censored, 2 error.
            [labeled("a.com", "1.1.1.1", "r%d" % i, LABEL_CENSORSHIP)
             for i in range(2)]
            + [labeled("a.com", "2.2.2.2", "r%d" % i, LABEL_HTTP_ERROR)
               for i in range(2, 4)]
            # domain b: 1 resolver, error only.
            + [labeled("b.com", "2.2.2.2", "r9", LABEL_HTTP_ERROR)]
        )
        table = classification_table({"Test": report_with(labels=labels)})
        rows = table["Test"]
        assert rows[LABEL_CENSORSHIP]["avg_pct"] == pytest.approx(25.0)
        assert rows[LABEL_CENSORSHIP]["max_pct"] == pytest.approx(50.0)
        assert rows[LABEL_HTTP_ERROR]["avg_pct"] == pytest.approx(75.0)
        assert rows[LABEL_HTTP_ERROR]["max_pct"] == pytest.approx(100.0)
        for label in CATEGORY_LABELS:
            assert label in rows

    def test_empty_report(self):
        table = classification_table({"Empty": report_with()})
        assert table["Empty"][LABEL_CENSORSHIP]["avg_pct"] == 0.0


class TestFig4AndCoverage:
    def make_report(self, prefixes):
        cn = [prefixes["CN"].address_at(i) for i in range(5)]
        ir = [prefixes["IR"].address_at(i) for i in range(2)]
        us = [prefixes["US"].address_at(i) for i in range(3)]
        observations = [DnsObservation("facebook.com", ip, 0, ["9.9.9.9"])
                        for ip in cn + ir + us]
        unknown = [("facebook.com", "9.9.9.9", ip) for ip in cn + ir]
        return report_with(observations=observations, unknown=unknown)

    def test_social_geography(self):
        geoip, prefixes = make_geo()
        report = self.make_report(prefixes)
        fig4 = social_geography(report, geoip, ["facebook.com"])
        all_shares = dict(fig4.all_shares())
        assert all_shares["CN"] == pytest.approx(50.0)
        unexpected = dict(fig4.unexpected_shares())
        assert unexpected["CN"] == pytest.approx(100 * 5 / 7)
        assert "US" not in unexpected

    def test_coverage(self):
        geoip, prefixes = make_geo()
        report = self.make_report(prefixes)
        coverage = censorship_coverage(report, geoip, ["facebook.com"],
                                       "CN")
        assert coverage["coverage_pct"] == pytest.approx(100.0)
        us_coverage = censorship_coverage(report, geoip,
                                          ["facebook.com"], "US")
        assert us_coverage["coverage_pct"] == 0.0


class TestGfwDoubleResponses:
    def test_detection(self):
        geoip, prefixes = make_geo()
        cn_ip = prefixes["CN"].address_at(1)
        cn_ip2 = prefixes["CN"].address_at(2)
        legit = {"facebook.com": {"31.13.0.1"}}
        observations = [
            # Forged first, legit second: the GFW-immune signature.
            DnsObservation("facebook.com", cn_ip, 0, ["6.6.6.6"],
                           all_responses=[(0, ["6.6.6.6"]),
                                          (0, ["31.13.0.1"])]),
            # Forged twice (poisoned resolver): not a double responder.
            DnsObservation("facebook.com", cn_ip2, 0, ["6.6.6.6"],
                           all_responses=[(0, ["6.6.6.6"]),
                                          (0, ["7.7.7.7"])]),
        ]
        report = report_with(observations=observations)
        stats = gfw_double_responses(report, geoip, legit)
        assert stats["country_resolvers"] == 2
        assert stats["double_response_resolvers"] == 1
        assert stats["share_pct"] == pytest.approx(50.0)

    def test_legit_addresses_from_report(self):
        report = report_with(
            legitimate=[("a.com", "1.1.1.1", "r1"),
                        ("a.com", "1.1.1.2", "r2")])
        legit = legit_addresses_from_report(report)
        assert legit == {"a.com": {"1.1.1.1", "1.1.1.2"}}


class TestSuspiciousStats:
    def test_self_ip_and_static(self):
        unknown = [
            # r1 returns itself for every domain.
            ("a.com", "10.0.0.1", "10.0.0.1"),
            ("b.com", "10.0.0.1", "10.0.0.1"),
            # r2 returns the same single IP for two domains: static.
            ("a.com", "9.9.9.9", "10.0.0.2"),
            ("b.com", "9.9.9.9", "10.0.0.2"),
            # r3 returns different IPs per domain.
            ("a.com", "8.8.8.8", "10.0.0.3"),
            ("b.com", "7.7.7.7", "10.0.0.3"),
        ]
        report = report_with(unknown=unknown)
        stats = suspicious_behavior_stats({"Set1": report})
        assert stats["suspicious_resolvers"] == 3
        assert stats["self_ip_any_share_pct"] == pytest.approx(100 / 3)
        assert stats["self_ip_most_sets"] == 1
        assert stats["static_single_share_pct"] == pytest.approx(
            2 * 100 / 3)

    def test_prefilter_summary(self):
        report = report_with(
            observations=[DnsObservation("a.com", "r", 0, ["1.1.1.1"])],
            unknown=[("a.com", "1.1.1.1", "r")])
        summary = prefilter_summary(report)
        assert summary["unknown_tuples"] == 1
        assert summary["suspicious_resolvers"] == 1
