"""Tests for aggregating popularity estimates (extension analysis)."""

from repro.scanner.popularity import (
    CLASS_HEAVY,
    CLASS_IDLE,
    CLASS_LIGHT,
    CLASS_MODERATE,
    PopularityEstimate,
)


def summarize(estimates):
    """Aggregate popularity classes (mirrors what an analysis of a
    population-wide fine-grained survey reports)."""
    counts = {}
    for estimate in estimates:
        cls = estimate.popularity_class
        counts[cls] = counts.get(cls, 0) + 1
    total = len(estimates) or 1
    return {cls: count / total for cls, count in counts.items()}


def test_summary_shares():
    estimates = (
        [PopularityEstimate("1.0.0.%d" % i, [2.0], ["com"], 1)
         for i in range(2)]
        + [PopularityEstimate("2.0.0.%d" % i, [200.0], ["com"], 1)
           for i in range(3)]
        + [PopularityEstimate("3.0.0.%d" % i, [], ["com"], 0)
           for i in range(5)]
    )
    shares = summarize(estimates)
    assert shares[CLASS_HEAVY] == 0.2
    assert shares[CLASS_MODERATE] == 0.3
    assert shares[CLASS_IDLE] == 0.5


def test_boundaries():
    assert PopularityEstimate("x", [10.0], ["com"],
                              1).popularity_class == CLASS_HEAVY
    assert PopularityEstimate("x", [10.1], ["com"],
                              1).popularity_class == CLASS_MODERATE
    assert PopularityEstimate("x", [600.0], ["com"],
                              1).popularity_class == CLASS_MODERATE
    assert PopularityEstimate("x", [600.1], ["com"],
                              1).popularity_class == CLASS_LIGHT
