"""Tests for the Table 3 and Table 4 analyses."""

import pytest

from repro.analysis.devices import device_table, format_device_table, \
    share_of
from repro.analysis.software import (
    SoftwareVersionMatcher,
    format_software_table,
    software_table,
)
from repro.scanner.chaos import (
    ChaosObservation,
    OUTCOME_ERROR,
    OUTCOME_HIDDEN,
    OUTCOME_NO_VERSION,
    OUTCOME_VERSION,
)


class TestVersionMatcher:
    @pytest.mark.parametrize("text,expected", [
        ("9.8.2rc1-RedHat-9.8.2-0.17.rc1.el6", ("BIND", "9.8.2")),
        ("9.3.6-P1-RedHat-9.3.6-20.P1.el5", ("BIND", "9.3.6")),
        ("9.9.5-3ubuntu0.1-Ubuntu", ("BIND", "9.9.5")),
        ("unbound 1.4.22", ("Unbound", "1.4.22")),
        ("dnsmasq-2.40", ("Dnsmasq", "2.40")),
        ("PowerDNS Recursor 3.5.3", ("PowerDNS", "3.5.3")),
        ("Microsoft DNS 6.1.7601 (1DB15D39)", ("MS DNS", "6.1.7601")),
        ("Nominum Vantio 3.0.5", ("Nominum", "3.0.5")),
    ])
    def test_known_strings(self, text, expected):
        assert SoftwareVersionMatcher().match(text) == expected

    @pytest.mark.parametrize("text", [
        "Go away!", "none", "", None, "sorry", "[secured]",
    ])
    def test_hidden_strings_rejected(self, text):
        assert SoftwareVersionMatcher().match(text) is None


class TestSoftwareTable:
    def observations(self):
        return (
            [ChaosObservation("1.0.0.%d" % i, OUTCOME_ERROR)
             for i in range(40)]
            + [ChaosObservation("2.0.0.%d" % i, OUTCOME_NO_VERSION)
               for i in range(5)]
            + [ChaosObservation("3.0.0.%d" % i, OUTCOME_HIDDEN, "none")
               for i in range(20)]
            + [ChaosObservation("4.0.0.%d" % i, OUTCOME_VERSION,
                                "9.8.2rc1-RedHat") for i in range(20)]
            + [ChaosObservation("5.0.0.%d" % i, OUTCOME_VERSION,
                                "unbound 1.4.22") for i in range(15)]
        )

    def test_shares(self):
        table = software_table(self.observations())
        assert table["responding"] == 100
        assert table["error_share_pct"] == pytest.approx(40.0)
        assert table["no_version_share_pct"] == pytest.approx(5.0)
        assert table["hidden_share_pct"] == pytest.approx(20.0)
        assert table["version_share_pct"] == pytest.approx(35.0)

    def test_rows_ranked_by_leaking_share(self):
        table = software_table(self.observations())
        assert table["rows"][0]["software"] == "BIND 9.8.2"
        assert table["rows"][0]["share_pct"] == pytest.approx(
            100 * 20 / 35)
        assert table["rows"][1]["software"] == "Unbound 1.4.22"

    def test_format(self):
        text = format_software_table(software_table(self.observations()))
        assert "BIND 9.8.2" in text


class TestDeviceTable:
    def classifications(self):
        return {
            "1.0.0.1": ("Router", "ZyNOS", "ZyXEL"),
            "1.0.0.2": ("Router", "Linux", "TP-LINK"),
            "1.0.0.3": ("Embedded", "Others", None),
            "1.0.0.4": ("Unknown", "Unknown", None),
            "1.0.0.5": ("NAS", "Linux", "Synology"),
            "1.0.0.6": ("DSLAM", "Others", "Zhone"),
            "1.0.0.7": ("Server", "CentOS", None),
        }

    def test_hardware_grouping(self):
        table = device_table(self.classifications())
        # NAS + DSLAM + Server roll into Others (Table 4 columns).
        assert share_of(table, "hardware", "Others") == pytest.approx(
            100 * 3 / 7)
        assert share_of(table, "hardware", "Router") == pytest.approx(
            100 * 2 / 7)

    def test_os_shares(self):
        table = device_table(self.classifications())
        assert share_of(table, "os", "Linux") == pytest.approx(
            100 * 2 / 7)
        assert share_of(table, "os", "ZyNOS") == pytest.approx(100 / 7)

    def test_tcp_responding_share(self):
        table = device_table(self.classifications(), total_scanned=70)
        assert table["tcp_responding_share_pct"] == pytest.approx(10.0)

    def test_vendor_counts(self):
        table = device_table(self.classifications())
        vendors = {row["name"] for row in table["vendors"]}
        assert "ZyXEL" in vendors

    def test_missing_share_is_zero(self):
        table = device_table(self.classifications())
        assert share_of(table, "hardware", "Toaster") == 0.0

    def test_format(self):
        assert "Router" in format_device_table(
            device_table(self.classifications()))
