"""Tests for the deterministic fault-injection plane (repro.faults)."""

import pytest

from repro.faults import (
    FaultPlan,
    FaultProfile,
    PROFILES,
    parse_fault_spec,
)


class TestFaultProfile:
    def test_defaults_are_inert(self):
        profile = FaultProfile()
        assert profile.loss_rate == 0.0
        assert profile.burst_share == 0.0
        assert profile.truncation_rate == 0.0
        assert profile.tcp_hang_rate == 0.0
        assert profile.flap_share == 0.0
        assert profile.worker_death_rate == 0.0
        assert profile.kill_shards == {}

    def test_replace_copies_without_mutating(self):
        base = PROFILES["mild"]
        derived = base.replace(loss_rate=0.5, kill_shards={0: 2})
        assert derived.loss_rate == 0.5
        assert derived.kill_shards == {0: 2}
        assert derived.truncation_rate == base.truncation_rate
        assert base.loss_rate == 0.01
        assert base.kill_shards == {}

    def test_named_profiles_exist(self):
        assert set(PROFILES) == {"none", "mild", "aggressive"}
        assert PROFILES["aggressive"].loss_rate > PROFILES["mild"].loss_rate


class TestParseFaultSpec:
    def test_bare_profile_name(self):
        profile = parse_fault_spec("aggressive")
        assert profile.loss_rate == PROFILES["aggressive"].loss_rate

    def test_default_profile_is_mild(self):
        profile = parse_fault_spec("loss_rate=0.2")
        assert profile.loss_rate == 0.2
        # Everything else inherits mild.
        assert profile.truncation_rate == PROFILES["mild"].truncation_rate

    def test_overrides_and_kill_entries(self):
        profile = parse_fault_spec("aggressive,loss_rate=0.25,kill=0:2,kill=3")
        assert profile.loss_rate == 0.25
        assert profile.kill_shards == {0: 2, 3: 1}
        assert profile.burst_share == PROFILES["aggressive"].burst_share

    def test_integer_fields_coerced(self):
        profile = parse_fault_spec("none,rate_limit_step=3,flap_period=6")
        assert profile.rate_limit_step == 3
        assert isinstance(profile.rate_limit_step, int)
        assert profile.flap_period == 6
        assert isinstance(profile.flap_period, int)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("bogus")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("mild,banana=1")

    def test_duplicate_profile_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("mild,aggressive")


class TestDrawDeterminism:
    """Every fault draw is a pure function of (seed, salt, key, occurrence)."""

    def test_same_seed_same_draws(self):
        left = FaultPlan("aggressive", seed=42)
        right = FaultPlan("aggressive", seed=42)
        for key in range(200):
            assert left.query_fate(key, key * 7, 0, 0.0) == \
                right.query_fate(key, key * 7, 0, 0.0)
            assert left.truncates_response(key, 0) == \
                right.truncates_response(key, 0)
            assert left.tcp_stall_seconds(key, 0) == \
                right.tcp_stall_seconds(key, 0)

    def test_draws_are_stateless(self):
        """Repeating the identical draw yields the identical answer —
        no hidden sequential RNG."""
        plan = FaultPlan("aggressive", seed=5)
        fates = [plan.query_fate(17, 1234, 0, 0.0) for __ in range(10)]
        assert len(set(fates)) == 1

    def test_different_seeds_differ(self):
        left = FaultPlan("aggressive", seed=1)
        right = FaultPlan("aggressive", seed=2)
        fates_left = [left.query_fate(k, k, 0, 0.0) for k in range(500)]
        fates_right = [right.query_fate(k, k, 0, 0.0) for k in range(500)]
        assert fates_left != fates_right

    def test_loss_rate_statistics(self):
        plan = FaultPlan(FaultProfile(loss_rate=0.10), seed=9)
        lost = sum(1 for key in range(20000)
                   if plan.query_fate(key, key, 0, 0.0) == "injected_loss")
        assert 0.08 < lost / 20000 < 0.12

    def test_none_profile_never_faults(self):
        plan = FaultPlan("none", seed=3)
        for key in range(500):
            assert plan.query_fate(key, key, 0, 0.0) is None
            assert not plan.truncates_response(key, 0)
            assert plan.tcp_stall_seconds(key, 0) == 0.0
            assert not plan.resolver_offline(key, 0.0)
            assert not plan.worker_dies(key % 8, 0)


class TestRateLimiting:
    def test_first_sends_pass_then_limited(self):
        plan = FaultPlan(FaultProfile(rate_limit_share=1.0,
                                      rate_limit_step=2), seed=1)
        # Occurrences 0..step pass; beyond the step every send drops.
        assert plan.query_fate(11, 99, 0, 0.0) is None
        assert plan.query_fate(11, 99, 1, 0.0) is None
        assert plan.query_fate(11, 99, 2, 0.0) is None
        assert plan.query_fate(11, 99, 3, 0.0) == "rate_limited"
        assert plan.query_fate(11, 99, 7, 0.0) == "rate_limited"

    def test_only_selected_destinations_limit(self):
        plan = FaultPlan(FaultProfile(rate_limit_share=0.5,
                                      rate_limit_step=0), seed=8)
        limited = sum(1 for dst in range(2000)
                      if plan.query_fate(dst, dst, 5, 0.0) == "rate_limited")
        assert 800 < limited < 1200


class TestBurstLoss:
    def test_burst_windows_are_spatial(self):
        """All flows inside a selected /16 window share the burst; flows
        outside it never draw burst loss."""
        plan = FaultPlan(FaultProfile(burst_share=0.5,
                                      burst_loss_rate=1.0), seed=4)
        outcome_by_window = {}
        for window in range(64):
            dst = window << 16
            fates = {plan.query_fate((dst << 8) ^ k, dst + k, 0, 0.0)
                     for k in range(20)}
            outcome_by_window[window] = fates
        bursty = [w for w, fates in outcome_by_window.items()
                  if fates == {"burst_loss"}]
        quiet = [w for w, fates in outcome_by_window.items()
                 if fates == {None}]
        assert bursty and quiet
        assert len(bursty) + len(quiet) == 64


class TestResolverFlap:
    def test_square_wave_over_weeks(self):
        week = 7 * 24 * 3600.0
        plan = FaultPlan(FaultProfile(flap_share=1.0, flap_period=4,
                                      flap_duty=0.25), seed=2)
        states = [plan.resolver_offline(12345, w * week) for w in range(12)]
        # Duty 0.25 of period 4 => exactly one offline week per cycle.
        assert sum(states) == 3
        assert states[:4] == states[4:8] == states[8:12]

    def test_share_selects_subset(self):
        week = 7 * 24 * 3600.0
        plan = FaultPlan(FaultProfile(flap_share=0.10, flap_period=2,
                                      flap_duty=0.5), seed=6)
        flappers = sum(
            1 for ip in range(5000)
            if any(plan.resolver_offline(ip, w * week) for w in range(2)))
        assert 350 < flappers < 650

    def test_phases_desynchronise(self):
        week = 7 * 24 * 3600.0
        plan = FaultPlan(FaultProfile(flap_share=1.0, flap_period=4,
                                      flap_duty=0.25), seed=2)
        offline_now = sum(1 for ip in range(2000)
                          if plan.resolver_offline(ip, 0.0))
        # Per-resolver phase: about a quarter offline at any instant, not
        # everyone at once.
        assert 350 < offline_now < 650


class TestWorkerDeath:
    def test_forced_kills_take_priority(self):
        plan = FaultPlan(FaultProfile(kill_shards={1: 2}), seed=0)
        assert plan.worker_dies(1, 0)
        assert plan.worker_dies(1, 1)
        assert not plan.worker_dies(1, 2)
        assert not plan.worker_dies(0, 0)

    def test_death_rate_draw(self):
        plan = FaultPlan(FaultProfile(worker_death_rate=1.0), seed=0)
        assert plan.worker_dies(0, 0)
        quiet = FaultPlan(FaultProfile(), seed=0)
        assert not quiet.worker_dies(0, 0)


class TestResolverFlapIntegration:
    def test_flapping_resolver_goes_silent(self, mini):
        from repro.resolvers import ResolverNode
        resolver = ResolverNode("198.18.9.1",
                                resolution_service=mini.service)
        mini.network.register(resolver)
        mini.builder.register_domain("example.com",
                                     {"example.com": ["198.18.0.1"]})

        from repro.dnswire import Message
        from repro.netsim import UdpPacket

        def ask():
            query = Message.query("example.com", txid=9)
            packet = UdpPacket(mini.client_ip, 1234, "198.18.9.1", 53,
                               query.to_wire())
            return mini.network.send_udp(packet)

        assert ask()  # answers before any plan is installed
        plan = mini.network.install_faults(
            FaultPlan(FaultProfile(flap_share=1.0, flap_period=1,
                                   flap_duty=1.0), seed=1))
        assert plan.resolver_offline(0, mini.clock.now)
        assert ask() == []
        assert mini.network.fault_counters.get("resolver_flap", 0) >= 1


class TestCrashPlane:
    """The checkpoint-boundary crash and torn-write draws."""

    def test_crash_point_canon(self):
        assert FaultPlan.crash_point("week", (3,)) == "week:3"
        assert FaultPlan.crash_point("shard", ("week", 1, "scan", 2)) == \
            "shard:week/1/scan/2"

    def test_forced_crash_fires_at_first_occurrence_only(self):
        plan = FaultPlan(FaultProfile(crash_points=("week:1",)), seed=3)
        assert plan.crashes("week", (1,), occurrence=0)
        assert not plan.crashes("week", (1,), occurrence=1)
        assert not plan.crashes("week", (0,), occurrence=0)

    def test_crash_rate_draw_is_deterministic(self):
        left = FaultPlan(FaultProfile(crash_rate=0.5), seed=42)
        right = FaultPlan(FaultProfile(crash_rate=0.5), seed=42)
        draws = [left.crashes("week", (week,)) for week in range(200)]
        assert draws == [right.crashes("week", (week,))
                         for week in range(200)]
        assert any(draws) and not all(draws)

    def test_forced_torn_write_keyed_by_seq_and_epoch(self):
        plan = FaultPlan(FaultProfile(torn_points=(4,)), seed=3)
        assert plan.torn_write(4, epoch=0)
        assert not plan.torn_write(4, epoch=1)  # already torn once
        assert not plan.torn_write(3, epoch=0)

    def test_none_profile_never_crashes(self):
        plan = FaultPlan("none", seed=3)
        for week in range(100):
            assert not plan.crashes("week", (week,))
            assert not plan.torn_write(week)

    def test_parse_crash_and_torn_tokens(self):
        profile = parse_fault_spec(
            "none,crash=week:3,crash=shard:week/1/scan/2,torn=5")
        assert profile.crash_points == ("week:3", "shard:week/1/scan/2")
        assert profile.torn_points == (5,)
        assert profile.loss_rate == 0.0

    def test_replace_copies_crash_fields(self):
        base = FaultProfile(crash_points=("week:1",))
        derived = base.replace(torn_points=[2, 3], crash_rate=0.25)
        assert derived.crash_points == ("week:1",)
        assert derived.torn_points == (2, 3)
        assert derived.crash_rate == 0.25
        assert base.torn_points == ()

    def test_injected_crash_is_not_swallowed_by_except_exception(self):
        from repro.faults import InjectedCrash
        with pytest.raises(InjectedCrash):
            try:
                raise InjectedCrash("week", "week:0")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("InjectedCrash must not be an Exception")
