"""Tests for IPv4 address utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.address import (
    Ipv4Network,
    int_to_ip,
    ip_to_int,
    is_private,
    is_reserved,
    reverse_pointer_name,
    same_slash24,
)


class TestConversions:
    def test_known_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("1.2.3.4") == 0x01020304
        assert int_to_ip(0x01020304) == "1.2.3.4"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    def test_bad_inputs(self):
        for bad in ("1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d"):
            with pytest.raises(ValueError):
                ip_to_int(bad)
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(2 ** 32)


class TestIpv4Network:
    def test_membership(self):
        net = Ipv4Network("10.0.0.0/8")
        assert "10.1.2.3" in net
        assert "11.0.0.0" not in net

    def test_base_masked(self):
        assert Ipv4Network("10.5.5.5/8").cidr == "10.0.0.0/8"

    def test_single_host(self):
        net = Ipv4Network("192.0.2.1")
        assert net.num_addresses == 1
        assert "192.0.2.1" in net
        assert "192.0.2.2" not in net

    def test_address_at(self):
        net = Ipv4Network("192.0.2.0/24")
        assert net.address_at(0) == "192.0.2.0"
        assert net.address_at(255) == "192.0.2.255"
        with pytest.raises(IndexError):
            net.address_at(256)

    def test_bad_prefix_length(self):
        with pytest.raises(ValueError):
            Ipv4Network("1.2.3.4/33")

    def test_equality_and_hash(self):
        assert Ipv4Network("10.0.0.0/8") == Ipv4Network("10.9.9.9/8")
        assert hash(Ipv4Network("10.0.0.0/8")) == \
            hash(Ipv4Network("10.0.0.0/8"))


class TestReservedPrivate:
    @pytest.mark.parametrize("address", [
        "10.1.1.1", "127.0.0.1", "192.168.1.1", "172.16.0.1",
        "169.254.1.1", "224.0.0.1", "240.0.0.1", "198.51.100.5",
        "0.1.2.3", "100.64.0.1",
    ])
    def test_reserved(self, address):
        assert is_reserved(address)

    @pytest.mark.parametrize("address", [
        "8.8.8.8", "1.1.1.1", "200.1.2.3", "150.0.0.1",
    ])
    def test_not_reserved(self, address):
        assert not is_reserved(address)

    def test_private_subset(self):
        assert is_private("192.168.0.1")
        assert is_private("10.0.0.1")
        assert not is_private("8.8.8.8")
        # Reserved but not LAN-private.
        assert not is_private("224.0.0.1")

    def test_accepts_int(self):
        assert is_reserved(ip_to_int("10.0.0.1"))


class TestHelpers:
    def test_reverse_pointer(self):
        assert reverse_pointer_name("1.2.3.4") == "4.3.2.1.in-addr.arpa"

    def test_reverse_pointer_rejects_bad(self):
        with pytest.raises(ValueError):
            reverse_pointer_name("1.2.3")

    def test_same_slash24(self):
        assert same_slash24("1.2.3.4", "1.2.3.200")
        assert not same_slash24("1.2.3.4", "1.2.4.4")
