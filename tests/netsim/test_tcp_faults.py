"""Flow-keyed TCP loss and the network-level fault hooks."""

from repro.faults import FaultPlan, FaultProfile
from repro.netsim import Network, Node, SimClock


class BannerNode(Node):
    def __init__(self, ip):
        super().__init__(ip)

    def tcp_ports(self):
        return frozenset({25})

    def tcp_banner(self, port, network=None):
        return "220 mail.example ESMTP"


class WebNode(Node):
    def handle_http(self, request, network):
        class Response:
            status = 200
            body = "<html>ok</html>"
        return Response()


def make_network(loss_rate=0.0, seed=3):
    return Network(SimClock(), seed=seed, loss_rate=loss_rate)


class TestFlowKeyedTcpLoss:
    def test_outcomes_independent_of_interleaving(self):
        """The same sequence of banner fetches succeeds/fails identically
        regardless of what other flows ran in between — the draw is keyed
        per flow + occurrence, not by a shared sequential RNG."""
        def outcomes(interleave):
            network = make_network(loss_rate=0.3, seed=7)
            for index in range(40):
                network.register(BannerNode("198.18.5.%d" % index))
            fates = []
            for index in range(40):
                if interleave:
                    # Unrelated traffic between the draws under test.
                    network.tcp_banner("10.9.0.9", "198.18.200.1", 80)
                fates.append(network.tcp_banner(
                    "10.0.0.1", "198.18.5.%d" % index, 25) is not None)
            return fates

        assert outcomes(False) == outcomes(True)

    def test_loss_rate_zero_never_drops(self):
        network = make_network(loss_rate=0.0)
        network.register(BannerNode("198.18.5.1"))
        for __ in range(20):
            assert network.tcp_banner("10.0.0.1", "198.18.5.1", 25)

    def test_repeat_attempts_get_fresh_draws(self):
        """Occurrence indexing: a retried connect can succeed even when
        the first attempt on the identical flow was lost."""
        network = make_network(loss_rate=0.5, seed=11)
        network.register(BannerNode("198.18.5.1"))
        fates = [network.tcp_banner("10.0.0.1", "198.18.5.1", 25)
                 is not None for __ in range(64)]
        assert True in fates and False in fates


class TestTcpHangFaults:
    def plan(self, hang_rate=1.0, stall=30.0):
        return FaultPlan(FaultProfile(tcp_hang_rate=hang_rate,
                                      tcp_stall_seconds=stall), seed=5)

    def test_stall_past_timeout_fails_fetch(self):
        network = make_network()
        network.register(WebNode("198.18.7.1"))
        network.install_faults(self.plan(stall=30.0))

        class Request:
            scheme = "http"
        assert network.http_request("10.0.0.1", "198.18.7.1", Request(),
                                    timeout=5.0) is None
        assert network.fault_counters["tcp_hang"] >= 1

    def test_stall_below_timeout_is_absorbed(self):
        network = make_network()
        network.register(WebNode("198.18.7.1"))
        network.install_faults(self.plan(stall=2.0))

        class Request:
            scheme = "http"
        response = network.http_request("10.0.0.1", "198.18.7.1",
                                        Request(), timeout=5.0)
        assert response is not None and response.status == 200
        assert network.fault_counters["tcp_stall_absorbed"] >= 1
        assert "tcp_hang" not in network.fault_counters

    def test_no_timeout_waits_out_any_stall(self):
        network = make_network()
        network.register(BannerNode("198.18.7.2"))
        network.install_faults(self.plan(stall=3600.0))
        assert network.tcp_banner("10.0.0.1", "198.18.7.2", 25)
        assert network.fault_counters["tcp_stall_absorbed"] >= 1

    def test_tls_handshake_honours_timeout(self):
        network = make_network()
        network.register(WebNode("198.18.7.3"))
        network.install_faults(self.plan(stall=30.0))
        assert network.tls_handshake("10.0.0.1", "198.18.7.3",
                                     timeout=1.0) is None
        assert network.fault_counters["tcp_hang"] >= 1


class EchoNode(Node):
    """Replies to every datagram with a fixed well-formed-length payload."""

    def handle_udp(self, packet, network):
        return b"\x00\x4d\x80" + b"\x00" * 13


class TestResponseTruncation:
    def test_truncated_replies_are_unparseable(self):
        from repro.netsim import UdpPacket

        network = make_network()
        network.register(EchoNode("198.18.9.1"))
        network.install_faults(FaultPlan(
            FaultProfile(truncation_rate=1.0), seed=1))
        packet = UdpPacket("10.0.0.1", 4242, "198.18.9.1", 53, b"hello")
        responses = network.send_udp(packet)
        assert responses
        for response in responses:
            assert len(response.packet.payload) < 12
        assert network.fault_counters["truncated_response"] >= 1

    def test_zero_rate_leaves_replies_intact(self):
        from repro.netsim import UdpPacket

        network = make_network()
        network.register(EchoNode("198.18.9.1"))
        network.install_faults(FaultPlan(
            FaultProfile(truncation_rate=0.0), seed=1))
        packet = UdpPacket("10.0.0.1", 4242, "198.18.9.1", 53, b"hello")
        responses = network.send_udp(packet)
        assert responses and len(responses[0].packet.payload) == 16
        assert network.fault_counters == {}


class TestInjectedQueryLoss:
    def test_injected_loss_counts_and_drops(self):
        from repro.netsim import UdpPacket

        network = make_network()
        network.register(EchoNode("198.18.9.1"))
        network.install_faults(FaultPlan(
            FaultProfile(loss_rate=1.0), seed=1))
        packet = UdpPacket("10.0.0.1", 4242, "198.18.9.1", 53, b"hello")
        assert network.send_udp(packet) == []
        assert network.fault_counters["injected_loss"] >= 1
        assert network.udp_queries_lost >= 1
