"""Tests for scan blockers and DNS ingress filters (§2.3 explanations)."""

from repro.netsim import (
    DnsIngressFilter,
    Ipv4Network,
    Network,
    ScannerBlocker,
    SimClock,
    UdpPacket,
)
from repro.netsim.network import Node


class AnswerNode(Node):
    def handle_udp(self, packet, network):
        return b"ok"


def build(middlebox):
    network = Network(SimClock(), seed=1)
    network.register(AnswerNode("50.0.0.10"))
    network.add_middlebox(middlebox)
    return network


def dns_probe(network, src="1.0.0.1", dst="50.0.0.10", dport=53):
    return network.send_udp(UdpPacket(src, 1234, dst, dport, b"q"))


class TestScannerBlocker:
    def make(self, active_after=0.0):
        return ScannerBlocker(["1.0.0.1"],
                              [Ipv4Network("50.0.0.0/24")],
                              active_after=active_after)

    def test_blocks_listed_source(self):
        network = build(self.make())
        assert dns_probe(network) == []

    def test_other_source_passes(self):
        # The verification scan from a second /8 still gets through —
        # this is how the paper identified explanation (i).
        network = build(self.make())
        assert dns_probe(network, src="2.0.0.1")

    def test_other_destination_passes(self):
        network = build(self.make())
        network.register(AnswerNode("60.0.0.1"))
        assert dns_probe(network, dst="60.0.0.1")

    def test_inactive_before_activation(self):
        network = build(self.make(active_after=100.0))
        assert dns_probe(network)
        network.clock.advance(200)
        assert dns_probe(network) == []


class TestDnsIngressFilter:
    def make(self, active_after=0.0):
        return DnsIngressFilter([Ipv4Network("50.0.0.0/24")],
                                active_after=active_after)

    def test_blocks_external_dns(self):
        network = build(self.make())
        assert dns_probe(network) == []

    def test_blocks_all_external_sources(self):
        # Unlike the scanner blocker, verification scans fail too.
        network = build(self.make())
        assert dns_probe(network, src="2.0.0.1") == []

    def test_internal_traffic_passes(self):
        network = build(self.make())
        assert dns_probe(network, src="50.0.0.99")

    def test_non_dns_ports_pass(self):
        network = build(self.make())
        assert dns_probe(network, dport=5353)

    def test_activation_time(self):
        network = build(self.make(active_after=10.0))
        assert dns_probe(network)
        network.clock.advance(11)
        assert dns_probe(network) == []
