"""Tests for UDP payload corruption (§5 Completeness)."""

from repro.dnswire import Message
from repro.netsim import Network, Node, SimClock, UdpPacket


class DnsEcho(Node):
    def handle_udp(self, packet, network):
        query = Message.from_wire(packet.payload)
        return query.make_response().to_wire()


def probe(network, txid=7):
    query = Message.query("example.com", txid=txid)
    packet = UdpPacket("1.0.0.1", 999, "2.0.0.1", 53, query.to_wire())
    return network.send_udp(packet)


def parsed_ok(responses, txid=7):
    for response in responses:
        try:
            message = Message.from_wire(response.packet.payload)
        except ValueError:
            continue
        if message.header.txid == txid:
            return True
    return False


def test_no_corruption_by_default():
    network = Network(SimClock(), seed=1)
    network.register(DnsEcho("2.0.0.1"))
    assert all(parsed_ok(probe(network)) for __ in range(50))
    assert network.udp_responses_corrupted == 0


def test_full_corruption_breaks_every_response():
    network = Network(SimClock(), seed=1, corruption_rate=1.0)
    network.register(DnsEcho("2.0.0.1"))
    for __ in range(20):
        responses = probe(network)
        assert responses, "corrupted packets still arrive"
        assert not parsed_ok(responses), \
            "a corrupted payload must not parse as the answer"
    assert network.udp_responses_corrupted == 20


def test_partial_corruption_statistics():
    network = Network(SimClock(), seed=3, corruption_rate=0.3)
    network.register(DnsEcho("2.0.0.1"))
    good = sum(1 for __ in range(400) if parsed_ok(probe(network)))
    assert 220 <= good <= 340  # ~70% survive
    assert network.udp_responses_corrupted > 60


def test_scanner_ignores_corrupted_responses():
    """The paper ignores invalid packets in all analyses — the scanner
    must simply not count a resolver whose response was damaged."""
    from repro.scanner import Ipv4Scanner
    network = Network(SimClock(), seed=5, corruption_rate=1.0)
    network.register(DnsEcho("2.0.0.1"))
    scanner = Ipv4Scanner(network, "1.0.0.1", "scan.example.edu")
    result = scanner.scan_addresses(["2.0.0.1"])
    assert result.probes_sent == 1
    assert not result.responders
