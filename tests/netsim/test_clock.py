"""Tests for the simulated clock."""

import pytest

from repro.netsim.clock import DAY, HOUR, MINUTE, WEEK, SimClock


def test_starts_at_given_time():
    assert SimClock(100.0).now == 100.0


def test_advance_units():
    clock = SimClock()
    clock.advance(5)
    assert clock.now == 5
    clock.advance_minutes(1)
    assert clock.now == 5 + MINUTE
    clock.advance_hours(1)
    assert clock.now == 5 + MINUTE + HOUR
    clock.advance_days(1)
    assert clock.now == 5 + MINUTE + HOUR + DAY
    clock.advance_weeks(1)
    assert clock.now == 5 + MINUTE + HOUR + DAY + WEEK


def test_cannot_go_backwards():
    with pytest.raises(ValueError):
        SimClock().advance(-1)


def test_constants_consistent():
    assert WEEK == 7 * DAY
    assert DAY == 24 * HOUR
    assert HOUR == 60 * MINUTE
