"""Defensive middleboxes: pure verdicts, attribution, determinism.

The whole arms race rests on defense fates being pure functions of
(seed, source, destination, declared rate) — these tests pin the
monotonicity, seeding, and attribution contracts the pacing controller
and the shard-equivalence invariant depend on.
"""

import pytest

from repro.netsim.address import ip_to_int
from repro.netsim.defense import (
    CAUSE_BLOCKLIST_WARNING,
    CAUSE_BLOCKLISTED,
    CAUSE_RATE_LIMITED,
    CAUSE_TARPIT,
    TARPIT_STALL_COUNTER,
    ReactiveBlocklister,
    Tarpit,
    TokenBucketRateLimiter,
    default_hostile_population,
    defense_boxes,
    install_hostile_population,
)
from repro.netsim.middlebox import PATH_DROP, PATH_IGNORE
from repro.inetmodel import PrefixAllocator
from tests.conftest import MiniWorld

SRC = ip_to_int("192.0.2.1")


def prefix(length=24):
    return PrefixAllocator().allocate(length)


def targets(net, count=256):
    return [net.base + offset for offset in range(min(count,
                                                      net.num_addresses))]


class TestTokenBucketRateLimiter:
    def test_clean_at_or_below_sustainable_rate(self):
        box = TokenBucketRateLimiter([prefix()], sustainable_pps=300.0)
        for dst in targets(prefix()):
            assert box.probe_fate(SRC, dst, 300) is None
            assert box.probe_fate(SRC, dst, 8) is None

    def test_drop_share_grows_with_declared_rate(self):
        box = TokenBucketRateLimiter([prefix()], sustainable_pps=300.0)
        dsts = targets(prefix(), 256)

        def drops(rate):
            return sum(box.probe_fate(SRC, dst, rate) is not None
                       for dst in dsts)

        assert 0 == drops(300) < drops(400) < drops(1200) <= drops(None)

    def test_monotonic_per_destination(self):
        # Lowering the rate can only turn drops into passes — the draw
        # is shared across rates, so AIMD convergence is deterministic.
        box = TokenBucketRateLimiter([prefix()], sustainable_pps=300.0)
        for dst in targets(prefix(), 256):
            dropped_low = box.probe_fate(SRC, dst, 400) is not None
            dropped_high = box.probe_fate(SRC, dst, 900) is not None
            assert not (dropped_low and not dropped_high)

    def test_unpaced_treated_as_overload(self):
        box = TokenBucketRateLimiter([prefix()], sustainable_pps=300.0,
                                     overload_drop_share=0.92)
        dsts = targets(prefix(), 512)
        dropped = sum(box.probe_fate(SRC, dst, None) is not None
                      for dst in dsts)
        assert dropped / len(dsts) == pytest.approx(0.92, abs=0.06)

    def test_fate_is_deterministic_and_seed_keyed(self):
        net = prefix()
        box_a = TokenBucketRateLimiter([net], seed=5)
        box_b = TokenBucketRateLimiter([net], seed=5)
        box_c = TokenBucketRateLimiter([net], seed=6)
        fates_a = [box_a.probe_fate(SRC, dst, None) for dst in targets(net)]
        fates_b = [box_b.probe_fate(SRC, dst, None) for dst in targets(net)]
        fates_c = [box_c.probe_fate(SRC, dst, None) for dst in targets(net)]
        assert fates_a == fates_b
        assert fates_a != fates_c


class TestReactiveBlocklister:
    def test_rate_bands(self):
        box = ReactiveBlocklister([prefix()], warn_pps=600.0,
                                  ban_pps=1200.0)
        dst = prefix().base + 1
        assert box.probe_fate(SRC, dst, 100) is None
        assert box.probe_fate(SRC, dst, 1200) == CAUSE_BLOCKLISTED
        assert box.probe_fate(SRC, dst, None) == CAUSE_BLOCKLISTED
        warned = [box.probe_fate(SRC, d, 800) for d in targets(prefix())]
        assert CAUSE_BLOCKLIST_WARNING in warned
        assert None in warned     # warn band drops a share, not all

    def test_ban_span_bounded_and_seeded(self):
        box = ReactiveBlocklister([prefix()], ban_span=(48, 160), seed=3)
        spans = [box.ban_span(SRC, base) for base in range(0, 1 << 16, 256)]
        assert all(48 <= span <= 160 for span in spans)
        assert len(set(spans)) > 1
        again = ReactiveBlocklister([prefix()], ban_span=(48, 160), seed=3)
        assert spans == [again.ban_span(SRC, base)
                        for base in range(0, 1 << 16, 256)]


class TestTarpit:
    def test_triggers_on_aggression_only(self):
        box = Tarpit([prefix()], trigger_pps=250.0)
        dst = prefix().base + 1
        assert box.probe_fate(SRC, dst, 249) is None
        assert box.probe_fate(SRC, dst, 250) == CAUSE_TARPIT
        assert box.probe_fate(SRC, dst, None) == CAUSE_TARPIT

    def test_stall_seconds_bounded(self):
        box = Tarpit([prefix()], stall_seconds=(20.0, 75.0))
        stalls = [box.stall_seconds(SRC, dst)
                  for dst in targets(prefix(), 64)]
        assert all(20.0 <= stall <= 75.0 for stall in stalls)
        assert len(set(stalls)) > 1

    def test_stall_charged_to_fault_counter(self):
        mini = MiniWorld()
        net = mini.allocator.allocate(24)
        box = Tarpit([net])
        mini.network.add_middlebox(box)
        verdict = box.path_verdict(mini.client_ip, net.base + 1, 53,
                                   mini.network)
        assert verdict == PATH_DROP
        assert mini.network.fault_counters[CAUSE_TARPIT] == 1
        assert mini.network.fault_counters[TARPIT_STALL_COUNTER] >= 20000


class TestMiddleboxProtocol:
    def build(self):
        mini = MiniWorld()
        net = mini.allocator.allocate(24)
        box = TokenBucketRateLimiter([net], sustainable_pps=300.0)
        mini.network.add_middlebox(box)
        return mini, net, box

    def test_path_verdict_reads_declared_rate(self):
        mini, net, box = self.build()
        mini.network.scan_rate_bucket = 100
        assert box.path_verdict(mini.client_ip, net.base + 1, 53,
                                mini.network) == PATH_IGNORE
        mini.network.scan_rate_bucket = None
        verdicts = [box.path_verdict(mini.client_ip, net.base + off, 53,
                                     mini.network) for off in range(64)]
        assert PATH_DROP in verdicts

    def test_drop_sets_cause_and_counts_fault(self):
        mini, net, box = self.build()
        dst = next(net.base + off for off in range(256)
                   if box.probe_fate(ip_to_int(mini.client_ip),
                                     net.base + off, None) is not None)
        assert box.path_verdict(mini.client_ip, dst, 53,
                                mini.network) == PATH_DROP
        assert box.drop_cause == CAUSE_RATE_LIMITED
        assert mini.network.fault_counters[CAUSE_RATE_LIMITED] == 1

    def test_ignores_other_ports_and_dormant_boxes(self):
        mini, net, box = self.build()
        assert box.path_verdict(mini.client_ip, net.base + 1, 80,
                                mini.network) == PATH_IGNORE
        dormant = TokenBucketRateLimiter([net], active_after=1e9)
        assert dormant.path_verdict(mini.client_ip, net.base + 1, 53,
                                    mini.network) == PATH_IGNORE
        assert dormant.scan_interest(mini.client_ip, 53, mini.network) == []
        assert dormant.defense_ranges(mini.client_ip, 53,
                                      mini.network) == []

    def test_scan_interest_marks_defended_ranges_hot(self):
        mini, net, box = self.build()
        assert box.scan_interest(mini.client_ip, 53, mini.network) == \
            [(net.base, net.mask)]
        assert box.defense_ranges(mini.client_ip, 53, mini.network) == \
            [(net.base, net.mask)]

    def test_signature_reflects_configuration(self):
        net = prefix()
        assert TokenBucketRateLimiter([net], seed=1).signature() == \
            TokenBucketRateLimiter([net], seed=1).signature()
        assert TokenBucketRateLimiter([net], seed=1).signature() != \
            TokenBucketRateLimiter([net], seed=2).signature()
        assert TokenBucketRateLimiter([net]).signature() != \
            Tarpit([net]).signature()


class TestHostilePopulation:
    def test_default_population_composition(self):
        allocator = PrefixAllocator()
        prefixes = [allocator.allocate(length)
                    for length in (26, 25, 24, 24, 23, 22)]
        boxes = default_hostile_population(prefixes, seed=7)
        kinds = [type(box).__name__ for box in boxes]
        assert kinds == ["ReactiveBlocklister", "Tarpit",
                         "TokenBucketRateLimiter"]
        blocklister = boxes[0]
        # Smallest prefix is hard-blocked: banned at every declared rate.
        assert blocklister.ban_pps == 0.0
        assert blocklister.probe_fate(SRC,
                                      blocklister._protect_masks[0][0],
                                      8) == CAUSE_BLOCKLISTED

    def test_install_and_discovery(self):
        mini = MiniWorld()
        prefixes = [mini.allocator.allocate(24) for __ in range(4)]
        boxes = install_hostile_population(mini.network, prefixes, seed=1)
        assert defense_boxes(mini.network) == boxes
        assert len(boxes) == 3

    def test_empty_prefixes(self):
        assert default_hostile_population([]) == []
