"""Property tests for the latency model."""

from hypothesis import given, strategies as st

from repro.netsim import Network, SimClock

OCTET = st.integers(min_value=1, max_value=223)


def make_network():
    return Network(SimClock(), seed=1)


@given(OCTET, OCTET, OCTET, OCTET)
def test_latency_bounds(a, b, c, d):
    network = make_network()
    src = "%d.0.0.%d" % (a, b)
    dst = "%d.0.0.%d" % (c, d)
    latency = network.latency_between(src, dst)
    assert network.base_latency <= latency <= network.base_latency + 0.18


@given(OCTET, OCTET)
def test_latency_deterministic(a, b):
    network = make_network()
    src = "%d.1.2.3" % a
    dst = "%d.3.2.1" % b
    assert network.latency_between(src, dst) == \
        network.latency_between(src, dst)


def test_latency_varies_across_pairs():
    network = make_network()
    values = {network.latency_between("1.0.0.1", "2.0.0.%d" % i)
              for i in range(1, 60)}
    assert len(values) > 30, "latency should spread, not collapse"


def test_gfw_injection_beats_any_genuine_latency():
    # The injector's fixed 4ms must undercut the minimum RTT (2x base).
    network = make_network()
    from repro.netsim.gfw import GreatFirewall
    gfw = GreatFirewall([], [])
    assert gfw.injection_latency < 2 * network.base_latency
