"""Tests for the Great Firewall injector."""

from repro.dnswire import Message, QTYPE_NS
from repro.netsim import GreatFirewall, Ipv4Network, Network, SimClock, \
    UdpPacket
from repro.netsim.network import Node

CN_PREFIX = Ipv4Network("110.0.0.0/8")


class HonestNode(Node):
    def handle_udp(self, packet, network):
        query = Message.from_wire(packet.payload)
        return query.make_response().to_wire()


def make_gfw(**kwargs):
    return GreatFirewall([CN_PREFIX], ["facebook.com", "twitter.com"],
                         seed=3, **kwargs)


def make_network(gfw):
    network = Network(SimClock(), seed=1)
    network.add_middlebox(gfw)
    return network


def query_packet(name, src="1.0.0.1", dst="110.0.0.5", qtype=None):
    from repro.dnswire.constants import QTYPE_A
    query = Message.query(name, qtype=qtype or QTYPE_A, txid=77)
    return UdpPacket(src, 5353, dst, 53, query.to_wire())


class TestCensorsName:
    def test_exact_and_subdomain(self):
        gfw = make_gfw()
        assert gfw.censors_name("facebook.com")
        assert gfw.censors_name("www.facebook.com")
        assert gfw.censors_name("api.Twitter.COM")
        assert not gfw.censors_name("example.com")
        assert not gfw.censors_name("notfacebook.com")


class TestInjection:
    def test_inject_on_crossing_censored_query(self):
        network = make_network(make_gfw())
        responses = network.send_udp(query_packet("facebook.com"))
        assert len(responses) == 1
        assert responses[0].injected
        message = Message.from_wire(responses[0].packet.payload)
        assert message.header.txid == 77
        assert message.a_addresses()
        # Injection happens even with NO host at the target address —
        # the paper's probes to random Chinese ranges.

    def test_injection_races_ahead_of_genuine_answer(self):
        network = make_network(make_gfw())
        network.register(HonestNode("110.0.0.5"))
        responses = network.send_udp(query_packet("facebook.com"))
        assert len(responses) == 2
        assert responses[0].injected
        assert not responses[1].injected

    def test_no_injection_for_uncensored_name(self):
        network = make_network(make_gfw())
        assert network.send_udp(query_packet("example.com")) == []

    def test_no_injection_inside_to_inside(self):
        network = make_network(make_gfw())
        packet = query_packet("facebook.com", src="110.0.0.1",
                              dst="110.0.0.2")
        assert network.send_udp(packet) == []

    def test_outbound_crossing_also_injected(self):
        network = make_network(make_gfw())
        packet = query_packet("facebook.com", src="110.0.0.1",
                              dst="1.2.3.4")
        responses = network.send_udp(packet)
        assert len(responses) == 1 and responses[0].injected

    def test_non_a_queries_pass(self):
        network = make_network(make_gfw())
        assert network.send_udp(
            query_packet("facebook.com", qtype=QTYPE_NS)) == []

    def test_non_dns_port_passes(self):
        network = make_network(make_gfw())
        query = Message.query("facebook.com").to_wire()
        packet = UdpPacket("1.0.0.1", 5353, "110.0.0.5", 8080, query)
        assert network.send_udp(packet) == []

    def test_injection_counter(self):
        gfw = make_gfw()
        network = make_network(gfw)
        network.send_udp(query_packet("facebook.com"))
        network.send_udp(query_packet("twitter.com"))
        assert gfw.injection_count == 2


class TestForgedAddresses:
    def test_deterministic_per_name_and_client(self):
        gfw = make_gfw()
        first = gfw.forged_address("facebook.com", client_key="1.1.1.1")
        second = gfw.forged_address("facebook.com", client_key="1.1.1.1")
        assert first == second

    def test_varies_by_client(self):
        gfw = make_gfw()
        addresses = {gfw.forged_address("facebook.com",
                                        client_key="1.1.1.%d" % i)
                     for i in range(30)}
        assert len(addresses) > 10

    def test_decoy_pool_used(self):
        gfw = make_gfw(decoy_pool=["9.9.9.9"], decoy_share=1.0)
        assert gfw.forged_address("facebook.com", "c") == "9.9.9.9"

    def test_forged_is_global_unicast(self):
        from repro.netsim.address import ip_to_int
        gfw = make_gfw()
        for i in range(50):
            value = ip_to_int(gfw.forged_address("facebook.com", str(i)))
            assert ip_to_int("1.0.0.0") <= value < ip_to_int("224.0.0.0")
