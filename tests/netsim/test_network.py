"""Tests for the network core: routing, loss, latency, middleboxes."""

import pytest

from repro.netsim import Network, Node, SimClock, UdpPacket
from repro.netsim.middlebox import Middlebox
from repro.netsim.network import UdpResponse


class EchoNode(Node):
    """Replies with its own IP as payload."""

    def handle_udp(self, packet, network):
        return b"echo:" + self.ip.encode()


class MultiReplyNode(Node):
    """Replies twice, once from a different source address."""

    def handle_udp(self, packet, network):
        return [(b"first", None), (b"second", "9.9.9.9")]


class SilentNode(Node):
    def handle_udp(self, packet, network):
        return None


def make_network(loss_rate=0.0, seed=1):
    return Network(SimClock(), seed=seed, loss_rate=loss_rate)


def probe(network, dst="2.0.0.1"):
    packet = UdpPacket("1.0.0.1", 1000, dst, 53, b"hi")
    return network.send_udp(packet)


class TestRegistry:
    def test_register_and_lookup(self):
        network = make_network()
        node = EchoNode("2.0.0.1")
        network.register(node)
        assert network.node_at("2.0.0.1") is node
        assert network.node_count == 1

    def test_unregister(self):
        network = make_network()
        network.register(EchoNode("2.0.0.1"))
        network.unregister("2.0.0.1")
        assert network.node_at("2.0.0.1") is None

    def test_rebind_moves_node(self):
        network = make_network()
        node = EchoNode("2.0.0.1")
        network.register(node)
        network.rebind(node, "2.0.0.99")
        assert node.ip == "2.0.0.99"
        assert network.node_at("2.0.0.1") is None
        assert network.node_at("2.0.0.99") is node


class TestUdp:
    def test_delivery_and_reply_addressing(self):
        network = make_network()
        network.register(EchoNode("2.0.0.1"))
        responses = probe(network)
        assert len(responses) == 1
        reply = responses[0].packet
        assert reply.payload == b"echo:2.0.0.1"
        assert reply.src_ip == "2.0.0.1"
        assert reply.dst_ip == "1.0.0.1"
        assert reply.dst_port == 1000
        assert reply.src_port == 53

    def test_no_node_no_response(self):
        assert probe(make_network()) == []

    def test_silent_node(self):
        network = make_network()
        network.register(SilentNode("2.0.0.1"))
        assert probe(network) == []

    def test_divergent_source_reply(self):
        network = make_network()
        network.register(MultiReplyNode("2.0.0.1"))
        responses = probe(network)
        sources = {r.packet.src_ip for r in responses}
        assert sources == {"2.0.0.1", "9.9.9.9"}

    def test_latency_deterministic_and_symmetric_ordering(self):
        network = make_network()
        first = network.latency_between("1.0.0.1", "2.0.0.1")
        second = network.latency_between("1.0.0.1", "2.0.0.1")
        assert first == second
        assert first >= network.base_latency

    def test_full_loss_drops_everything(self):
        network = make_network(loss_rate=1.0)
        network.register(EchoNode("2.0.0.1"))
        assert probe(network) == []
        assert network.udp_queries_lost > 0

    def test_partial_loss_statistics(self):
        network = make_network(loss_rate=0.3, seed=42)
        network.register(EchoNode("2.0.0.1"))
        delivered = sum(1 for __ in range(500) if probe(network))
        # Query AND response each subject to loss: ~0.49 delivery.
        assert 150 < delivered < 350


class DropBox(Middlebox):
    def drops_query(self, packet, network):
        return packet.dst_ip == "2.0.0.1"


class InjectBox(Middlebox):
    def inject_responses(self, packet, network):
        reply = packet.reply(b"forged")
        return [UdpResponse(reply, 0.001, injected=True)]


class ResponseDropBox(Middlebox):
    def drops_response(self, query, response, network):
        return True


class TestMiddleboxes:
    def test_query_drop(self):
        network = make_network()
        network.register(EchoNode("2.0.0.1"))
        network.add_middlebox(DropBox())
        assert probe(network) == []

    def test_drop_is_targeted(self):
        network = make_network()
        network.register(EchoNode("2.0.0.2"))
        network.add_middlebox(DropBox())
        assert probe(network, dst="2.0.0.2")

    def test_injection_arrives_first(self):
        network = make_network()
        network.register(EchoNode("2.0.0.1"))
        network.add_middlebox(InjectBox())
        responses = probe(network)
        assert len(responses) == 2
        assert responses[0].injected
        assert responses[0].packet.payload == b"forged"
        assert responses[1].packet.payload == b"echo:2.0.0.1"
        assert responses[0].latency < responses[1].latency

    def test_response_drop(self):
        network = make_network()
        network.register(EchoNode("2.0.0.1"))
        network.add_middlebox(ResponseDropBox())
        assert probe(network) == []

    def test_injected_wins_exact_latency_tie(self):
        """A forged answer racing the genuine one at the *same* arrival
        time must still be delivered first (the GFW-race ordering the
        paper's double-response detection keys on)."""
        network = make_network()
        network.register(EchoNode("2.0.0.1"))
        tie_latency = network.latency_between("1.0.0.1", "2.0.0.1") * 2

        class TieInjector(Middlebox):
            def inject_responses(self, packet, net):
                return [UdpResponse(packet.reply(b"forged"), tie_latency,
                                    injected=True)]

        network.add_middlebox(TieInjector())
        responses = probe(network)
        assert len(responses) == 2
        assert responses[0].latency == responses[1].latency
        assert responses[0].injected
        assert responses[0].packet.payload == b"forged"
        assert not responses[1].injected

    def test_duck_typed_middlebox_without_path_verdict(self):
        """Boxes that don't subclass Middlebox (and lack path_verdict)
        must still see every packet."""

        class DuckDrop:
            def inject_responses(self, packet, network):
                return []

            def drops_query(self, packet, network):
                return packet.dst_ip == "2.0.0.1"

            def drops_response(self, query, response, network):
                return False

        network = make_network()
        network.register(EchoNode("2.0.0.1"))
        network.add_middlebox(DuckDrop())
        assert probe(network) == []
        assert probe(network, dst="2.0.0.2") == []  # no node there


class TestSendProbe:
    def test_send_probe_matches_send_udp(self):
        """The scalar fast path must be fate-for-fate identical to
        packet-based delivery, including loss draws."""
        from repro.netsim.address import ip_to_int

        def run(use_probe):
            network = make_network(loss_rate=0.25, seed=9)
            network.register(EchoNode("2.0.0.1"))
            outcomes = []
            for __ in range(60):
                if use_probe:
                    responses = network.send_probe(
                        "1.0.0.1", 1000, "2.0.0.1", 53,
                        ip_to_int("2.0.0.1"), b"hi")
                else:
                    responses = network.send_udp(UdpPacket(
                        "1.0.0.1", 1000, "2.0.0.1", 53, b"hi"))
                outcomes.append([r.packet.payload for r in responses])
            return outcomes

        assert run(True) == run(False)

    def test_send_probe_dead_address(self):
        network = make_network()
        responses = network.send_probe("1.0.0.1", 1000, "2.0.0.9", 53,
                                       0x0200_0009, b"hi")
        assert list(responses) == []


class TestTcpServices:
    def test_banner_requires_open_port(self):
        network = make_network()

        class BannerNode(Node):
            def tcp_ports(self):
                return frozenset((21,))

            def tcp_banner(self, port, network=None):
                return "220 hello"

        network.register(BannerNode("2.0.0.1"))
        assert network.tcp_banner("1.0.0.1", "2.0.0.1", 21) == "220 hello"
        assert network.tcp_banner("1.0.0.1", "2.0.0.1", 22) is None
        assert network.tcp_banner("1.0.0.1", "9.9.9.9", 21) is None

    def test_http_without_service(self):
        network = make_network()
        network.register(EchoNode("2.0.0.1"))
        from repro.websim.http import HttpRequest
        assert network.http_request("1.0.0.1", "2.0.0.1",
                                    HttpRequest("x.example")) is None

    def test_tls_without_service(self):
        network = make_network()
        network.register(EchoNode("2.0.0.1"))
        assert network.tls_handshake("1.0.0.1", "2.0.0.1") is None
