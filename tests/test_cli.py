"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scan_defaults(self):
        args = build_parser().parse_args(["scan"])
        assert args.scale == 20000
        assert args.seed == 7

    def test_campaign_weeks(self):
        args = build_parser().parse_args(["campaign", "--weeks", "3"])
        assert args.weeks == 3

    def test_classify_set(self):
        args = build_parser().parse_args(["classify", "--set", "Adult"])
        assert args.set == "Adult"

    def test_audit_requires_resolver(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit"])

    def test_pipeline_shards_default(self):
        args = build_parser().parse_args(["classify"])
        assert args.pipeline_shards == 1

    def test_pipeline_shards_override(self):
        args = build_parser().parse_args(
            ["classify", "--pipeline-shards", "4"])
        assert args.pipeline_shards == 4


class TestKnobValidation:
    """Nonsensical knob values must die at the parser (or with a clear
    error), not as an arbitrary traceback mid-scan."""

    @pytest.mark.parametrize("flag,value", [
        ("--probe-batch", "0"),
        ("--probe-batch", "-5"),
        ("--probe-batch", "many"),
        ("--node-cache", "0"),
        ("--node-cache", "-1"),
        ("--shards", "0"),
        ("--shards", "-2"),
        ("--pipeline-shards", "0"),
    ])
    def test_nonpositive_knobs_rejected(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["scan", flag, value])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "positive integer" in err or "is not an integer" in err

    def test_positive_knobs_accepted(self):
        args = build_parser().parse_args(
            ["scan", "--probe-batch", "128", "--node-cache", "16",
             "--shards", "3"])
        assert (args.probe_batch, args.node_cache, args.shards) \
            == (128, 16, 3)

    @pytest.mark.parametrize("flag,value", [
        ("--retries", "-3"),
        ("--retries", "1.5"),
        ("--retries", "lots"),
        ("--probe-timeout", "0"),
        ("--probe-timeout", "-1"),
        ("--probe-timeout", "nan"),
        ("--probe-timeout", "soon"),
    ])
    def test_nonsense_probe_knobs_rejected(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["scan", flag, value])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "must be" in err or "is not a" in err

    def test_retries_zero_is_valid(self):
        # Zero retries is the single-probe fast path, not nonsense.
        args = build_parser().parse_args(
            ["scan", "--retries", "0", "--probe-timeout", "2.5"])
        assert (args.retries, args.probe_timeout) == (0, 2.5)

    @pytest.mark.parametrize("flag,value", [
        ("--audit-fraction", "0"),
        ("--audit-fraction", "1"),
        ("--audit-fraction", "1.5"),
        ("--audit-fraction", "-0.1"),
        ("--drift-budget", "0"),
        ("--drift-budget", "1"),
        ("--drift-budget", "nan"),
        ("--full-sweep-every", "0"),
        ("--full-sweep-every", "-4"),
    ])
    def test_nonsense_delta_knobs_rejected(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["campaign", flag, value])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "must be" in err or "is not a" in err

    def test_delta_flags_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--delta", "--audit-fraction", "0.1",
             "--drift-budget", "0.25", "--full-sweep-every", "6"])
        assert args.delta is True
        assert (args.audit_fraction, args.drift_budget,
                args.full_sweep_every) == (0.1, 0.25, 6)

    def test_streaming_flags_parse(self):
        args = build_parser().parse_args(
            ["scan", "--stream-results", "--lazy-population"])
        assert args.stream_results and args.lazy_population

    def test_shards_beyond_targets_rejected(self, capsys):
        # A 1:10000000 world keeps only a couple of scan targets;
        # thousands of shards cannot possibly each get one.
        with pytest.raises(SystemExit) as exc:
            main(["scan", "--scale", "10000000", "--shards", "100000"])
        message = str(exc.value)
        assert "exceeds" in message and "targets" in message


SMALL = ["--scale", "120000", "--seed", "3"]


class TestCommands:
    def test_scan(self, capsys):
        assert main(["scan"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "NOERROR" in out
        assert "probes sent" in out

    def test_campaign(self, capsys):
        assert main(["campaign", "--weeks", "2"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "decline ratio" in out
        assert "surviving" in out

    def test_campaign_delta(self, capsys):
        assert main(["campaign", "--weeks", "4", "--delta"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "decline ratio" in out
        assert "delta:" in out and "carried" in out

    def test_classify_rejects_unknown_set(self, capsys):
        assert main(["classify", "--set", "Nope"] + SMALL) == 2

    def test_classify(self, capsys):
        assert main(["classify", "--set", "Dating"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "legitimate" in out
        assert "classified" in out

    def test_classify_sharded_matches_sequential(self, capsys):
        assert main(["classify", "--set", "Dating"] + SMALL) == 0
        sequential = capsys.readouterr().out
        assert main(["classify", "--set", "Dating",
                     "--pipeline-shards", "2"] + SMALL) == 0
        assert capsys.readouterr().out == sequential

    def test_audit_falls_back_to_real_resolver(self, capsys):
        assert main(["audit", "203.0.113.7"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "verdict" in out

    def test_snoop(self, capsys):
        assert main(["snoop", "--sample", "20", "--hours", "6"]
                    + SMALL) == 0
        out = capsys.readouterr().out
        assert "snooped resolvers" in out


class TestCheckpointCli:
    def test_checkpoint_flags_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--checkpoint-dir", "/tmp/c", "--resume"])
        assert args.checkpoint_dir == "/tmp/c"
        assert args.resume is True

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--weeks", "1", "--resume"] + SMALL)

    def test_reopening_a_used_directory_without_resume_refused(
            self, tmp_path, capsys):
        from repro.checkpoint import CheckpointError
        ckpt = str(tmp_path / "ckpt")
        assert main(["campaign", "--weeks", "1",
                     "--checkpoint-dir", ckpt] + SMALL) == 0
        with pytest.raises(CheckpointError):
            main(["campaign", "--weeks", "1",
                  "--checkpoint-dir", ckpt] + SMALL)

    def test_campaign_crash_then_resume_matches_plain_run(
            self, tmp_path, capsys):
        import os
        from repro.faults import CRASH_EXIT_CODE
        assert main(["campaign", "--weeks", "2"] + SMALL) == 0
        plain = capsys.readouterr().out
        ckpt = str(tmp_path / "ckpt")
        faulted = SMALL + ["--faults", "none,crash=week:0"]
        assert main(["campaign", "--weeks", "2",
                     "--checkpoint-dir", ckpt] + faulted) == \
            CRASH_EXIT_CODE
        capsys.readouterr()
        assert main(["campaign", "--weeks", "2", "--checkpoint-dir",
                     ckpt, "--resume"] + faulted) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "[resume provenance]" in captured.err
        assert os.path.exists(os.path.join(ckpt, "provenance.json"))

    def test_fullstudy_crash_resume_writes_identical_report(
            self, tmp_path, capsys):
        import os
        from repro.faults import CRASH_EXIT_CODE
        args = ["fullstudy", "--weeks", "1", "--snoop-sample", "5"] + SMALL
        plain_out = str(tmp_path / "plain.md")
        # Baseline under the same (inert) fault profile: installing any
        # plan changes which salted draws the network makes, so the fair
        # comparison is crash+resume vs uninterrupted with equal faults.
        assert main(args + ["--faults", "none", "--out", plain_out]) == 0
        ckpt = str(tmp_path / "ckpt")
        resumed_out = str(tmp_path / "resumed.md")
        faulted = ["--faults", "none,crash=study:fingerprint",
                   "--checkpoint-dir", ckpt, "--out", resumed_out]
        assert main(args + faulted) == CRASH_EXIT_CODE
        # Atomic --out: the crashed run must not leave a torn report.
        assert not os.path.exists(resumed_out)
        assert main(args + faulted + ["--resume"]) == 0
        with open(plain_out) as handle:
            plain = handle.read()
        with open(resumed_out) as handle:
            resumed = handle.read()
        assert resumed == plain


class TestTraceCliErrors:
    """'repro trace' must die with one clear line — never a traceback —
    whatever is wrong with the file it was pointed at."""

    def test_missing_file_is_a_one_line_error(self, capsys):
        assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("invalid trace:")
        assert "Traceback" not in err

    def test_binary_garbage_is_a_one_line_error(self, tmp_path, capsys):
        path = str(tmp_path / "garbage.jsonl")
        with open(path, "wb") as handle:
            handle.write(b"\x93NUMPY\x01\x00\xff\xfe" * 64)
        assert main(["trace", path]) == 2
        err = capsys.readouterr().err
        assert err.startswith("invalid trace:")
        assert "not a JSONL text file" in err

    def test_non_json_text_is_a_one_line_error(self, tmp_path, capsys):
        path = str(tmp_path / "notes.txt")
        with open(path, "w") as handle:
            handle.write("this is not a trace\n")
        assert main(["trace", path]) == 2
        assert "invalid trace" in capsys.readouterr().err


class TestObserveKnobValidation:
    """The observatory's knobs die at the parser like every other knob."""

    @pytest.mark.parametrize("flag,value", [
        ("--ingest-poll", "0"),
        ("--ingest-poll", "-2"),
        ("--ingest-poll", "nan"),
        ("--ingest-poll", "often"),
    ])
    def test_bad_ingest_poll_rejected(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["observe", "ingest", "--from", "/tmp/c",
                 "--store-dir", "/tmp/s", flag, value])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "must be" in err or "is not a" in err

    @pytest.mark.parametrize("value", [
        "8053",             # no host
        ":8053",            # empty host
        "127.0.0.1:zero",   # non-integer port
        "127.0.0.1:70000",  # out of range
        "127.0.0.1:-1",
    ])
    def test_bad_listen_endpoint_rejected(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["observe", "serve", "--store-dir", "/tmp/s",
                 "--listen", value])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "host:port" in err or "port" in err

    def test_bad_store_dir_rejected(self, tmp_path, capsys):
        plain_file = tmp_path / "file.txt"
        plain_file.write_text("not a directory")
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["observe", "stats", "--store-dir", str(plain_file)])
        assert exc.value.code == 2
        assert "not a directory" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["observe", "stats", "--store-dir", "  "])

    def test_good_knobs_parse(self):
        args = build_parser().parse_args(
            ["observe", "serve", "--store-dir", "/tmp/s",
             "--listen", "0.0.0.0:0", "--ingest-poll", "0.5"])
        assert args.listen == ("0.0.0.0", 0)
        assert args.ingest_poll == 0.5
        assert args.store_dir == "/tmp/s"

    def test_store_dir_is_required(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["observe", "stats"])
        assert exc.value.code == 2


class TestObserveCli:
    def test_ingest_then_query_round_trip(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        store = str(tmp_path / "store")
        assert main(["campaign", "--weeks", "2",
                     "--checkpoint-dir", ckpt] + SMALL) == 0
        capsys.readouterr()
        assert main(["observe", "ingest", "--from", ckpt,
                     "--store-dir", store, "--no-geo"]) == 0
        captured = capsys.readouterr()
        assert "2 weeks" in captured.err
        assert main(["observe", "stats", "--store-dir", store]) == 0
        import json
        stats = json.loads(capsys.readouterr().out)
        assert stats["weeks"] == 2 and stats["resolvers"] > 0
        assert main(["observe", "survival", "--store-dir", store]) == 0
        assert "week  surviving" in capsys.readouterr().out
        # Second ingest pass: recognized no-op.
        assert main(["observe", "ingest", "--from", ckpt,
                     "--store-dir", store, "--no-geo"]) == 0
        assert "nothing new" in capsys.readouterr().err

    def test_lookup_unknown_resolver_fails(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        store = str(tmp_path / "store")
        assert main(["campaign", "--weeks", "1",
                     "--checkpoint-dir", ckpt] + SMALL) == 0
        assert main(["observe", "ingest", "--from", ckpt,
                     "--store-dir", store, "--no-geo"]) == 0
        capsys.readouterr()
        assert main(["observe", "lookup", "--store-dir", store,
                     "203.0.113.254"]) == 1
        assert "unknown resolver" in capsys.readouterr().err

    def test_query_before_ingest_is_a_clear_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["observe", "stats",
                  "--store-dir", str(tmp_path / "empty")])
        assert "repro observe ingest" in str(exc.value)

    def test_ingest_missing_checkpoint_is_a_clear_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["observe", "ingest",
                  "--from", str(tmp_path / "nothing"),
                  "--store-dir", str(tmp_path / "store")])
        assert "no checkpoint directory" in str(exc.value)
