"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scan_defaults(self):
        args = build_parser().parse_args(["scan"])
        assert args.scale == 20000
        assert args.seed == 7

    def test_campaign_weeks(self):
        args = build_parser().parse_args(["campaign", "--weeks", "3"])
        assert args.weeks == 3

    def test_classify_set(self):
        args = build_parser().parse_args(["classify", "--set", "Adult"])
        assert args.set == "Adult"

    def test_audit_requires_resolver(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit"])

    def test_pipeline_shards_default(self):
        args = build_parser().parse_args(["classify"])
        assert args.pipeline_shards == 1

    def test_pipeline_shards_override(self):
        args = build_parser().parse_args(
            ["classify", "--pipeline-shards", "4"])
        assert args.pipeline_shards == 4


SMALL = ["--scale", "120000", "--seed", "3"]


class TestCommands:
    def test_scan(self, capsys):
        assert main(["scan"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "NOERROR" in out
        assert "probes sent" in out

    def test_campaign(self, capsys):
        assert main(["campaign", "--weeks", "2"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "decline ratio" in out
        assert "surviving" in out

    def test_classify_rejects_unknown_set(self, capsys):
        assert main(["classify", "--set", "Nope"] + SMALL) == 2

    def test_classify(self, capsys):
        assert main(["classify", "--set", "Dating"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "legitimate" in out
        assert "classified" in out

    def test_classify_sharded_matches_sequential(self, capsys):
        assert main(["classify", "--set", "Dating"] + SMALL) == 0
        sequential = capsys.readouterr().out
        assert main(["classify", "--set", "Dating",
                     "--pipeline-shards", "2"] + SMALL) == 0
        assert capsys.readouterr().out == sequential

    def test_audit_falls_back_to_real_resolver(self, capsys):
        assert main(["audit", "203.0.113.7"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "verdict" in out

    def test_snoop(self, capsys):
        assert main(["snoop", "--sample", "20", "--hours", "6"]
                    + SMALL) == 0
        out = capsys.readouterr().out
        assert "snooped resolvers" in out
