"""Tests for protocol constant helpers."""

from repro.dnswire import constants


def test_qtype_names():
    assert constants.qtype_name(constants.QTYPE_A) == "A"
    assert constants.qtype_name(constants.QTYPE_NS) == "NS"
    assert constants.qtype_name(constants.QTYPE_TXT) == "TXT"
    assert constants.qtype_name(999) == "TYPE999"


def test_class_names():
    assert constants.class_name(constants.CLASS_IN) == "IN"
    assert constants.class_name(constants.CLASS_CH) == "CH"
    assert constants.class_name(77) == "CLASS77"


def test_rcode_names():
    assert constants.rcode_name(constants.RCODE_NOERROR) == "NOERROR"
    assert constants.rcode_name(constants.RCODE_NXDOMAIN) == "NXDOMAIN"
    assert constants.rcode_name(constants.RCODE_REFUSED) == "REFUSED"
    assert constants.rcode_name(14) == "RCODE14"


def test_values_match_rfc1035():
    assert constants.QTYPE_A == 1
    assert constants.QTYPE_NS == 2
    assert constants.QTYPE_CNAME == 5
    assert constants.QTYPE_SOA == 6
    assert constants.QTYPE_PTR == 12
    assert constants.QTYPE_MX == 15
    assert constants.QTYPE_TXT == 16
    assert constants.CLASS_IN == 1
    assert constants.CLASS_CH == 3
    assert constants.RCODE_NXDOMAIN == 3
    assert constants.RCODE_REFUSED == 5
