"""Tests for the DNS message codec."""

import pytest
from hypothesis import given, strategies as st

from repro.dnswire import constants
from repro.dnswire.message import Header, Message, Question
from repro.dnswire.records import ResourceRecord


class TestHeader:
    def test_flags_roundtrip_all_set(self):
        header = Header(txid=0x1234, qr=True, opcode=2, aa=True, tc=True,
                        rd=True, ra=True, rcode=5)
        decoded = Header.from_flags_word(0x1234, header.flags_word())
        for attribute in ("qr", "opcode", "aa", "tc", "rd", "ra", "rcode"):
            assert getattr(decoded, attribute) == getattr(header, attribute)

    def test_default_is_recursive_query(self):
        header = Header()
        assert not header.qr
        assert header.rd
        assert header.rcode == constants.RCODE_NOERROR

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_flags_word_roundtrip(self, word):
        # The reserved Z bits are not modelled; mask them out.
        meaningful = word & 0xFF8F
        assert Header.from_flags_word(0, meaningful).flags_word() \
            == meaningful


class TestQuestion:
    def test_wire_roundtrip(self):
        wire = Question("example.com", constants.QTYPE_NS).to_wire()
        decoded, offset = Question.from_wire(wire, 0)
        assert decoded.name == "example.com"
        assert decoded.qtype == constants.QTYPE_NS
        assert offset == len(wire)

    def test_equality(self):
        assert Question("a.example") == Question("a.example")
        assert Question("a.example") != Question("a.example",
                                                 constants.QTYPE_NS)


class TestMessage:
    def test_query_builder(self):
        query = Message.query("example.com", txid=7)
        assert query.header.txid == 7
        assert not query.header.qr
        assert query.question.name == "example.com"

    def test_full_roundtrip(self):
        query = Message.query("www.example.com", txid=99)
        response = query.make_response(aa=True)
        response.answers.append(
            ResourceRecord.a("www.example.com", "192.0.2.7", ttl=60))
        response.authorities.append(
            ResourceRecord.ns("example.com", "ns1.example.com"))
        response.additionals.append(
            ResourceRecord.a("ns1.example.com", "192.0.2.53"))
        decoded = Message.from_wire(response.to_wire())
        assert decoded.header.txid == 99
        assert decoded.header.qr
        assert decoded.header.aa
        assert decoded.question.name == "www.example.com"
        assert decoded.a_addresses() == ["192.0.2.7"]
        assert decoded.authorities[0].data.name == "ns1.example.com"
        assert decoded.additionals[0].data.address == "192.0.2.53"

    def test_compression_shrinks_message(self):
        response = Message.query("www.example.com").make_response()
        for i in range(5):
            response.answers.append(ResourceRecord.a(
                "www.example.com", "192.0.2.%d" % i))
        wire = response.to_wire()
        # 5 answers sharing the qname: each answer name is a 2-byte
        # pointer instead of 17 bytes.
        assert len(wire) < 12 + 21 + 5 * (17 + 14)

    def test_make_response_echoes_question_case(self):
        query = Message.query("ExAmPlE.CoM", txid=3)
        response = query.make_response()
        assert response.question.name == "ExAmPlE.CoM"

    def test_make_response_rcode(self):
        response = Message.query("x.example").make_response(
            rcode=constants.RCODE_NXDOMAIN)
        assert response.rcode == constants.RCODE_NXDOMAIN
        assert response.header.qr

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            Message.from_wire(b"\x00" * 5)

    def test_empty_answer_a_addresses(self):
        assert Message.query("x.example").a_addresses() == []

    def test_question_none_when_empty(self):
        message = Message()
        assert message.question is None

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.lists(st.integers(min_value=0, max_value=255), min_size=4,
                    max_size=4))
    def test_query_roundtrip_property(self, txid, octets):
        address = ".".join(str(o) for o in octets)
        query = Message.query("probe.example.com", txid=txid)
        response = query.make_response()
        response.answers.append(
            ResourceRecord.a("probe.example.com", address))
        decoded = Message.from_wire(response.to_wire())
        assert decoded.header.txid == txid
        assert decoded.a_addresses() == [address]

    def test_chaos_txt_roundtrip(self):
        query = Message.query("version.bind", qtype=constants.QTYPE_TXT,
                              qclass=constants.CLASS_CH)
        response = query.make_response()
        response.answers.append(
            ResourceRecord.txt("version.bind", ["9.8.2rc1"]))
        decoded = Message.from_wire(response.to_wire())
        assert decoded.answers[0].data.text == "9.8.2rc1"
        assert decoded.answers[0].rclass == constants.CLASS_CH
