"""Tests for domain-name wire encoding, compression, and 0x20."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.dnswire.name import (
    NameCompressor,
    NameError_,
    apply_0x20,
    decode_name,
    encode_name,
    matches_0x20,
    normalize_name,
    random_0x20_bits,
    recover_0x20_bits,
    split_labels,
)

LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1, max_size=20).filter(
                    lambda s: not s.startswith("-"))
NAME = st.lists(LABEL, min_size=1, max_size=5).map(".".join)


class TestNormalize:
    def test_lowercases(self):
        assert normalize_name("WWW.Example.COM") == "www.example.com"

    def test_strips_trailing_dot(self):
        assert normalize_name("example.com.") == "example.com"

    def test_empty(self):
        assert normalize_name("") == ""

    def test_root(self):
        assert normalize_name(".") == ""


class TestSplitLabels:
    def test_basic(self):
        assert split_labels("a.b.c") == ["a", "b", "c"]

    def test_trailing_dot(self):
        assert split_labels("a.b.") == ["a", "b"]

    def test_empty(self):
        assert split_labels("") == []


class TestEncodeDecode:
    def test_simple_roundtrip(self):
        wire = encode_name("www.example.com")
        name, offset = decode_name(wire, 0)
        assert name == "www.example.com"
        assert offset == len(wire)

    def test_root_name(self):
        assert encode_name("") == b"\x00"
        name, offset = decode_name(b"\x00", 0)
        assert name == ""
        assert offset == 1

    def test_encoding_structure(self):
        assert encode_name("ab.c") == b"\x02ab\x01c\x00"

    def test_label_too_long(self):
        with pytest.raises(NameError_):
            encode_name("a" * 64 + ".com")

    def test_name_too_long(self):
        with pytest.raises(NameError_):
            encode_name(".".join(["a" * 60] * 5))

    def test_truncated_decode(self):
        with pytest.raises(NameError_):
            decode_name(b"\x05ab", 0)

    def test_case_preserved_on_wire(self):
        name, __ = decode_name(encode_name("WwW.ExAmPle.com"), 0)
        assert name == "WwW.ExAmPle.com"

    @given(NAME)
    def test_roundtrip_property(self, name):
        decoded, offset = decode_name(encode_name(name), 0)
        assert decoded == name
        assert offset == len(encode_name(name))


class TestCompression:
    def test_pointer_reuse(self):
        compressor = NameCompressor()
        first = compressor.encode("example.com", 12)
        second = compressor.encode("www.example.com", 12 + len(first))
        # The suffix should have become a 2-byte pointer.
        assert len(second) < len(encode_name("www.example.com"))
        message = b"\x00" * 12 + first + second
        name, __ = decode_name(message, 12 + len(first))
        assert name == "www.example.com"

    def test_identical_name_is_pure_pointer(self):
        compressor = NameCompressor()
        first = compressor.encode("example.com", 12)
        second = compressor.encode("example.com", 12 + len(first))
        assert len(second) == 2

    def test_decode_rejects_forward_pointer(self):
        # Pointer at offset 0 pointing to offset 10 (forward).
        data = bytes([0xC0, 10]) + b"\x00" * 12
        with pytest.raises(NameError_):
            decode_name(data, 0)

    def test_decode_rejects_pointer_loop(self):
        # Two pointers pointing at each other.
        data = bytes([0xC0, 2, 0xC0, 0])
        with pytest.raises(NameError_):
            decode_name(data, 2)


class Test0x20:
    def test_apply_all_ones(self):
        assert apply_0x20("abc.com", 0b111111) == "ABC.COM"

    def test_apply_all_zeros(self):
        assert apply_0x20("ABC.COM", 0) == "abc.com"

    def test_digits_skip_bits(self):
        # Digits consume no bits: bit 0 applies to 'a', bit 1 to 'b'.
        assert apply_0x20("a1b.com", 0b10) == "a1B.com"

    def test_recover_inverse(self):
        name = apply_0x20("facebook.com", 0b101010101)
        bits, count = recover_0x20_bits(name)
        assert bits == 0b101010101
        assert count == len("facebookcom")

    @given(NAME, st.integers(min_value=0, max_value=2 ** 30))
    def test_roundtrip_property(self, name, bits):
        cased = apply_0x20(name, bits)
        recovered, count = recover_0x20_bits(cased)
        assert recovered == bits & ((1 << count) - 1)
        assert normalize_name(cased) == normalize_name(name)

    def test_random_bits_cover_name(self):
        rng = random.Random(1)
        bits = random_0x20_bits("example.com", rng)
        assert 0 <= bits < (1 << len("examplecom"))

    def test_random_bits_no_alpha(self):
        rng = random.Random(1)
        assert random_0x20_bits("123.456", rng) == 0

    def test_matches_exact(self):
        assert matches_0x20("ExAmple.com", "ExAmple.com")
        assert not matches_0x20("ExAmple.com", "example.com")
