"""Tests for resource-record data types and their codecs."""

import pytest

from repro.dnswire import constants
from repro.dnswire.records import (
    AData,
    CnameData,
    MxData,
    NsData,
    OpaqueData,
    PtrData,
    ResourceRecord,
    SoaData,
    TxtData,
    decode_rdata,
)


def roundtrip(record):
    wire = record.to_wire()
    decoded, offset = ResourceRecord.from_wire(wire, 0)
    assert offset == len(wire)
    return decoded


class TestAData:
    def test_roundtrip(self):
        record = ResourceRecord.a("example.com", "192.0.2.1", ttl=300)
        decoded = roundtrip(record)
        assert decoded.data.address == "192.0.2.1"
        assert decoded.ttl == 300
        assert decoded.rtype == constants.QTYPE_A

    def test_bad_address(self):
        with pytest.raises(ValueError):
            AData("1.2.3").to_wire()
        with pytest.raises(ValueError):
            AData("1.2.3.999").to_wire()

    def test_equality(self):
        assert AData("1.2.3.4") == AData("1.2.3.4")
        assert AData("1.2.3.4") != AData("1.2.3.5")
        assert hash(AData("1.2.3.4")) == hash(AData("1.2.3.4"))


class TestNameData:
    def test_ns_roundtrip(self):
        decoded = roundtrip(ResourceRecord.ns("example.com",
                                              "ns1.example.com"))
        assert isinstance(decoded.data, NsData)
        assert decoded.data.name == "ns1.example.com"

    def test_cname_roundtrip(self):
        decoded = roundtrip(ResourceRecord.cname("www.example.com",
                                                 "example.com"))
        assert isinstance(decoded.data, CnameData)
        assert decoded.data.name == "example.com"

    def test_ptr_roundtrip(self):
        decoded = roundtrip(ResourceRecord.ptr(
            "1.2.0.192.in-addr.arpa", "host.example.com"))
        assert isinstance(decoded.data, PtrData)
        assert decoded.data.name == "host.example.com"

    def test_cross_type_inequality(self):
        assert NsData("a.example") != CnameData("a.example")


class TestTxtData:
    def test_roundtrip(self):
        decoded = roundtrip(ResourceRecord.txt("version.bind", ["9.8.2"]))
        assert decoded.data.text == "9.8.2"
        assert decoded.rclass == constants.CLASS_CH

    def test_string_coerced_to_list(self):
        assert TxtData("hello").strings == ["hello"]

    def test_long_string_chunked(self):
        data = TxtData("x" * 300)
        wire = data.to_wire()
        decoded = TxtData.from_wire(None, 0, len(wire), message=wire)
        assert decoded.text == "x" * 300
        assert len(decoded.strings) == 2

    def test_empty_string(self):
        wire = TxtData("").to_wire()
        assert wire == b"\x00"


class TestMxData:
    def test_roundtrip(self):
        decoded = roundtrip(ResourceRecord.mx("example.com", 10,
                                              "mail.example.com"))
        assert decoded.data.preference == 10
        assert decoded.data.exchange == "mail.example.com"


class TestSoaData:
    def test_roundtrip(self):
        decoded = roundtrip(ResourceRecord.soa(
            "example.com", "ns1.example.com", "hostmaster.example.com"))
        assert decoded.data.mname == "ns1.example.com"
        assert decoded.data.serial == 1

    def test_custom_fields(self):
        soa = SoaData("m.example", "r.example", serial=42, refresh=7200,
                      retry=300, expire=100000, minimum=30)
        wire = ResourceRecord("example.com", constants.QTYPE_SOA,
                              constants.CLASS_IN, 60, soa).to_wire()
        decoded, __ = ResourceRecord.from_wire(wire, 0)
        assert decoded.data.serial == 42
        assert decoded.data.refresh == 7200
        assert decoded.data.expire == 100000


class TestOpaqueData:
    def test_unknown_type_preserved(self):
        raw = b"\x01\x02\x03"
        data = decode_rdata(99, raw, 0, 3)
        assert isinstance(data, OpaqueData)
        assert data.raw == raw
        assert data.to_wire() == raw


class TestResourceRecord:
    def test_with_ttl_copies(self):
        record = ResourceRecord.a("a.example", "1.2.3.4", ttl=100)
        copy = record.with_ttl(5)
        assert copy.ttl == 5
        assert record.ttl == 100
        assert copy.data is record.data

    def test_equality_ignores_ttl_and_case(self):
        left = ResourceRecord.a("A.Example", "1.2.3.4", ttl=1)
        right = ResourceRecord.a("a.example", "1.2.3.4", ttl=999)
        assert left == right
        assert hash(left) == hash(right)

    def test_ttl_masked_to_32_bits(self):
        record = ResourceRecord.a("a.example", "1.2.3.4", ttl=2 ** 33)
        decoded = roundtrip(record)
        assert decoded.ttl == (2 ** 33) & 0xFFFFFFFF
