"""Ablation: what each prefilter rule contributes (§3.4 design choices).

The paper argues AS matching alone cannot filter CDN-hosted domains
(answers span many foreign ASes) and motivates the rDNS and certificate
rules.  This ablation reruns the prefilter over the same Alexa-set
observations with rule subsets and measures how much legitimate traffic
would spill into the expensive content-analysis stage without each rule.
"""

from repro.core.prefilter import Prefilterer
from repro.datasets import all_domains


def rerun_prefilter(scenario, report, **rule_flags):
    prefilterer = Prefilterer(
        scenario.network, scenario.service, scenario.as_registry,
        scenario.rdns, ca=scenario.ca,
        known_cdn_common_names=[p.common_name.lstrip("*.")
                                for p in scenario.cdn_providers],
        probe_source_ip=scenario.pipeline_source_ip, **rule_flags)
    catalog = {d.name: d for d in all_domains()}
    return prefilterer.process(report.observations, catalog)


def test_ablation_prefilter_rules(scenario, pipeline_reports, benchmark):
    report = pipeline_reports["Alexa"]  # CDN-heavy: the hard case

    def run_all():
        return {
            "AS only": rerun_prefilter(
                scenario, report, enable_rdns_rule=False,
                enable_cert_rule=False),
            "AS+rDNS": rerun_prefilter(scenario, report,
                                       enable_cert_rule=False),
            "AS+cert": rerun_prefilter(scenario, report,
                                       enable_rdns_rule=False),
            "full": rerun_prefilter(scenario, report),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("Prefilter ablation over the Alexa set (unknown = spills to "
          "content analysis)")
    shares = {}
    for name, result in results.items():
        stats = result.stats()
        shares[name] = stats["unknown_share"]
        print("  %-8s legitimate %5.1f%%   unknown %5.1f%%"
              % (name, 100 * stats["legitimate_share"],
                 100 * stats["unknown_share"]))

    # Each added rule monotonically reduces the unknown spill.
    assert shares["full"] <= shares["AS+cert"] <= shares["AS only"]
    assert shares["full"] <= shares["AS+rDNS"] <= shares["AS only"]
    # The certificate rule is the decisive one for CDN answers.
    assert shares["AS+cert"] < 0.7 * shares["AS only"], \
        "the cert/CDN rule should filter a large share of CDN answers"
    # No rule subset loses bogus responses: the truly-suspicious
    # resolvers of the full run stay suspicious in every ablation.
    full_suspicious = results["full"].unknown_resolvers()
    for name, result in results.items():
        assert full_suspicious <= result.unknown_resolvers(), name
