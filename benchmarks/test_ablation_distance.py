"""Ablation: the seven distance features of the coarse clustering (§3.6).

Builds a corpus of pages with known family labels (censorship landings,
parking lots, search pages, error pages, router logins, legitimate
sites) in several variants each, clusters it with the full
seven-feature distance and with each feature removed, and scores
cluster purity against the families.  The full distance should be at
least as pure as the best ablation, and no single feature's removal
should collapse the clustering.
"""

from repro.core.clustering import hierarchical_cluster
from repro.core.distance import PageDistance
from repro.core.features import extract_features
from repro.websim import SiteLibrary
from repro.websim import pages

THRESHOLD = 0.30


def build_corpus():
    """(family, html) pairs: 6 families, several variants each."""
    corpus = []
    for country in ("TR", "ID", "RU", "GR"):
        corpus.append(("censorship", pages.censorship_landing(country)))
    for index, domain in enumerate(("dead-a.com", "dead-b.net",
                                    "dead-c.org")):
        corpus.append(("parking", pages.parking_page(domain, seed=index)))
    for provider in ("WebSearch", "FindFast", "LookupNow"):
        corpus.append(("search", pages.search_page(provider=provider)))
    for status in (404, 500, 503):
        corpus.append(("error", pages.error_page(status)))
    for vendor in ("TP-LINK", "ZyXEL"):
        corpus.append(("login", pages.router_login(vendor)))
    library = SiteLibrary(seed=3)
    for domain in ("alpha.example", "beta.example", "gamma.example"):
        corpus.append(("site", library.page_for(domain)))
    return corpus


def purity(clusters, families):
    """Weighted purity: majority-family share per cluster."""
    total = 0
    agreeing = 0
    for cluster in clusters:
        members = [families[index] for index in cluster.indices]
        best = max(set(members), key=members.count)
        agreeing += members.count(best)
        total += len(members)
    return agreeing / total if total else 1.0


def test_ablation_distance_features(benchmark):
    corpus = build_corpus()
    families = [family for family, __ in corpus]
    profiles = [extract_features(html) for __, html in corpus]

    def cluster_with(distance):
        clusters, __ = hierarchical_cluster(profiles, distance, THRESHOLD)
        return clusters

    def run_all():
        results = {}
        full = PageDistance()
        results["full"] = cluster_with(full)
        for dropped in PageDistance.FEATURE_NAMES:
            weights = {name: 1.0 for name in PageDistance.FEATURE_NAMES
                       if name != dropped}
            results["-%s" % dropped] = cluster_with(
                PageDistance(weights=weights))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("Distance-feature ablation (%d pages, 6 families)"
          % len(corpus))
    scores = {}
    for name, clusters in results.items():
        scores[name] = purity(clusters, families)
        print("  %-12s clusters=%2d  purity=%.2f"
              % (name, len(clusters), scores[name]))

    assert scores["full"] >= 0.9, "full distance must separate families"
    # Robustness: no single feature is a single point of failure.
    for name, score in scores.items():
        assert score >= 0.7, "%s collapsed the clustering" % name
    # The full distance is at least as good as the average ablation.
    ablation_scores = [s for n, s in scores.items() if n != "full"]
    assert scores["full"] >= sum(ablation_scores) / len(ablation_scores) \
        - 1e-9
