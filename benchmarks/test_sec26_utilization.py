"""Section 2.6: resolver utilization via DNS cache snooping.

Paper: 83.2% of resolvers answer the snooping probes; 7.3% always reply
with empty responses; 3.3% send a single response per TLD then fall
silent; 4.0% show static or zero TTLs; 61.6% are in use (>= 3 TLDs
re-added after expiry), 38.7% of all responders frequently (re-add
within 5 s); 19.6% keep resetting TTLs ahead of expiry; 4.0% decrease
without observable expiry.
"""

from repro.analysis.utilization import (
    CLASS_DECREASING,
    CLASS_EMPTY,
    CLASS_IN_USE,
    CLASS_RESETTING,
    CLASS_SINGLE,
    format_utilization,
    utilization_summary,
)
from benchmarks.conftest import paper_vs

PAPER = {
    "responding": 83.2,
    CLASS_EMPTY: 7.3,
    CLASS_SINGLE: 3.3,
    CLASS_IN_USE: 61.6,
    CLASS_RESETTING: 19.6,
    CLASS_DECREASING: 4.0,
    "frequent": 38.7,
}


def test_sec26_utilization(snooping_traces, benchmark):
    summary = benchmark(utilization_summary, snooping_traces)

    print()
    print("Section 2.6 — utilization via cache snooping")
    print(format_utilization(summary))
    shares = summary["class_shares_pct"]
    print(paper_vs("responding", PAPER["responding"],
                   summary["responding_share_pct"]))
    for cls in (CLASS_EMPTY, CLASS_SINGLE, CLASS_IN_USE, CLASS_RESETTING,
                CLASS_DECREASING):
        print(paper_vs(cls, PAPER[cls], shares.get(cls, 0.0)))
    print(paper_vs("frequently used", PAPER["frequent"],
                   summary["frequent_share_pct"]))

    assert 70 < summary["responding_share_pct"] < 95
    assert 45 < summary["in_use_share_pct"] < 75
    assert 25 < summary["frequent_share_pct"] < 55
    assert 10 < shares.get(CLASS_RESETTING, 0) < 30
    assert shares.get(CLASS_EMPTY, 0) < 18
    # The in-use majority finding is the headline: most open resolvers
    # serve real clients.
    assert summary["in_use_share_pct"] > shares.get(CLASS_RESETTING, 0)
