"""Section 4.1: DNS-based prefiltering effectiveness.

Paper: 85.8% (MX set) to 93.2% (Antivirus set) of responses are filtered
as legitimate; 4.9-8.4% carry empty answer sections (highest for the
Malware set); unexpected tuples range from 0.6% (MX) to 4.4% (Malware),
with the NX set the outlier at 13.7%.  Among suspicious resolvers: up to
15.1% return their own IP for at least one domain; 50.4% return the same
IP set for more than one domain; 4.4% return a single static IP for
everything; 2.0% answer with NS records only.
"""

from repro.analysis.manipulation import (
    prefilter_summary,
    suspicious_behavior_stats,
    unfetchable_breakdown,
)
from benchmarks.conftest import paper_vs

PAPER_RANGES = {
    # category: (legit_lo, legit_hi, unknown_lo, unknown_hi)
    "Antivirus": (0.85, 0.97, 0.001, 0.05),
    "Banking": (0.82, 0.97, 0.001, 0.05),
    "MX": (0.78, 0.97, 0.001, 0.06),
    "Malware": (0.30, 0.95, 0.005, 0.30),
    "NX": (0.55, 0.99, 0.005, 0.25),
}


def test_sec41_prefilter(pipeline_reports, benchmark):
    summaries = benchmark(
        lambda: {category: prefilter_summary(report)
                 for category, report in pipeline_reports.items()})

    print()
    print("Section 4.1 — prefilter buckets per domain set")
    print("  %-12s %10s %8s %8s %8s" % ("set", "responses", "legit",
                                        "empty", "unknown"))
    for category, summary in summaries.items():
        print("  %-12s %10d %7.1f%% %7.1f%% %7.1f%%" % (
            category, summary["observations"],
            100 * summary["legitimate_share"],
            100 * summary["empty_share"],
            100 * summary["unknown_share"]))

    censored_sets = ("Adult", "Gambling", "Filesharing",
                     "Dating")
    web_sets = [c for c in summaries
                if c not in ("NX", "Malware", "GroundTruth", "MX")
                and c not in censored_sets]
    for category in web_sets:
        assert summaries[category]["legitimate_share"] > 0.75, category
        assert summaries[category]["unknown_share"] < 0.25, category
    # The censorship-heavy sets run lower: most of their suspicious
    # tuples ARE the censorship the study is after.
    for category in censored_sets:
        assert summaries[category]["legitimate_share"] > 0.55, category
    # The Malware set has the highest empty share (protective resolvers).
    malware_empty = summaries["Malware"]["empty_share"]
    print(paper_vs("Malware empty share (highest)", 8.4,
                   100 * malware_empty))
    assert malware_empty >= max(
        summaries[c]["empty_share"] for c in web_sets) - 0.02
    # Benign sets (Banking/Antivirus/MX/GT) have less manipulation than
    # censored sets (Adult/Gambling).
    assert summaries["Banking"]["unknown_share"] < \
        summaries["Adult"]["unknown_share"]


def test_sec41_suspicious_dns_behaviour(pipeline_reports, benchmark):
    reports = {c: r for c, r in pipeline_reports.items()
               if c != "GroundTruth"}
    stats = benchmark(suspicious_behavior_stats, reports)

    print()
    print("Section 4.1 — DNS-level behaviour of suspicious resolvers")
    print(paper_vs("return own IP for >=1 domain (max/set)", 15.1,
                   stats["self_ip_any_share_pct"]))
    print(paper_vs("same IP set for >1 domain", 50.4,
                   stats["same_set_multi_share_pct"]))
    print(paper_vs("static single IP for everything", 4.4,
                   stats["static_single_share_pct"]))
    print(paper_vs("NS records only", 2.0,
                   stats["ns_only_share_pct"]))
    print(paper_vs("self-IP across >=75% of sets (count)", "8,194",
                   str(stats["self_ip_most_sets"])))

    assert stats["suspicious_resolvers"] > 0
    assert stats["self_ip_any_share_pct"] < 25
    assert stats["same_set_multi_share_pct"] > 25, \
        "half the suspicious resolvers reuse one IP set across domains"
    assert 0.5 < stats["static_single_share_pct"] < 20
    assert stats["self_ip_most_sets"] >= 1


def test_sec42_unfetchable_breakdown(scenario, pipeline_reports,
                                     benchmark):
    """§4.2: of the tuples with no HTTP payload, up to 65.1% point at
    LAN addresses and up to 32.2% into the resolver's own AS or /24
    (captive portals answering their own clients only)."""
    def merge():
        merged = type(pipeline_reports["Alexa"])()
        for report in pipeline_reports.values():
            merged.failed_captures.extend(report.failed_captures)
        return unfetchable_breakdown(merged, scenario.as_registry)

    stats = benchmark(merge)
    print()
    print(paper_vs("unfetchable pointing at LAN (max/set)", 65.1,
                   stats["lan_share_pct"]))
    print(paper_vs("unfetchable in own AS//24 (max/set)", 32.2,
                   stats["same_network_share_pct"]))
    assert stats["unfetchable"] > 0
    assert stats["lan_share_pct"] > 10
    assert stats["same_network_share_pct"] > 1
