"""Shared fixtures for the reproduction benchmarks.

The heavyweight measurement campaigns run once per session here; each
benchmark file then regenerates one of the paper's tables or figures from
the collected data, prints it next to the paper's numbers, and asserts the
qualitative shape.

Scale: ``REPRO_BENCH_SCALE`` (default 1:12000 of the paper's Internet).
Smaller values give closer statistics and longer runtimes.
"""

import os

import pytest

from repro.datasets import SNOOPING_TLDS
from repro.netsim.clock import DAY
from repro.scanner import (
    BannerGrabber,
    CacheSnoopingProber,
    ChaosScanner,
    FingerprintMatcher,
)
from repro.scanner.campaign import WeeklySnapshot
from repro.scenario import ScenarioConfig, build_scenario

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "12000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
CAMPAIGN_WEEKS = 55
SNOOP_SAMPLE = int(os.environ.get("REPRO_BENCH_SNOOP_SAMPLE", "400"))


def paper_vs(label, paper, measured, unit="%"):
    """One aligned paper-vs-measured output line."""
    return "  %-44s paper: %10s   measured: %10s" % (
        label,
        "%.1f%s" % (paper, unit) if isinstance(paper, float) else paper,
        "%.1f%s" % (measured, unit) if isinstance(measured, float)
        else measured)


@pytest.fixture(scope="session")
def scenario():
    return build_scenario(ScenarioConfig(scale=BENCH_SCALE,
                                         seed=BENCH_SEED))


@pytest.fixture(scope="session")
def campaign(scenario):
    """The 13-month weekly campaign, plus a day-1 cohort re-probe."""
    camp = scenario.new_campaign(verify=True)
    # Week 0 by hand so the day-1 churn probe (Fig. 2) can happen.
    scenario.churn.step()
    result0 = camp.scanner.scan(camp.target_space)
    camp.snapshots.append(WeeklySnapshot(0, result0))
    # Snapshot the cohort's rDNS records *at scan time*: once a host
    # rebinds, the live registry forgets its old PTR (§2.5 analysis).
    camp.cohort_rdns = {ip: scenario.rdns.ptr(ip)
                        for ip in result0.noerror
                        if scenario.rdns.ptr(ip)}
    scenario.clock.advance(DAY)
    scenario.churn.step()
    camp.day1_result = camp.scanner.scan_addresses(
        sorted(result0.responders))
    scenario.clock.advance(6 * DAY)
    for week in range(1, CAMPAIGN_WEEKS):
        camp.run_week(verify=(week == CAMPAIGN_WEEKS - 1))
    return camp


@pytest.fixture(scope="session")
def live_resolvers(campaign):
    """Open resolvers identified right before the domain scans (2015)."""
    return sorted(campaign.last().result.noerror)


@pytest.fixture(scope="session")
def chaos_observations(scenario, live_resolvers):
    scanner = ChaosScanner(scenario.network, scenario.scanner_ip)
    return scanner.scan(live_resolvers)


@pytest.fixture(scope="session")
def device_classifications(scenario, live_resolvers):
    grabber = BannerGrabber(scenario.network, scenario.scanner_ip)
    banners = grabber.grab_all(live_resolvers)
    return FingerprintMatcher().classify_all(banners)


@pytest.fixture(scope="session")
def snooping_traces(scenario, live_resolvers):
    prober = CacheSnoopingProber(scenario.network, scenario.scanner_ip,
                                 SNOOPING_TLDS, duration_hours=36)
    return prober.run(live_resolvers[:SNOOP_SAMPLE])


@pytest.fixture(scope="session")
def pipeline_reports(scenario, live_resolvers):
    """One full pipeline run per domain category (plus ground truth)."""
    from repro.datasets import (
        ALL_CATEGORIES,
        DOMAIN_SETS,
        GROUND_TRUTH_DOMAIN,
        ScanDomain,
    )
    reports = {}
    for category in ALL_CATEGORIES:
        pipeline = scenario.new_pipeline()
        reports[category] = pipeline.run(live_resolvers,
                                         list(DOMAIN_SETS[category]))
    gt_pipeline = scenario.new_pipeline()
    reports["GroundTruth"] = gt_pipeline.run(
        live_resolvers,
        [ScanDomain(GROUND_TRUTH_DOMAIN, "GroundTruth")])
    return reports
