"""Section 4.3 case studies: ads, proxies, phishing, mail, malware.

Paper: 281 resolvers redirect/replace ad traffic via 4 IPs (two inject
banners, two serve suspicious JavaScript); 14 resolvers/7 IPs blank ads;
7 resolvers serve a Google-lookalike with extra banners; 10,179
resolvers point at 10 HTTP-only proxy IPs and 99 at TLS-capable proxies;
1,360 resolvers serve phishing from 39 hosts (the PayPal clone is 46
<img> slices plus a form POSTing to a .php); 64.7% of MX-set suspicious
resolvers redirect to live mail listeners, 8 of them to hosts copying
the genuine Gmail/Yandex banners; 228 resolvers serve fake Flash/Java
updates from 30 IPs.  (Counts scale with 1/REPRO_BENCH_SCALE, with small
floors so every phenomenon stays observable.)
"""

from repro.analysis.casestudies import case_study_summary, \
    format_case_studies
from benchmarks.conftest import paper_vs


def merged_reports_summary(scenario, pipeline_reports):
    """Case studies span several sets: merge the relevant reports."""
    merged = type(pipeline_reports["Ads"])()
    for category in ("Ads", "Banking", "MX", "Misc", "Alexa"):
        report = pipeline_reports[category]
        merged.labeled.extend(report.labeled)
        merged.mail_captures.extend(report.mail_captures)
        merged.http_captures.extend(report.http_captures)
        merged.ground_truth_bodies.update(report.ground_truth_bodies)
    return case_study_summary(merged, network=scenario.network)


def test_sec43_case_studies(scenario, pipeline_reports, benchmark):
    summary = benchmark(merged_reports_summary, scenario,
                        pipeline_reports)

    print()
    print("Section 4.3 — case studies")
    print(format_case_studies(summary))

    # Ad manipulation: injectors present, few IPs.
    assert summary["ad_injection"]["resolvers"] >= 2
    assert summary["ad_injection"]["ips"] <= 6
    assert summary["ad_blanking"]["resolvers"] >= 1
    assert summary["fake_search_ads"]["resolvers"] >= 1

    # Transparent proxies: HTTP-only far outnumber TLS-capable
    # (paper: 10,179 vs 99).
    assert summary["proxy_http_only"]["resolvers"] > \
        summary["proxy_tls"]["resolvers"]
    # The HTTP-only proxy IP set may include ad-blanking hosts:
    # for a page without ad markup their "filtered" output is
    # byte-identical to the original, i.e. indistinguishable from
    # transparent proxying.
    assert summary["proxy_http_only"]["ips"] <= 20
    print(paper_vs("HTTP-only : TLS proxy resolvers", "~100:1",
                   "%d:%d" % (summary["proxy_http_only"]["resolvers"],
                              summary["proxy_tls"]["resolvers"])))

    # Phishing: the PayPal image-slice page with its .php form.
    assert summary["phishing"]["resolvers"] >= 3
    paypal = summary["phishing_paypal"]
    assert paypal["resolvers"] >= 1
    assert paypal["img_tags"] == 46
    assert paypal["posts_to_php"]
    print(paper_vs("PayPal clone <img> slices", "46",
                   str(paypal["img_tags"])))
    assert summary["phishing_bank"]["resolvers"] >= 1

    # Malware updates: few IPs, more resolvers.
    assert summary["malware"]["resolvers"] >= 2
    assert summary["malware"]["ips"] <= 8

    # Mail: listeners exist; a couple of hosts copy genuine banners.
    assert summary["mail_listeners"]["resolvers"] >= 2
    assert summary["mail_banner_copies"]["resolvers"] >= 1
    assert summary["mail_banner_copies"]["resolvers"] <= \
        summary["mail_listeners"]["resolvers"]


def test_sec43_fine_grained_diff_clusters(pipeline_reports, benchmark):
    """The fine-grained diff clustering isolates small page
    modifications (injected banners/scripts) from the original pages —
    the mechanism behind the ad-injection findings."""
    report = pipeline_reports["Ads"]
    clusters = benchmark(lambda: report.diff_clusters)
    print()
    print("Fine-grained diff clusters over the Ads set: %d"
          % len(clusters))
    assert clusters, "small modifications of original pages must exist"
    # At least one cluster groups captures whose modification adds
    # markup (the injected banner/script) rather than removing it.
    def additions(cluster):
        return sum(sum(profile.added.values()) for profile in cluster)
    assert any(additions(cluster) > 0 for cluster in clusters)
    for cluster in clusters:
        for profile in cluster:
            assert 0 < profile.modification_size <= 40


def test_sec43_mail_redirection_share(pipeline_reports, benchmark):
    report = pipeline_reports["MX"]

    def mail_share():
        suspicious = report.prefilter.unknown_resolvers()
        listeners = {capture.resolver_ip
                     for capture in report.mail_captures
                     if capture.fetched}
        return suspicious, listeners

    suspicious, listeners = benchmark(mail_share)
    share = 100.0 * len(listeners & suspicious) / max(1, len(suspicious))
    print()
    print(paper_vs("MX suspicious resolvers hitting live mail hosts",
                   64.7, share))
    assert share > 35, \
        "most redirected mail traffic lands on listening mail hosts"
