"""Table 2: resolver fluctuation per Regional Internet Registry.

Paper (Jan 2014 -> Feb 2015): RIPE 11.19M -> 7.48M (-33.2%), APNIC
10.43M -> 7.88M (-24.5%), LACNIC 5.14M -> 3.34M (-35.1%), ARIN 3.14M ->
2.76M (-12.1%), AFRINIC 1.31M -> 1.19M (-8.6%).
"""

from repro.analysis.geography import format_fluctuation, rir_fluctuation
from benchmarks.conftest import paper_vs

PAPER_ORDER = ["RIPE", "APNIC", "LACNIC", "ARIN", "AFRINIC"]
PAPER_DELTAS = {"RIPE": -33.2, "APNIC": -24.5, "LACNIC": -35.1,
                "ARIN": -12.1, "AFRINIC": -8.6}


def test_table2_rirs(scenario, campaign, benchmark):
    rows = benchmark(rir_fluctuation, campaign.first().result,
                     campaign.last().result, scenario.geoip)

    print()
    print("Table 2 — resolver fluctuation per RIR")
    print(format_fluctuation(rows, "RIR"))
    for row in rows:
        if row["rir"] in PAPER_DELTAS:
            print(paper_vs("%s change" % row["rir"],
                           PAPER_DELTAS[row["rir"]], row["delta_pct"]))

    measured = [row["rir"] for row in rows if row["rir"] != "UNKNOWN"]
    # The two giants (RIPE/APNIC) lead; AFRINIC is smallest.
    assert set(measured[:2]) == {"RIPE", "APNIC"}
    assert measured[-1] == "AFRINIC"
    by_rir = {row["rir"]: row for row in rows}
    # Every registry declines; ARIN/AFRINIC decline least.
    for rir in PAPER_ORDER:
        assert by_rir[rir]["delta_pct"] < 0
    assert by_rir["AFRINIC"]["delta_pct"] > by_rir["RIPE"]["delta_pct"]
    assert by_rir["ARIN"]["delta_pct"] > by_rir["LACNIC"]["delta_pct"]
