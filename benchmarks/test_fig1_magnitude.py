"""Figure 1: weekly counts of responding DNS resolvers by status code.

Paper: 26.8M NOERROR resolvers at the first scan (Jan 31, 2014) declining
to 17.8M (Feb 2015, ratio 0.66); REFUSED stable throughout; SERVFAIL
fluctuating well below both.
"""

from repro.analysis.magnitude import (
    decline_ratio,
    format_series,
    magnitude_series,
)
from benchmarks.conftest import BENCH_SCALE, paper_vs


def test_fig1_magnitude(campaign, benchmark):
    series = benchmark(magnitude_series, campaign.snapshots)

    print()
    print("Figure 1 — responding resolvers per weekly scan "
          "(scale 1:%d)" % BENCH_SCALE)
    print(format_series(series[:5] + series[-5:]))
    ratio = decline_ratio(series)
    refused_first = series[0]["refused"]
    refused_last = series[-1]["refused"]
    print(paper_vs("NOERROR decline ratio (17.8M/26.8M)", 0.664 * 100,
                   ratio * 100))
    print(paper_vs("REFUSED stability (last/first)", 100.0,
                   100.0 * refused_last / max(1, refused_first)))

    # Shape assertions.
    assert series[0]["noerror"] > 0
    assert 0.50 < ratio < 0.85, "NOERROR should decline by roughly a third"
    assert abs(refused_last - refused_first) <= 0.25 * refused_first + 5, \
        "REFUSED population should stay roughly stable"
    for row in series:
        assert row["servfail"] < row["noerror"]
        assert row["all"] >= row["noerror"]
