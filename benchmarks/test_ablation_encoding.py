"""Ablation: the 0x20 redundancy in the resolver-ID encoding (§3.3).

The domain scans pack 25 bits of resolver identity into the transaction
ID (16 bits) and UDP source port (9 bits); because "some resolvers
change the destination port of the response for some reason", the same
9 bits ride redundantly in the 0x20 case pattern of the query name.
This ablation simulates a population where a fraction of resolvers
rewrite the response port and measures attribution accuracy with and
without the 0x20 fallback.
"""

import random

from repro.dnswire.name import recover_0x20_bits
from repro.scanner.encoding import PORT_BITS, TXID_BITS, ResolverIdCodec

DOMAIN = "wikipedia.org"
POPULATION = 4000
REWRITE_SHARE = 0.05  # resolvers that mangle the response port


def simulate(codec, use_0x20_fallback, rng):
    """Attribution accuracy over a population of encoded queries.

    Identifiers are spread over the full 25-bit space — with 20M
    resolvers the high (port-carried) bits are in active use.
    """
    from repro.scanner.encoding import MAX_RESOLVER_ID
    correct = 0
    step = MAX_RESOLVER_ID // POPULATION
    for index in range(POPULATION):
        resolver_id = index * step
        txid, src_port, qname = codec.encode(resolver_id, DOMAIN)
        response_port = src_port
        if rng.random() < REWRITE_SHARE:
            response_port = rng.randint(1024, 5000)  # rewritten
        if use_0x20_fallback:
            decoded = codec.decode(txid, response_port, qname)
        else:
            # Port-only decoding: out-of-window ports lose the high bits.
            window = 1 << PORT_BITS
            if codec.base_port <= response_port < codec.base_port + window:
                high = response_port - codec.base_port
            else:
                high = 0  # no redundancy to fall back on
            decoded = (high << TXID_BITS) | txid
        if decoded == resolver_id:
            correct += 1
    return correct / POPULATION


def test_ablation_0x20_redundancy(benchmark):
    codec = ResolverIdCodec()

    def run_both():
        rng = random.Random(11)
        with_fallback = simulate(codec, True, rng)
        rng = random.Random(11)
        without = simulate(codec, False, rng)
        return with_fallback, without

    with_fallback, without = benchmark.pedantic(run_both, rounds=1,
                                                iterations=1)

    print()
    print("Resolver-ID attribution with %d resolvers, %.0f%% of them "
          "rewriting response ports" % (POPULATION,
                                        100 * REWRITE_SHARE))
    print("  txid+port only:        %.2f%% attributed"
          % (100 * without))
    print("  with 0x20 redundancy:  %.2f%% attributed"
          % (100 * with_fallback))

    # The 0x20 fallback recovers everything the port loses ('wikipedia
    # org' carries all 9 redundant bits).
    assert with_fallback == 1.0
    assert without < 1.0
    # Only resolvers with the low 9 port bits zero survive by accident.
    assert without <= 1.0 - REWRITE_SHARE * 0.8


def test_ablation_0x20_capacity(benchmark):
    """Short names cannot carry all 9 bits — quantify the capacity."""
    codec = ResolverIdCodec()
    benchmark.pedantic(lambda: recover_0x20_bits("wikipedia.org"),
                       rounds=1, iterations=1)
    print()
    print("0x20 bit capacity by query name:")
    for name in ("qq.com", "bet365.com", "wikipedia.org",
                 "liveupdate.symantecliveupdate.com"):
        __, capacity = recover_0x20_bits(name.upper())
        recoverable = min(capacity, PORT_BITS)
        print("  %-36s %2d letters -> %d/9 redundant bits"
              % (name, capacity, recoverable))
        if capacity >= PORT_BITS:
            resolver_id = (0b101010101 << TXID_BITS) | 0x42
            txid, __, qname = codec.encode(resolver_id, name)
            assert codec.decode(txid, 53, qname) == resolver_id
