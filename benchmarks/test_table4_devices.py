"""Table 4: device fingerprinting of TCP-responding resolvers.

Paper: 26.3% of resolvers answered on at least one TCP port.  Hardware:
Router 34.1%, Embedded 30.6%, Firewall 1.9%, Camera 1.8%, DVR 1.2%,
Others 1.1%, Unknown 29.3%.  OS: ZyNOS alone runs on 16.6% (ZyXEL CPE),
with Linux the largest named OS and a large Unknown remainder.
"""

from repro.analysis.devices import (
    device_table,
    format_device_table,
    share_of,
)
from benchmarks.conftest import paper_vs

PAPER_HARDWARE = {"Router": 34.1, "Embedded": 30.6, "Firewall": 1.9,
                  "Camera": 1.8, "DVR": 1.2, "Others": 1.1,
                  "Unknown": 29.3}


def test_table4_devices(live_resolvers, device_classifications,
                        benchmark):
    table = benchmark(device_table, device_classifications,
                      len(live_resolvers))

    print()
    print("Table 4 — device fingerprinting")
    print(format_device_table(table))
    print(paper_vs("TCP-responding share", 26.3,
                   table["tcp_responding_share_pct"]))
    for name, paper_share in PAPER_HARDWARE.items():
        print(paper_vs("hardware %s" % name, paper_share,
                       share_of(table, "hardware", name)))
    print(paper_vs("OS ZyNOS", 16.6, share_of(table, "os", "ZyNOS")))
    print(paper_vs("OS Linux", 23.2, share_of(table, "os", "Linux")))

    assert 18 < table["tcp_responding_share_pct"] < 36
    # Routers and embedded devices dominate; cameras/DVRs/firewalls are
    # small clusters; about a third stays unidentifiable.
    hardware_ranking = [row["name"] for row in table["hardware"][:3]]
    assert set(hardware_ranking) == {"Router", "Embedded", "Unknown"}
    assert share_of(table, "hardware", "Router") > 25
    assert share_of(table, "hardware", "Camera") < 6
    assert share_of(table, "hardware", "DVR") < 6
    # ZyNOS is the signature consumer-CPE OS.
    assert 10 < share_of(table, "os", "ZyNOS") < 25
    assert share_of(table, "os", "Linux") > share_of(table, "os",
                                                     "ZyNOS") * 0.8
