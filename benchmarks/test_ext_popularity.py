"""Extension (§2.6 follow-up): resolver popularity via fine-grained
cache snooping.

The paper suggests "a more fine-grained DNS cache snooping technique to
evaluate the time gap between recaching entries, aiming to approximate
the popularity of open resolvers" (Rajab et al.).  This benchmark builds
resolvers with known client request rates and checks that the adaptive
prober recovers the ordering and the gap magnitudes.
"""

from repro.authdns import HierarchyBuilder
from repro.inetmodel import PrefixAllocator
from repro.netsim import Network, SimClock
from repro.resolvers import ResolutionService, ResolverNode
from repro.resolvers.cache import CacheActivityModel
from repro.scanner.popularity import (
    CLASS_HEAVY,
    CLASS_IDLE,
    CLASS_LIGHT,
    CLASS_MODERATE,
    PopularityProber,
)

# (label, true expiry-to-re-add gap seconds); None = idle resolver.
SUBJECTS = (
    ("busy-isp-resolver", 1.5),
    ("office-resolver", 45.0),
    ("home-cpe-evening", 420.0),
    ("nearly-idle-cpe", 5400.0),
    ("abandoned-cpe", None),
)


def build_world():
    clock = SimClock()
    network = Network(clock, seed=31)
    allocator = PrefixAllocator()
    infra = allocator.allocate(16)
    builder = HierarchyBuilder(network, infra)
    service = ResolutionService(builder.hierarchy.root_ips,
                                infra.address_at(50000))
    subjects = []
    for index, (label, gap) in enumerate(SUBJECTS):
        if gap is None:
            activity = CacheActivityModel(CacheActivityModel.STYLE_IDLE,
                                          tld_patterns={"com": (0.0, 0.0)},
                                          ttl=3600)
        else:
            activity = CacheActivityModel(
                CacheActivityModel.STYLE_NORMAL,
                tld_patterns={"com": (gap, 137.0 * index)}, ttl=3600)
        node = ResolverNode(infra.address_at(45000 + index),
                            resolution_service=service,
                            activity=activity)
        network.register(node)
        subjects.append((label, gap, node.ip))
    return network, infra, subjects


def test_ext_popularity_estimation(benchmark):
    network, infra, subjects = build_world()
    prober = PopularityProber(network, infra.address_at(50001), ("com",),
                              fine_interval=0.5, coarse_interval=300.0,
                              fine_window=20.0)

    def run_all():
        return {label: prober.estimate(ip, cycles=2)
                for label, __, ip in subjects}

    estimates = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("Popularity estimation (fine-grained snooping, %d probes)"
          % prober.probes_sent)
    print("  %-22s %12s %14s %10s" % ("resolver", "true gap",
                                      "measured gap", "class"))
    for label, gap, __ in subjects:
        estimate = estimates[label]
        measured = ("%.1fs" % estimate.mean_gap
                    if estimate.mean_gap is not None else "-")
        print("  %-22s %11s %14s %10s"
              % (label, "%.1fs" % gap if gap else "-", measured,
                 estimate.popularity_class))

    by_label = estimates
    assert by_label["busy-isp-resolver"].popularity_class == CLASS_HEAVY
    assert by_label["office-resolver"].popularity_class == CLASS_MODERATE
    assert by_label["home-cpe-evening"].popularity_class == CLASS_MODERATE
    assert by_label["nearly-idle-cpe"].popularity_class == CLASS_LIGHT
    assert by_label["abandoned-cpe"].popularity_class == CLASS_IDLE
    # Measured gaps reproduce the true ordering.
    ordered = [by_label[label].mean_gap for label, gap, __ in subjects
               if gap is not None]
    assert ordered == sorted(ordered)
    # And the magnitudes are close (fine_interval-limited precision).
    for label, gap, __ in subjects:
        if gap is None:
            continue
        measured = by_label[label].mean_gap
        assert measured == __import__("pytest").approx(gap, rel=0.35,
                                                       abs=2.0)
