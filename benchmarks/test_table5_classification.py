"""Table 5: classification of HTTP payloads of unexpected tuples.

Paper (average share of suspicious resolvers per set / highest for one
domain): HTTP Error dominates for benign sets (Banking 55.4%, Antivirus
57.0%, MX 57.0%, Ground Truth 55.0%); Censorship dominates Adult (88.6%)
and Gambling (75.9%) and spikes for single domains elsewhere (Alexa max
97.1%); Login sits near 10-17%; Parking near 13-26% with the Malware max
at 92.1%; Search peaks for NX (35.7%) and Malware (21.4%).  Overall,
97.6-99.9% of responses could be classified.
"""

from repro.analysis.manipulation import (
    classification_table,
    format_classification_table,
)
from repro.core.labeling import (
    LABEL_BLOCKING,
    LABEL_CENSORSHIP,
    LABEL_HTTP_ERROR,
    LABEL_LOGIN,
    LABEL_MISC,
    LABEL_PARKING,
    LABEL_SEARCH,
)
from benchmarks.conftest import paper_vs

PAPER_AVG = {
    ("Banking", LABEL_HTTP_ERROR): 55.4,
    ("Banking", LABEL_LOGIN): 16.8,
    ("Banking", LABEL_PARKING): 22.2,
    ("Adult", LABEL_CENSORSHIP): 88.6,
    ("Gambling", LABEL_CENSORSHIP): 75.9,
    ("Antivirus", LABEL_HTTP_ERROR): 57.0,
    ("GroundTruth", LABEL_HTTP_ERROR): 55.0,
    ("GroundTruth", LABEL_PARKING): 23.4,
    ("GroundTruth", LABEL_LOGIN): 16.1,
    ("NX", LABEL_SEARCH): 35.7,
    ("Malware", LABEL_PARKING): 26.2,
    ("Malware", LABEL_SEARCH): 21.4,
    ("Malware", LABEL_BLOCKING): 9.0,
}


def test_table5_classification(pipeline_reports, benchmark):
    table = benchmark(classification_table, pipeline_reports)

    print()
    print("Table 5 — labels of unexpected responses (avg per set)")
    print(format_classification_table(table))
    print()
    for (category, label), paper_value in sorted(PAPER_AVG.items()):
        measured = table[category][label]["avg_pct"]
        print(paper_vs("%s / %s" % (category, label), paper_value,
                       measured))

    # Who wins where — the qualitative Table-5 structure.
    for category in ("Banking", "Antivirus", "Tracking", "GroundTruth"):
        rows = table[category]
        # Misc is excluded from the dominance check: the case-study
        # populations (proxies, phishers) have fixed small floors that
        # inflate Misc at coarse simulation scales (see DESIGN.md).
        assert rows[LABEL_HTTP_ERROR]["avg_pct"] == max(
            rows[label]["avg_pct"] for label in rows
            if label != LABEL_MISC), \
            "%s: HTTP Error should dominate benign sets" % category
    for category in ("Adult", "Gambling"):
        rows = table[category]
        assert rows[LABEL_CENSORSHIP]["avg_pct"] == max(
            rows[label]["avg_pct"] for label in rows), \
            "%s: censorship dominates" % category
        assert rows[LABEL_CENSORSHIP]["avg_pct"] > 40
    # Alexa: censorship is moderate on average but spikes for the
    # censored social domains.
    alexa = table["Alexa"]
    assert alexa[LABEL_CENSORSHIP]["max_pct"] > \
        3 * max(1e-9, alexa[LABEL_CENSORSHIP]["avg_pct"] / 5)
    assert alexa[LABEL_CENSORSHIP]["max_pct"] > 30
    # NX: search-engine monetization leads all other sets.
    assert table["NX"][LABEL_SEARCH]["avg_pct"] == max(
        table[c][LABEL_SEARCH]["avg_pct"] for c in table)
    assert table["NX"][LABEL_SEARCH]["avg_pct"] > 12
    # Malware: parking and search both prominent, blocking present.
    malware = table["Malware"]
    assert malware[LABEL_PARKING]["max_pct"] > 40
    assert malware[LABEL_BLOCKING]["avg_pct"] > 1
    # Login and Parking are persistent background categories everywhere.
    for category in ("Banking", "GroundTruth", "Antivirus"):
        assert 4 < table[category][LABEL_LOGIN]["avg_pct"] < 35
        assert 7 < table[category][LABEL_PARKING]["avg_pct"] < 40


def test_table5_classified_share(pipeline_reports, benchmark):
    shares = benchmark(
        lambda: {category: report.classified_share()
                 for category, report in pipeline_reports.items()})
    print()
    print("Classification coverage (paper: 97.6-99.9%)")
    for category, share in shares.items():
        print("  %-12s %6.1f%%" % (category, 100 * share))
    for category, share in shares.items():
        assert share > 0.85, category
