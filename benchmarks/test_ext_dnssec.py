"""Extension (§5 Discussion): does DNSSEC defeat the Great Firewall?

The paper argues that because resolvers accept the FIRST response that
matches an open transaction, DNSSEC cannot protect clients from the
firewall's injected answers unless the client (a) waits for a correctly
signed response, dropping unsigned/badly-signed ones, and (b) already
knows the domain deploys DNSSEC — with global DNSSEC coverage under 1%
at the time, neither held.  This benchmark builds the racing-injection
scenario and measures the poisoning rate for each client strategy.
"""

from repro.authdns import HierarchyBuilder
from repro.authdns.dnssec import (
    DnssecValidator,
    STRATEGY_FIRST,
    STRATEGY_WAIT_SIGNED,
    ValidatingClient,
)
from repro.inetmodel import PrefixAllocator
from repro.netsim import GreatFirewall, Ipv4Network, Network, SimClock
from repro.resolvers import ResolutionService, ResolverNode

ZONE_KEY = "ext-dnssec-zone-key"
QUERIES = 60


def build_world():
    clock = SimClock()
    network = Network(clock, seed=21)
    allocator = PrefixAllocator()
    infra = allocator.allocate(16)
    builder = HierarchyBuilder(network, infra)
    signed_zone = builder.register_domain(
        "signed.example", {"signed.example": ["198.18.0.5"]})
    signed_zone.sign_with(ZONE_KEY)
    builder.register_domain("unsigned.example",
                            {"unsigned.example": ["198.18.0.6"]})
    service = ResolutionService(builder.hierarchy.root_ips,
                                infra.address_at(50000))
    network.add_middlebox(GreatFirewall(
        [Ipv4Network("110.0.0.0/16")],
        ["signed.example", "unsigned.example"], seed=5))
    resolvers = []
    for index in range(QUERIES):
        node = ResolverNode("110.0.0.%d" % (index + 10),
                            resolution_service=service, gfw_immune=True)
        network.register(node)
        resolvers.append(node.ip)
    return network, infra, resolvers


def poisoning_rate(network, infra, resolvers, strategy, domain, truth):
    validator = DnssecValidator({"signed.example": ZONE_KEY})
    client = ValidatingClient(network, infra.address_at(50001),
                              validator=validator, strategy=strategy)
    poisoned = 0
    failed = 0
    for resolver_ip in resolvers:
        addresses, __ = client.query(resolver_ip, domain)
        if not addresses:
            failed += 1
        elif addresses != [truth]:
            poisoned += 1
    return poisoned / len(resolvers), failed / len(resolvers)


def test_ext_dnssec_vs_injection(benchmark):
    network, infra, resolvers = build_world()

    def run_all():
        return {
            ("first", "signed"): poisoning_rate(
                network, infra, resolvers, STRATEGY_FIRST,
                "signed.example", "198.18.0.5"),
            ("wait-signed", "signed"): poisoning_rate(
                network, infra, resolvers, STRATEGY_WAIT_SIGNED,
                "signed.example", "198.18.0.5"),
            ("first", "unsigned"): poisoning_rate(
                network, infra, resolvers, STRATEGY_FIRST,
                "unsigned.example", "198.18.0.6"),
            ("wait-signed", "unsigned"): poisoning_rate(
                network, infra, resolvers, STRATEGY_WAIT_SIGNED,
                "unsigned.example", "198.18.0.6"),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("DNSSEC vs. Great-Firewall injection (%d clients behind the "
          "firewall)" % QUERIES)
    print("  %-14s %-10s %10s %8s" % ("strategy", "zone", "poisoned",
                                      "failed"))
    for (strategy, zone), (poisoned, failed) in results.items():
        print("  %-14s %-10s %9.1f%% %7.1f%%"
              % (strategy, zone, 100 * poisoned, 100 * failed))

    # First-response strategy is fully poisoned either way (§5).
    assert results[("first", "signed")][0] > 0.95
    assert results[("first", "unsigned")][0] > 0.95
    # Waiting for valid signatures protects signed zones completely...
    assert results[("wait-signed", "signed")][0] == 0.0
    # ...but does nothing for unsigned zones (no prior knowledge).
    assert results[("wait-signed", "unsigned")][0] > 0.95
