"""Table 3: DNS server software from CHAOS version queries.

Paper: of 19.9M responders, 42.7% return errors for both queries, 4.6%
NOERROR without a version, 18.8% arbitrary hidden strings, and 33.9%
leak software details.  Among the leakers: BIND 9.8.2 19.8%, BIND 9.3.6
8.9%, BIND 9.7.3 5.7%, BIND 9.9.5 5.2%, Unbound 1.4.22 4.8%, Dnsmasq
2.40 4.6%, BIND 9.8.4 3.9%, PowerDNS 3.5.3 3.2%, Dnsmasq 2.52 2.9%,
MS DNS 6.1.7601 2.5%.
"""

from repro.analysis.software import format_software_table, software_table
from benchmarks.conftest import paper_vs

PAPER_STYLE_SHARES = {"error": 42.7, "no_version": 4.6, "hidden": 18.8,
                      "version": 33.9}
PAPER_TOP = {"BIND 9.8.2": 19.8, "BIND 9.3.6": 8.9, "BIND 9.7.3": 5.7,
             "BIND 9.9.5": 5.2, "Unbound 1.4.22": 4.8,
             "Dnsmasq 2.40": 4.6, "BIND 9.8.4": 3.9,
             "PowerDNS 3.5.3": 3.2, "Dnsmasq 2.52": 2.9,
             "MS DNS 6.1.7601": 2.5}


def test_table3_software(chaos_observations, benchmark):
    table = benchmark(software_table, chaos_observations)

    print()
    print("Table 3 — CHAOS version fingerprinting")
    print(format_software_table(table))
    print(paper_vs("error for both queries", PAPER_STYLE_SHARES["error"],
                   table["error_share_pct"]))
    print(paper_vs("NOERROR, no version",
                   PAPER_STYLE_SHARES["no_version"],
                   table["no_version_share_pct"]))
    print(paper_vs("hidden strings", PAPER_STYLE_SHARES["hidden"],
                   table["hidden_share_pct"]))
    print(paper_vs("version leaked", PAPER_STYLE_SHARES["version"],
                   table["version_share_pct"]))

    # Two thirds leak nothing; the style shares land near the paper's.
    assert 35 < table["error_share_pct"] < 50
    assert 12 < table["hidden_share_pct"] < 26
    assert 27 < table["version_share_pct"] < 41

    measured = {row["software"]: row["share_pct"]
                for row in table["rows"]}
    print()
    for name, paper_share in PAPER_TOP.items():
        if name in measured:
            print(paper_vs(name, paper_share, measured[name]))
    # BIND 9.8.2 dominates by a wide margin (roughly 2x the runner-up).
    assert table["rows"][0]["software"] == "BIND 9.8.2"
    assert table["rows"][0]["share_pct"] > \
        1.5 * table["rows"][1]["share_pct"]
    # At least 7 of the paper's top-10 rank in the measured top-10.
    top10_names = {row["software"] for row in table["rows"][:10]}
    assert len(top10_names & set(PAPER_TOP)) >= 7
