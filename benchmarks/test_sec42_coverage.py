"""Section 4.2: per-country censorship coverage and GFW double responses.

Paper: 99.7% of Chinese resolvers return bogus answers for the social
domains; 2.4% of Chinese resolvers emit multiple responses where the
forged one arrives first and the legitimate answer trails by
milliseconds (the Great Firewall racing signature).  Coverage elsewhere
is high but below China's: Mongolia 78.9% for adult domains, Greece
83.9% and Belgium 78.6% for gambling, Italy 69.3% for betting; 10.0% of
Turkish resolvers do not censor.  Estonian resolvers return gambling
answers pointing into Russian censorship infrastructure (56.9%).
"""

from repro.analysis.manipulation import (
    censorship_coverage,
    gfw_double_responses,
    legit_addresses_from_report,
)
from repro.core.labeling import LABEL_CENSORSHIP
from benchmarks.conftest import paper_vs

SOCIAL = ("facebook.com", "twitter.com", "youtube.com")


def test_sec42_cn_coverage_and_gfw(scenario, pipeline_reports, benchmark):
    report = pipeline_reports["Alexa"]
    coverage = benchmark(censorship_coverage, report, scenario.geoip,
                         SOCIAL, "CN")
    print()
    print("Section 4.2 — Chinese coverage for the social domains")
    print(paper_vs("CN resolvers with bogus answers", 99.7,
                   coverage["coverage_pct"]))
    assert coverage["coverage_pct"] > 90

    legit = legit_addresses_from_report(report)
    double = gfw_double_responses(report, scenario.geoip, legit,
                                  country="CN")
    print(paper_vs("CN resolvers with forged-then-legit doubles", 2.4,
                   double["share_pct"]))
    assert double["share_pct"] < 12, \
        "doubles are a small minority of Chinese resolvers"
    if double["country_resolvers"] >= 150:
        # With enough Chinese resolvers in the sample, the GFW-immune
        # 2.4% must be visible (coarse scales may miss the 1-2 expected).
        assert double["double_response_resolvers"] >= 1, \
            "the forged-then-legit double-response artefact is missing"


def test_sec42_other_countries(scenario, pipeline_reports, benchmark):
    geoip = scenario.geoip
    adult = pipeline_reports["Adult"]
    gambling = pipeline_reports["Gambling"]

    rows = benchmark(lambda: {
        "MN-adult": censorship_coverage(
            adult, geoip, [d.name for d in __import__(
                "repro.datasets", fromlist=["DOMAIN_SETS"]
            ).DOMAIN_SETS["Adult"]], "MN"),
        "GR-gambling": censorship_coverage(
            gambling, geoip, ["bet-at-home.com", "bet365.com",
                              "pokerstars.com", "williamhill.com"], "GR"),
        "BE-gambling": censorship_coverage(
            gambling, geoip, ["bet-at-home.com", "bet365.com",
                              "pokerstars.com", "williamhill.com"], "BE"),
        "TR-youporn": censorship_coverage(
            adult, geoip, ["youporn.com"], "TR"),
    })

    print()
    print("Section 4.2 — coverage in other censoring countries")
    print(paper_vs("MN adult coverage", 78.9,
                   rows["MN-adult"]["coverage_pct"]))
    print(paper_vs("GR gambling coverage", 83.9,
                   rows["GR-gambling"]["coverage_pct"]))
    print(paper_vs("BE gambling coverage", 78.6,
                   rows["BE-gambling"]["coverage_pct"]))
    print(paper_vs("TR youporn coverage (90% censor)", 90.0,
                   rows["TR-youporn"]["coverage_pct"]))

    for key in ("MN-adult", "GR-gambling", "BE-gambling"):
        assert 50 < rows[key]["coverage_pct"] <= 100, key
    # Unlike China, coverage stays visibly below total: some resolvers
    # in these countries answer honestly.
    assert rows["TR-youporn"]["coverage_pct"] < 99


def test_sec42_estonian_requests_hit_russian_landing(
        scenario, pipeline_reports, benchmark):
    import pytest
    report = pipeline_reports["Gambling"]
    labels = benchmark(report.labels_by_tuple)
    russian_landing = set(scenario.landing_ips["RU"])
    ee_responders = {o.resolver_ip for o in report.observations
                     if scenario.geoip.country(o.resolver_ip) == "EE"}
    if len(ee_responders) < 4:
        pytest.skip("only %d Estonian resolvers at this scale"
                    % len(ee_responders))
    ee_tuples = [key for key, (label, __) in labels.items()
                 if label == LABEL_CENSORSHIP
                 and scenario.geoip.country(key[2]) == "EE"]
    assert ee_tuples, "Estonian gambling censorship should be observed"
    hitting_ru = sum(1 for __, ip, __r in ee_tuples
                     if ip in russian_landing)
    share = 100.0 * hitting_ru / len(ee_tuples)
    print()
    print(paper_vs("EE gambling answers on RU censorship IPs", 100.0,
                   share))
    assert share > 80
