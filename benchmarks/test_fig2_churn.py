"""Figure 2: IP-address churn of the Jan-2014 resolver cohort.

Paper: 52.2% of the cohort disappears within one week; >40% within the
first day; 4.0% still answer on the same address after 55 weeks.  Of the
day-one leavers with rDNS records, 67.4% carry dynamic-assignment tokens.
"""

from repro.analysis.churn import (
    churn_survival,
    day_one_leavers,
    dynamic_rdns_share,
    format_survival,
)
from benchmarks.conftest import paper_vs


def test_fig2_churn_curve(campaign, benchmark):
    curve = benchmark(churn_survival, campaign.snapshots)

    print()
    print("Figure 2 — cohort surviving without IP churn")
    print(format_survival(curve[:4] + curve[-3:]))
    week1 = dict(curve)[1]
    final = curve[-1][1]
    print(paper_vs("gone within week 1", 52.2, 100 - week1))
    print(paper_vs("still alive at week 55", 4.0, final))

    assert curve[0][1] == 100.0
    assert 35 < (100 - week1) < 70, "week-1 churn should be severe"
    assert final < 15, "almost everything churns away eventually"
    # Near-monotone decline (a churned address can occasionally be
    # re-leased to another resolver, so allow a small uptick).
    smoothed = [pct for __, pct in curve]
    assert all(later <= earlier + 2.0 for earlier, later
               in zip(smoothed, smoothed[1:]))


def test_fig2_day_one_churn(scenario, campaign, benchmark):
    leavers = benchmark(day_one_leavers, campaign.first().result,
                        campaign.day1_result)
    cohort_size = len(campaign.first().result.noerror)
    day1_share = 100.0 * len(leavers) / cohort_size

    stats = dynamic_rdns_share(leavers, campaign.cohort_rdns)
    print()
    print("Figure 2 (inset) — day-one churn")
    print(paper_vs("cohort gone within one day", 40.0, day1_share))
    print(paper_vs("day-1 leavers with dynamic rDNS", 67.4,
                   stats["dynamic_share_pct"]))

    assert day1_share > 25, "a large share should churn on day one"
    assert stats["with_rdns"] > 0
    assert stats["dynamic_share_pct"] > 55, \
        "day-one leavers are dominated by dynamic broadband links"
