"""Table 1: resolver fluctuation per country (top 10 of Jan 2014).

Paper: US 2.96M (-14.2%), CN 2.42M (-13.0%), TR 1.44M (-32.2%),
VN 1.39M (-25.4%), MX 1.37M (-14.4%), IN 1.27M (+12.7%), TH 1.21M
(-53.5%), IT 1.17M (-38.3%), CO 1.06M (-36.2%), TW 1.06M (-57.3%);
the ten together host 49.1% of all resolvers.
"""

from repro.analysis.geography import (
    country_fluctuation,
    extreme_changes,
    format_fluctuation,
)
from benchmarks.conftest import paper_vs

PAPER_TOP10 = {
    "US": -14.2, "CN": -13.0, "TR": -32.2, "VN": -25.4, "MX": -14.4,
    "IN": +12.7, "TH": -53.5, "IT": -38.3, "CO": -36.2, "TW": -57.3,
}


def test_table1_countries(scenario, campaign, benchmark):
    rows, top_share = benchmark(
        country_fluctuation, campaign.first().result,
        campaign.last().result, scenario.geoip, 10)

    print()
    print("Table 1 — resolver fluctuation per country")
    print(format_fluctuation(rows, "Country"))
    print(paper_vs("top-10 share of all resolvers", 49.1, top_share))
    for row in rows:
        paper_delta = PAPER_TOP10.get(row["country"])
        if paper_delta is not None:
            print(paper_vs("%s change" % row["country"], paper_delta,
                           row["delta_pct"]))

    measured_countries = [row["country"] for row in rows]
    # At least 8 of the paper's top-10 countries should rank top-10 here.
    assert len(set(measured_countries) & set(PAPER_TOP10)) >= 8
    assert 40 < top_share < 60
    by_country = {row["country"]: row["delta_pct"] for row in rows}
    # India grows while the rest decline.
    if "IN" in by_country:
        assert by_country["IN"] > 0
    for country in ("TH", "TW"):
        if country in by_country:
            assert by_country[country] < -35

    changes = extreme_changes(campaign.first().result,
                              campaign.last().result, scenario.geoip,
                              min_first=10)
    declines = dict(changes)
    # Argentina's near-total collapse (-75%) should rank among the
    # strongest declines.
    if "AR" in declines:
        print(paper_vs("AR change", -75.0, declines["AR"]))
        assert declines["AR"] < -55
