"""Arms-race benchmark: coverage frontier under a hostile population.

Builds three identical worlds armed with the canonical hostile
population (:func:`repro.netsim.defense.install_hostile_population`) and
scans each a different way:

* **passive baseline** — no defenses installed: the coverage ceiling;
* **naive** — defenses up, no pacing: what an oblivious scanner loses;
* **adaptive** — defenses up, AIMD pacing: must recover at least
  ``COVERAGE_GATE`` of the baseline while naive stays demonstrably
  worse (lower coverage, or equal coverage at higher probe volume).

Two further checks ride along: a 4-shard adaptive run must be
bit-identical to the sequential one (the pacing plan is shard-invariant
by construction), and a flight-recorder run must attribute every lost
probe to a ``defense:*`` or ``fault:*`` cause.

Writes ``BENCH_arms_race.json``; exits 1 when a gate fails.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_arms_race
    PYTHONPATH=src python -m benchmarks.perf.bench_arms_race --quick
"""

import argparse
import json
import sys
import time

from repro.netsim.defense import install_hostile_population
from repro.obs import Observability
from repro.perf import PerfRegistry
from repro.scenario import ScenarioConfig, build_scenario

COVERAGE_GATE = 0.95


def _build(scale, seed, hostile):
    scenario = build_scenario(ScenarioConfig(scale=scale, seed=seed,
                                             loss_rate=0.0))
    if hostile:
        install_hostile_population(scenario.network,
                                   scenario.target_space().prefixes,
                                   seed=seed)
    return scenario


def _measure(scale, seed, hostile, pacing, shards=1, observe=False):
    scenario = _build(scale, seed, hostile)
    obs = None
    if observe:
        obs = Observability(clock=scenario.network.clock, seed=seed)
        obs.install(scenario.network)
    perf = PerfRegistry()
    campaign = scenario.new_campaign(verify=False, shards=shards,
                                     perf=perf, pacing=pacing)
    start = time.perf_counter()
    result = campaign.run_week().result
    elapsed = time.perf_counter() - start
    return {
        "scenario": scenario,
        "recorder": scenario.network.recorder,
        "result": result,
        "responders": len(result.responders),
        "probes_sent": result.probes_sent,
        "suppressed": result.suppressed_targets,
        "seconds": round(elapsed, 4),
        "fault_counters": dict(sorted(
            scenario.network.fault_counters.items())),
        "pacing_signals": perf.counter("pacing_defense_signals"),
    }


def _fingerprint(run):
    result = run["result"]
    return (result.counts(), sorted(result.responders),
            sorted(result.divergent_sources), result.probes_sent,
            sorted(result.suppressed.items()), result.degraded_shards,
            run["fault_counters"])


def _public(run):
    return {key: value for key, value in run.items()
            if key not in ("scenario", "result", "recorder")}


def check(condition, message):
    if not condition:
        print("FAIL: %s" % message, file=sys.stderr)
        return 1
    print("ok: %s" % message, file=sys.stderr)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=int, default=20000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="smaller world (CI smoke)")
    parser.add_argument("--out", default="BENCH_arms_race.json")
    args = parser.parse_args(argv)
    scale = 60000 if args.quick else args.scale

    failures = 0
    print("arms race @ scale 1:%d seed %d" % (scale, args.seed),
          file=sys.stderr)

    print("baseline (no defenses)...", file=sys.stderr)
    baseline = _measure(scale, args.seed, hostile=False, pacing=None)
    print("naive under defense (no pacing)...", file=sys.stderr)
    naive = _measure(scale, args.seed, hostile=True, pacing=None)
    print("adaptive under defense...", file=sys.stderr)
    adaptive = _measure(scale, args.seed, hostile=True, pacing="adaptive")

    ceiling = baseline["responders"]
    adaptive_cov = adaptive["responders"] / ceiling if ceiling else 0.0
    naive_cov = naive["responders"] / ceiling if ceiling else 0.0

    failures += check(ceiling > 0, "baseline found %d responders"
                      % ceiling)
    failures += check(
        adaptive_cov >= COVERAGE_GATE,
        "adaptive recovers %.1f%% of baseline coverage (gate %.0f%%)"
        % (100 * adaptive_cov, 100 * COVERAGE_GATE))
    naive_worse = (naive["responders"] < adaptive["responders"]
                   or naive["probes_sent"] > adaptive["probes_sent"])
    failures += check(
        naive_worse,
        "naive demonstrably worse: %.1f%% coverage @ %d probes vs "
        "adaptive %.1f%% @ %d"
        % (100 * naive_cov, naive["probes_sent"],
           100 * adaptive_cov, adaptive["probes_sent"]))
    failures += check(
        adaptive["suppressed"] > 0,
        "graceful degradation recorded (%d suppressed targets)"
        % adaptive["suppressed"])
    failures += check(
        any(key.startswith("defense:")
            for key in naive["fault_counters"]),
        "defenses fired against the naive scanner: %s"
        % sorted(naive["fault_counters"]))

    print("sharded adaptive (4 shards)...", file=sys.stderr)
    sharded = _measure(scale, args.seed, hostile=True, pacing="adaptive",
                       shards=4)
    failures += check(_fingerprint(sharded) == _fingerprint(adaptive),
                      "4-shard adaptive bit-identical to sequential")

    print("attribution run (flight recorder)...", file=sys.stderr)
    attributed = _measure(scale, args.seed, hostile=True,
                          pacing="adaptive", observe=True)
    recorder = attributed["recorder"]
    unattributed = [cause for cause in recorder.cause_counts
                    if not (cause.startswith("defense:")
                            or cause.startswith("fault:"))]
    losses = sum(recorder.event_counts.get(kind, 0)
                 for kind in ("lost", "response_lost"))
    caused = sum(recorder.cause_counts.values()) - \
        recorder.event_counts.get("suppressed", 0)
    failures += check(
        not unattributed and losses == caused,
        "every lost probe attributed (%d losses, causes: %s)"
        % (losses, sorted(recorder.cause_counts)))

    report = {
        "scale": scale,
        "seed": args.seed,
        "coverage_gate": COVERAGE_GATE,
        "baseline": _public(baseline),
        "naive": _public(naive),
        "adaptive": _public(adaptive),
        "sharded_adaptive": _public(sharded),
        "adaptive_coverage": round(adaptive_cov, 4),
        "naive_coverage": round(naive_cov, 4),
        "sharded_identical": _fingerprint(sharded) == \
            _fingerprint(adaptive),
        "losses_attributed": losses,
        "passed": failures == 0,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out, file=sys.stderr)

    if failures:
        print("%d arms-race gate(s) failed" % failures, file=sys.stderr)
        return 1
    print("arms race passed: adaptive %.1f%% vs naive %.1f%% coverage"
          % (100 * adaptive_cov, 100 * naive_cov), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
