"""The seed implementation of the IPv4 scan loop, kept as a baseline.

This is a faithful copy of ``repro.scanner.ipv4scan`` as it stood before
the sharded engine landed (commit ``v0`` of the repo), including its own
uncached address conversions — the optimised tree memoizes
``ip_to_int``/``int_to_ip`` globally, which would otherwise quietly speed
the baseline up too.  It exists only so ``bench_scan`` can measure the
fast path against the exact code it replaced; nothing in ``src/``
imports it.
"""

import bisect

from repro.dnswire.message import Message
from repro.netsim.address import RESERVED_NETWORKS
from repro.netsim.network import UdpPacket
from repro.scanner.ipv4scan import ScanResult
from repro.scanner.lfsr import LFSR


def _legacy_ip_to_int(text):
    """Seed ``ip_to_int``: parses the dotted quad on every call."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError("bad IPv4 address %r" % text)
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("bad IPv4 address %r" % text)
        value = (value << 8) | octet
    return value


def _legacy_int_to_ip(value):
    """Seed ``int_to_ip``: formats the text on every call."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("IPv4 integer out of range: %r" % value)
    return "%d.%d.%d.%d" % (value >> 24, (value >> 16) & 0xFF,
                            (value >> 8) & 0xFF, value & 0xFF)


def _legacy_is_reserved(address):
    value = (_legacy_ip_to_int(address) if isinstance(address, str)
             else address)
    return any(net.contains_int(value) for net in RESERVED_NETWORKS)


class LegacyScanTargetSpace:
    """Seed ``ScanTargetSpace`` (per-call bisect import included)."""

    def __init__(self, prefixes):
        self.prefixes = list(prefixes)
        self._cumulative = []
        total = 0
        for prefix in self.prefixes:
            self._cumulative.append(total)
            total += prefix.num_addresses
        self.total = total

    def ip_at(self, index):
        if not 0 <= index < self.total:
            raise IndexError(index)
        slot = bisect.bisect_right(self._cumulative, index) - 1
        prefix = self.prefixes[slot]
        return _legacy_int_to_ip(
            prefix.base + (index - self._cumulative[slot]))

    def __len__(self):
        return self.total


class LegacyIpv4Scanner:
    """Seed ``Ipv4Scanner``: sequential probe ids, full message parse."""

    def __init__(self, network, source_ip, measurement_domain,
                 blacklist=None, source_port=31337, lfsr_seed=0xACE1):
        self.network = network
        self.source_ip = source_ip
        self.measurement_domain = measurement_domain
        self.blacklist = blacklist
        self.source_port = source_port
        self.lfsr_seed = lfsr_seed
        self._probe_id = 0
        from repro.dnswire.name import encode_name
        self._suffix_wire = encode_name(measurement_domain)

    def _query_wire(self, qname_prefix_labels, txid):
        parts = [bytes((txid >> 8, txid & 0xFF)),
                 b"\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"]
        for label in qname_prefix_labels:
            raw = label.encode("ascii")
            parts.append(bytes((len(raw),)))
            parts.append(raw)
        parts.append(self._suffix_wire)
        parts.append(b"\x00\x01\x00\x01")  # QTYPE=A, QCLASS=IN
        return b"".join(parts)

    def probe(self, target_ip):
        self._probe_id += 1
        txid = self._probe_id & 0xFFFF
        payload = self._query_wire(
            ("r%x" % (self._probe_id & 0xFFFFFF),
             "%08x" % _legacy_ip_to_int(target_ip)), txid)
        packet = UdpPacket(self.source_ip, self.source_port,
                           target_ip, 53, payload)
        observations = []
        for response in self.network.send_udp(packet):
            try:
                message = Message.from_wire(response.packet.payload)
            except ValueError:
                continue  # corrupted packet: ignored (§5 Completeness)
            if not message.header.qr:
                continue
            if message.header.txid != txid:
                continue
            observations.append((message.rcode, response.packet.src_ip))
        return observations

    def scan(self, target_space):
        result = ScanResult(self.network.clock.now)
        order = LFSR.order_for(len(target_space))
        lfsr = LFSR(order, seed=(self.lfsr_seed % ((1 << order) - 1)) or 1)
        for state in lfsr.sequence():
            index = state - 1
            if index >= len(target_space):
                continue
            target_ip = target_space.ip_at(index)
            if _legacy_is_reserved(target_ip):
                continue
            if self.blacklist is not None and target_ip in self.blacklist:
                continue
            result.probes_sent += 1
            for rcode, source_ip in self.probe(target_ip):
                result.record(target_ip, rcode, source_ip)
        return result
