"""Scan-engine throughput benchmark: seed loop vs fast path vs shards.

Runs the full-scenario weekly scan three ways — the seed implementation
(:mod:`benchmarks.perf.legacy`), the optimised sequential fast path, and
the fork-sharded engine — each against a freshly built scenario with the
same scale and seed, and writes the measurements to ``BENCH_scan.json``.
The sharded run doubles as the determinism check: its merged
``counts()`` must equal the sequential run's exactly.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_scan
    PYTHONPATH=src python -m benchmarks.perf.bench_scan --quick
"""

import argparse
import json
import sys
import time

from benchmarks.perf.legacy import LegacyIpv4Scanner, LegacyScanTargetSpace
from repro.perf import PerfRegistry
from repro.scenario import MEASUREMENT_DOMAIN, ScenarioConfig, build_scenario


def _build(scale, seed):
    return build_scenario(ScenarioConfig(scale=scale, seed=seed))


def _measure_legacy(scale, seed, repeats):
    """Time the seed scan loop on week 1 of a fresh scenario.

    Each repetition rebuilds the scenario and scans once; the fastest
    repetition is reported (the shared host's background load only ever
    slows a run down, so min-time is the least-noise estimator).
    """
    samples = []
    for __ in range(repeats):
        scenario = _build(scale, seed)
        scenario.churn.step()
        scanner = LegacyIpv4Scanner(
            scenario.network, scenario.scanner_ip, MEASUREMENT_DOMAIN,
            blacklist=scenario.blacklist)
        space = LegacyScanTargetSpace(scenario.resolver_prefixes)
        start = time.perf_counter()
        result = scanner.scan(space)
        samples.append((time.perf_counter() - start, result))
    elapsed, result = min(samples, key=lambda item: item[0])
    return {
        "probes_sent": result.probes_sent,
        "repeats": repeats,
        "seconds": round(elapsed, 4),
        "probes_per_sec": round(result.probes_sent / elapsed, 1),
        "samples_probes_per_sec": [
            round(result.probes_sent / sample, 1)
            for sample, __ in samples],
        "counts": result.counts(),
    }


def _measure_engine(scale, seed, shards, repeats):
    """Time the engine (sequential when ``shards == 1``) on week 1.

    Best-of-``repeats`` like :func:`_measure_legacy` — every measured
    configuration gets the same sampling treatment, so the reported
    sharded-vs-fast ratio compares two min-time estimates rather than a
    min against a single (noise-inflated) sample.
    """
    samples = []
    for __ in range(repeats):
        scenario = _build(scale, seed)
        perf = PerfRegistry()
        campaign = scenario.new_campaign(verify=False, shards=shards,
                                         perf=perf)
        snapshot = campaign.run_week()
        samples.append((perf.seconds("scan_wall"), snapshot.result, perf))
    elapsed, result, perf = min(samples, key=lambda item: item[0])
    stats = {
        "shards": shards,
        "probes_sent": result.probes_sent,
        "repeats": repeats,
        "seconds": round(elapsed, 4),
        "probes_per_sec": round(result.probes_sent / elapsed, 1),
        "samples_probes_per_sec": [
            round(result.probes_sent / sample, 1)
            for sample, __, __unused in samples],
        "counts": result.counts(),
        "divergent_sources": len(result.divergent_sources),
        "parse_calls_avoided": perf.counter("parse_calls_avoided"),
    }
    return stats, result


def _measure_robustness(scale, seed, retries, loss_rate):
    """One weekly scan under injected loss, with/without retransmissions.

    Quantifies the robustness tax: what `--retries N` costs in wall
    time and probe volume, and what it buys back in responders that
    plain single-probe scanning loses to the injected loss.
    """
    from repro.faults import FaultPlan, FaultProfile
    scenario = _build(scale, seed)
    scenario.network.install_faults(FaultPlan(
        FaultProfile(loss_rate=loss_rate), seed=seed))
    perf = PerfRegistry()
    campaign = scenario.new_campaign(verify=False, perf=perf,
                                     retries=retries)
    result = campaign.run_week().result
    elapsed = perf.seconds("scan_wall")
    return {
        "retries": retries,
        "probes_sent": result.probes_sent,
        "retransmissions": result.retransmissions,
        "responders": len(result.responders),
        "seconds": round(elapsed, 4),
        "probes_per_sec": round(result.probes_sent / elapsed, 1),
    }


def _measure_tracing_overhead(scale, seed, repeats):
    """Tracing-off vs traced weekly scans on the sequential engine.

    Tracing off is ``Observability(enabled=False).install(...)`` — the
    instruments stay ``None`` on the network, so this must cost nothing
    against a plain un-instrumented run; the report gates that overhead
    below 2%.  Baseline and tracing-off runs execute in adjacent pairs
    with alternating order, and the reported overhead is the *minimum*
    per-pair ratio: host noise (CPU contention, allocator state) only
    ever inflates individual pairs, while a real hot-path regression
    shifts every pair, so the minimum is a low-noise detector that
    still catches genuine overhead.  The traced run records every span
    and flight event and reports its real cost for the record (it is
    not gated — enabling tracing is allowed to cost).
    """
    from repro.obs import Observability

    def run_once(enabled):
        scenario = _build(scale, seed)
        perf = PerfRegistry()
        obs = None
        if enabled is not None:
            obs = Observability(clock=scenario.network.clock, seed=seed,
                                enabled=enabled)
            obs.install(scenario.network)
        campaign = scenario.new_campaign(verify=False, perf=perf)
        campaign.run_week()
        return perf.seconds("scan_wall"), obs

    baseline_samples = []
    off_samples = []
    ratios = []
    for pair in range(max(3, repeats)):
        if pair % 2:
            off_t = run_once(False)[0]
            base_t = run_once(None)[0]
        else:
            base_t = run_once(None)[0]
            off_t = run_once(False)[0]
        baseline_samples.append(base_t)
        off_samples.append(off_t)
        ratios.append(off_t / base_t)
    baseline_seconds = min(baseline_samples)
    off_seconds = min(off_samples)
    traced = [run_once(True) for __ in range(repeats)]
    traced_seconds, obs = min(traced, key=lambda item: item[0])
    overhead_pct = max(0.0, (min(ratios) - 1.0) * 100)
    return {
        "baseline_seconds": round(baseline_seconds, 4),
        "tracing_off_seconds": round(off_seconds, 4),
        "tracing_off_overhead_pct": round(overhead_pct, 2),
        "traced_seconds": round(traced_seconds, 4),
        "traced_overhead_x": round(traced_seconds / baseline_seconds, 2),
        "spans": len(obs.tracer.spans),
        "flight_events": len(obs.recorder.events),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="scan-engine throughput benchmark")
    parser.add_argument("--scale", type=int, default=20000,
                        help="1:N scale of the simulated Internet")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--check-shards", type=int, default=2,
                        help="shard count for the determinism check")
    parser.add_argument("--quick", action="store_true",
                        help="smaller world (CI smoke run)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per variant (fastest wins)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail below this fast-vs-legacy ratio")
    parser.add_argument("--out", default="BENCH_scan.json")
    args = parser.parse_args(argv)
    scale = 60000 if args.quick else args.scale
    repeats = max(1, args.repeats if not args.quick else 2)

    print("benchmarking at scale 1:%d (seed %d, best of %d)..."
          % (scale, args.seed, repeats), file=sys.stderr)
    legacy = _measure_legacy(scale, args.seed, repeats)
    print("  legacy:    %8.0f probes/sec" % legacy["probes_per_sec"],
          file=sys.stderr)
    fast, sequential_result = _measure_engine(scale, args.seed, shards=1,
                                              repeats=repeats)
    print("  fast:      %8.0f probes/sec" % fast["probes_per_sec"],
          file=sys.stderr)
    sharded, sharded_result = _measure_engine(scale, args.seed,
                                              shards=args.check_shards,
                                              repeats=repeats)
    print("  sharded:   %8.0f probes/sec (%d shards)"
          % (sharded["probes_per_sec"], args.check_shards), file=sys.stderr)

    loss_rate = 0.05
    tax_single = _measure_robustness(scale, args.seed, retries=0,
                                     loss_rate=loss_rate)
    tax_robust = _measure_robustness(scale, args.seed, retries=2,
                                     loss_rate=loss_rate)
    print("  retries=0: %8.0f probes/sec, %d responders (5%% loss)"
          % (tax_single["probes_per_sec"], tax_single["responders"]),
          file=sys.stderr)
    print("  retries=2: %8.0f probes/sec, %d responders (+%d recovered)"
          % (tax_robust["probes_per_sec"], tax_robust["responders"],
             tax_robust["responders"] - tax_single["responders"]),
          file=sys.stderr)

    tracing = _measure_tracing_overhead(scale, args.seed, repeats)
    print("  tracing:   off +%.2f%% vs baseline, on %.2fx "
          "(%d spans, %d flight events)"
          % (tracing["tracing_off_overhead_pct"],
             tracing["traced_overhead_x"], tracing["spans"],
             tracing["flight_events"]), file=sys.stderr)

    identical = (
        sequential_result.counts() == sharded_result.counts()
        and sequential_result.responders == sharded_result.responders
        and sequential_result.divergent_sources
        == sharded_result.divergent_sources
        and sequential_result.probes_sent == sharded_result.probes_sent)
    speedup = fast["probes_per_sec"] / legacy["probes_per_sec"]
    speedup_sharded = sharded["probes_per_sec"] / legacy["probes_per_sec"]
    report = {
        "benchmark": "scan_engine_throughput",
        "scale": scale,
        "seed": args.seed,
        "repeats": repeats,
        "min_speedup": args.min_speedup,
        "legacy": legacy,
        "fast": fast,
        "sharded": sharded,
        "speedup_fast_vs_legacy": round(speedup, 2),
        "speedup_sharded_vs_legacy": round(speedup_sharded, 2),
        "shard_determinism": {
            "shards_compared": [1, args.check_shards],
            "identical": identical,
            "counts": sequential_result.counts(),
        },
        "robustness_tax": {
            "injected_loss_rate": loss_rate,
            "retries_0": tax_single,
            "retries_2": tax_robust,
            "time_overhead_x": round(
                tax_robust["seconds"] / tax_single["seconds"], 2),
            "responders_recovered": (tax_robust["responders"]
                                     - tax_single["responders"]),
        },
        "tracing_overhead": tracing,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("speedup: %.2fx (sharded %.2fx); determinism: %s; wrote %s"
          % (speedup, speedup_sharded,
             "OK" if identical else "MISMATCH", args.out), file=sys.stderr)

    if not identical:
        print("FAIL: sharded result differs from sequential",
              file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print("FAIL: fast path below %.1fx the seed implementation "
              "(%.2fx)" % (args.min_speedup, speedup), file=sys.stderr)
        return 1
    if tracing["tracing_off_overhead_pct"] >= 2.0:
        print("FAIL: disabled tracing costs %.2f%% against the fast "
              "path (budget: <2%%)"
              % tracing["tracing_off_overhead_pct"], file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
