"""Million-resolver scale benchmark: memory-bounded streaming scan.

Exercises the whole substrate at paper scale: a lazily-materialized
resolver population (``lazy_population=True``) scanned by the
fork-sharded engine in streaming mode (``stream_results=True``), so no
worker ever holds O(population) state.  Two gates:

* **Identity** — at small scale, the streamed scan's pickled
  :class:`ScanResult` must be byte-identical to the resident
  (non-streaming) scan's, including under a pathological chunk size
  that forces hundreds of spill chunks.

* **Boundedness** — at the profile scale (1:27 ≈ 1M pool members /
  ~38M scan targets for the full profile; 1:134 ≈ 200k members for
  ``--quick`` CI runs), each worker's ru_maxrss *growth* across its
  shard must stay within an explicit model: the LFSR selector column
  (1 byte per register state), the in-flight column chunk, the
  materialized-node LRU, a per-touched-member copy-on-write/churn
  allowance, plus fixed slack.  Growth is gated rather
  than the absolute peak because a forked child inherits the parent's
  high-water mark — the pre-fork footprint (world, permutation walk,
  address columns) is shared copy-on-write and would drown the signal.
  Wall clock is gated too, loosely, as a harness-hang tripwire.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_scale          # 1:27, ~1M
    PYTHONPATH=src python -m benchmarks.perf.bench_scale --quick  # 1:134, CI
"""

import argparse
import json
import pickle
import sys
import time

from repro.perf import PerfRegistry, sample_ru_maxrss_kb
from repro.scanner.lfsr import LFSR
from repro.scenario import ScenarioConfig, build_scenario

# Paper population is ~26.8M open resolvers; scale 1:27 puts ~1M pool
# members in the simulated world, 1:134 ~200k (the CI smoke profile).
FULL_SCALE = 27
QUICK_SCALE = 134


def _build(scale, seed, node_cache):
    started = time.perf_counter()
    scenario = build_scenario(ScenarioConfig(
        scale=scale, seed=seed, lazy_population=True,
        node_cache=node_cache))
    return scenario, time.perf_counter() - started


def _run_scan(scenario, shards, stream, chunk_rows, node_cache):
    perf = PerfRegistry()
    campaign = scenario.new_campaign(
        verify=False, shards=shards, perf=perf,
        stream_results=stream, chunk_rows=chunk_rows)
    snapshot = campaign.run_week()
    gauges = perf.snapshot().get("gauges", {})
    return snapshot.result, perf, gauges


def _measure_identity(seed, shards, node_cache):
    """Streamed-vs-resident byte identity at small scale.

    chunk_rows=257 forces many small spill chunks through the
    SnapshotStore; the reassembled result must still pickle to the
    exact bytes of the resident run (``ScanResult.__getstate__``
    canonicalises row order, so chunk partitioning must be invisible).
    """
    stats = {"scale": 20000, "shards": shards, "chunk_rows": 257}
    scenario, __ = _build(20000, seed, node_cache)
    resident, __, __ = _run_scan(scenario, shards, stream=False,
                                 chunk_rows=65536, node_cache=node_cache)
    scenario, __ = _build(20000, seed, node_cache)
    streamed, __, __ = _run_scan(scenario, shards, stream=True,
                                 chunk_rows=257, node_cache=node_cache)
    resident_bytes = pickle.dumps(resident)
    streamed_bytes = pickle.dumps(streamed)
    stats["result_bytes"] = len(resident_bytes)
    stats["rows"] = resident.row_count()
    stats["identical"] = resident_bytes == streamed_bytes
    return stats


def _rss_budget_kb(period, chunk_rows, node_cache, members, shards,
                   slack_kb):
    """The worker RSS-growth model, in KiB.

    selector   — ``bytearray(period + 1)``, 1 byte per LFSR state,
                 built privately inside each worker per scan call;
    chunk      — one in-flight column chunk (~6 B/row) plus its pickle;
    node cache — the materialized-node LRU, ~4 KiB per entry counting
                 the node object graph and its network registration;
    touch      — ~1.5 KiB per pool member the worker probes: fork
                 shares the world copy-on-write, but refcount writes
                 during host lookup dirty pages at page granularity,
                 and each member's one-shot materialization churns the
                 allocator's high-water mark.  Page-granular and
                 measured, not exact — but an order of magnitude below
                 the ~3-4 KiB/member a worker would pay for actually
                 materializing (or eagerly holding) its whole slice,
                 which is the regression this gate exists to catch;
    slack      — interpreter noise: arenas, pipe buffers, temporaries.
    """
    selector_kb = (period + 1) // 1024
    chunk_kb = chunk_rows * 32 // 1024
    cache_kb = node_cache * 4
    touch_kb = members * 3 // (2 * shards)
    return selector_kb + chunk_kb + cache_kb + touch_kb + slack_kb


def _measure_scale(scale, seed, shards, chunk_rows, node_cache, slack_kb):
    scenario, build_seconds = _build(scale, seed, node_cache)
    members = len(scenario.population.resolvers)
    targets = len(scenario.target_space())
    order = LFSR.order_for(targets)
    period = (1 << order) - 1
    result, perf, gauges = _run_scan(scenario, shards, stream=True,
                                     chunk_rows=chunk_rows,
                                     node_cache=node_cache)
    wall = perf.seconds("scan_wall")
    growth = gauges.get("worker_rss_growth_kb", 0)
    budget = _rss_budget_kb(period, chunk_rows, node_cache, members,
                            shards, slack_kb)
    return {
        "scale": scale,
        "shards": shards,
        "chunk_rows": chunk_rows,
        "node_cache": node_cache,
        "pool_members": members,
        "scan_targets": targets,
        "lfsr_order": order,
        "build_seconds": round(build_seconds, 2),
        "scan_seconds": round(wall, 2),
        "probes_sent": result.probes_sent,
        "probes_per_sec": round(result.probes_sent / wall, 1),
        "responsive_rows": result.row_count(),
        "parent_peak_rss_kb": sample_ru_maxrss_kb(),
        "worker_peak_rss_kb": gauges.get("worker_peak_rss_kb", 0),
        "worker_rss_growth_kb": growth,
        "rss_growth_budget_kb": budget,
        "rss_growth_within_budget": growth <= budget,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="million-resolver streaming-scan scale benchmark")
    parser.add_argument("--scale", type=int, default=None,
                        help="override the profile's 1:N scale")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--chunk-rows", type=int, default=65536)
    parser.add_argument("--node-cache", type=int, default=8192)
    parser.add_argument("--quick", action="store_true",
                        help="~200k-member world (CI smoke profile)")
    parser.add_argument("--slack-kb", type=int, default=65536,
                        help="fixed slack in the worker RSS-growth "
                             "budget (KiB)")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="scan wall-clock ceiling (profile default)")
    parser.add_argument("--out", default="BENCH_scale.json")
    args = parser.parse_args(argv)
    scale = args.scale or (QUICK_SCALE if args.quick else FULL_SCALE)
    max_seconds = args.max_seconds or (600.0 if args.quick else 3600.0)

    print("identity check at scale 1:20000...", file=sys.stderr)
    identity = _measure_identity(args.seed, args.shards, args.node_cache)
    print("  streamed == resident: %s (%d rows, %d result bytes)"
          % (identity["identical"], identity["rows"],
             identity["result_bytes"]), file=sys.stderr)

    print("scale run at 1:%d (seed %d, %d shards)..."
          % (scale, args.seed, args.shards), file=sys.stderr)
    stats = _measure_scale(scale, args.seed, args.shards, args.chunk_rows,
                           args.node_cache, args.slack_kb)
    print("  %d pool members, %d scan targets (order-%d LFSR)"
          % (stats["pool_members"], stats["scan_targets"],
             stats["lfsr_order"]), file=sys.stderr)
    print("  build %.1fs, scan %.1fs (%.0f probes/sec)"
          % (stats["build_seconds"], stats["scan_seconds"],
             stats["probes_per_sec"]), file=sys.stderr)
    print("  worker RSS growth %d KiB (budget %d KiB), "
          "worker peak %d KiB, parent peak %d KiB"
          % (stats["worker_rss_growth_kb"], stats["rss_growth_budget_kb"],
             stats["worker_peak_rss_kb"], stats["parent_peak_rss_kb"]),
          file=sys.stderr)

    report = {
        "benchmark": "streaming_scan_scale",
        "profile": "quick" if args.quick else "full",
        "seed": args.seed,
        "max_seconds": max_seconds,
        "identity": identity,
        "scale_run": stats,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out, file=sys.stderr)

    failed = False
    if not identity["identical"]:
        print("FAIL: streamed result differs from resident result",
              file=sys.stderr)
        failed = True
    if not stats["rss_growth_within_budget"]:
        print("FAIL: worker RSS growth %d KiB exceeds the %d KiB model"
              % (stats["worker_rss_growth_kb"],
                 stats["rss_growth_budget_kb"]), file=sys.stderr)
        failed = True
    if stats["scan_seconds"] > max_seconds:
        print("FAIL: scan took %.1fs (ceiling %.1fs)"
              % (stats["scan_seconds"], max_seconds), file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
