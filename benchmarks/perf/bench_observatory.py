"""Observatory benchmark: point-query throughput + answer identity.

Runs a checkpointed campaign, ingests its journal into a fresh
:class:`~repro.observatory.store.ResolverStore`, and gates on:

* **answer identity**: the Table 1/2 fluctuation rankings and the
  Figure 2 survival curve served from the store must be byte-identical
  (same formatter output) to the batch analysis over the campaign's
  live snapshots;
* **durability**: re-ingesting the same journal is a no-op, and the
  store built from a crash-then-resume campaign digests identically to
  the store from an uninterrupted run;
* **latency**: single-process point lookups must sustain at least
  ``LOOKUP_QPS_GATE`` per second with p99 under ``P99_GATE_MS``.

Writes ``BENCH_observatory.json`` (including ingest lag and store
size); exits 1 when a gate fails.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_observatory
    PYTHONPATH=src python -m benchmarks.perf.bench_observatory --quick
"""

import argparse
import json
import sys
import time

from repro.analysis.churn import churn_survival, format_survival
from repro.analysis.geography import (
    country_fluctuation,
    format_fluctuation,
    rir_fluctuation,
)
from repro.checkpoint import CheckpointedRun
from repro.faults import FaultPlan, FaultProfile, InjectedCrash
from repro.observatory import (
    Observatory,
    ResolverStore,
    ingest_checkpoint,
    scenario_geo,
)
from repro.perf import PerfRegistry
from repro.scenario import ScenarioConfig, build_scenario

WEEKS = 4
LOOKUP_QPS_GATE = 50_000
P99_GATE_MS = 1.0


def check(ok, message):
    if not ok:
        print("FAIL: %s" % message, file=sys.stderr)
        return 1
    print("ok: %s" % message, file=sys.stderr)
    return 0


def run_campaign(scale, seed, directory, fault_plan=None, resume=False):
    """One campaign incarnation over a freshly built world."""
    scenario = build_scenario(ScenarioConfig(scale=scale, seed=seed,
                                             loss_rate=0.0))
    campaign = scenario.new_campaign(verify=False)
    checkpoint = CheckpointedRun(directory,
                                 meta={"command": "campaign",
                                       "scale": scale, "seed": seed,
                                       "weeks": WEEKS},
                                 fault_plan=fault_plan, resume=resume)
    try:
        campaign.run(WEEKS, checkpoint=checkpoint)
    finally:
        checkpoint.close()
    return scenario, campaign


def ingest(directory, store_dir, scenario, perf=None):
    store = ResolverStore(store_dir)
    report = ingest_checkpoint(store, directory,
                               geo=scenario_geo(scenario), perf=perf)
    return store, report


def measure_lookups(observatory, ips, rounds):
    """Single-process point-lookup throughput over a cycling IP list."""
    lookup = observatory.lookup
    for ip in ips[:1000]:                       # warm caches
        lookup(ip)
    observatory.perf.histograms.pop("observatory_lookup_seconds", None)
    count = len(ips)
    start = time.perf_counter()
    for index in range(rounds):
        lookup(ips[index % count])
    elapsed = time.perf_counter() - start
    histogram = observatory.perf.histogram("observatory_lookup_seconds")
    return {
        "lookups": rounds,
        "seconds": round(elapsed, 4),
        "qps": round(rounds / elapsed, 1),
        "p50_us": round(histogram.percentile(50) * 1e6, 2),
        "p99_us": round(histogram.percentile(99) * 1e6, 2),
        "max_us": round((histogram.max or 0.0) * 1e6, 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=int, default=20000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="smaller world + fewer lookups (CI smoke)")
    parser.add_argument("--lookups", type=int, default=None,
                        help="point lookups to time (default 200000, "
                             "quick 60000)")
    parser.add_argument("--out", default="BENCH_observatory.json")
    args = parser.parse_args(argv)
    scale = 60000 if args.quick else args.scale
    rounds = args.lookups or (60_000 if args.quick else 200_000)

    import tempfile
    failures = 0
    with tempfile.TemporaryDirectory(prefix="bench-observatory-") as tmp:
        print("campaign @ scale 1:%d seed %d, %d weeks..."
              % (scale, args.seed, WEEKS), file=sys.stderr)
        ckpt = "%s/ckpt" % tmp
        scenario, campaign = run_campaign(scale, args.seed, ckpt)

        print("ingest...", file=sys.stderr)
        perf = PerfRegistry()
        store, report = ingest(ckpt, "%s/store" % tmp, scenario, perf)
        failures += check(
            report.units_folded >= WEEKS and len(store) > 0,
            "ingested %d units -> %d resolvers, %d weeks, %.2fs"
            % (report.units_folded, len(store), len(store.weeks()),
               report.seconds))

        observatory = Observatory(store, perf=perf)

        # -- answer identity (Tables 1/2 + Figure 2) -------------------
        first = campaign.snapshots[0].result
        last = campaign.snapshots[-1].result
        batch_rows, batch_share = country_fluctuation(first, last,
                                                      scenario.geoip)
        store_rows, store_share = observatory.country_rankings()
        table1_equal = (format_fluctuation(store_rows, "Country")
                        == format_fluctuation(batch_rows, "Country")
                        and store_share == batch_share)
        failures += check(table1_equal,
                          "Table 1 byte-identical to batch analysis")
        table2_equal = (
            format_fluctuation(observatory.rir_rankings(), "RIR")
            == format_fluctuation(rir_fluctuation(first, last,
                                                  scenario.geoip),
                                  "RIR"))
        failures += check(table2_equal,
                          "Table 2 byte-identical to batch analysis")
        survival_equal = (format_survival(observatory.survival())
                          == format_survival(
                              churn_survival(campaign.snapshots)))
        failures += check(survival_equal,
                          "Figure 2 byte-identical to batch analysis")

        # -- idempotence + crash-resume equality -----------------------
        digest = store.digest()
        again = ingest_checkpoint(store, ckpt,
                                  geo=scenario_geo(scenario))
        failures += check(
            not again.changed() and store.digest() == digest,
            "re-ingest of the same journal is a no-op")

        print("crash-resume campaign...", file=sys.stderr)
        crashed_ckpt = "%s/crashed" % tmp
        plan = FaultPlan(FaultProfile(crash_points=("week:1",)),
                         seed=args.seed)
        try:
            run_campaign(scale, args.seed, crashed_ckpt,
                         fault_plan=plan)
        except InjectedCrash:
            pass
        resumed_scenario, __ = run_campaign(scale, args.seed,
                                            crashed_ckpt, resume=True)
        resumed_store, __ = ingest(crashed_ckpt,
                                   "%s/resumed-store" % tmp,
                                   resumed_scenario)
        failures += check(
            resumed_store.digest() == digest,
            "crash-resumed store digests identical to uninterrupted")

        # -- point-lookup throughput -----------------------------------
        ips = store.rows_where()
        print("timing %d point lookups over %d resolvers..."
              % (rounds, len(ips)), file=sys.stderr)
        lookups = measure_lookups(observatory, ips, rounds)
        failures += check(
            lookups["qps"] >= LOOKUP_QPS_GATE,
            "%.0f lookups/s (gate %d)" % (lookups["qps"],
                                          LOOKUP_QPS_GATE))
        failures += check(
            lookups["p99_us"] < P99_GATE_MS * 1000,
            "p99 %.1fus (gate %.0fus)" % (lookups["p99_us"],
                                          P99_GATE_MS * 1000))

        report_json = {
            "scale": scale,
            "seed": args.seed,
            "weeks": WEEKS,
            "resolvers": len(store),
            "ingest_seconds": round(report.seconds, 3),
            "ingest_lag_records_at_start": report.lag_records,
            "ingest_lag_records_after": max(
                0, report.lag_records - report.units_seen),
            "store_generation": store.generation,
            "store_disk_bytes": store.disk_bytes(),
            "lookup": lookups,
            "lookup_qps_gate": LOOKUP_QPS_GATE,
            "p99_gate_ms": P99_GATE_MS,
            "table1_identical": table1_equal,
            "table2_identical": table2_equal,
            "survival_identical": survival_equal,
            "reingest_noop": not again.changed(),
            "crash_resume_identical":
                resumed_store.digest() == digest,
            "passed": failures == 0,
        }
    with open(args.out, "w") as handle:
        json.dump(report_json, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out, file=sys.stderr)

    if failures:
        print("%d observatory gate(s) failed" % failures,
              file=sys.stderr)
        return 1
    print("observatory passed: %.0f lookups/s, p99 %.0fus, "
          "store %d bytes"
          % (lookups["qps"], lookups["p99_us"],
             report_json["store_disk_bytes"]), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
