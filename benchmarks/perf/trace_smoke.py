"""Trace smoke run: a tiny traced campaign under injected faults.

The CI gate for the observability plane (:mod:`repro.obs`).  It runs a
small sharded weekly scan with tracing and the flight recorder enabled
under the ``mild`` fault profile plus a forced worker kill, exports the
trace to JSONL, and asserts:

1. the exported file validates against the trace schema (meta line
   first, complete span records, resolvable parentage, no duplicate
   span ids);
2. spans cover the scan stack — a root ``scan`` span with worker
   ``shard`` spans parented under it, across at least two shards;
3. faults actually fired, and **every** lost probe in the flight ring
   carries a drop cause (100% loss attribution), with the injected
   fault rule visible among the causes;
4. the `repro trace` CLI renders the report and validates the file.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.trace_smoke
    PYTHONPATH=src python -m benchmarks.perf.trace_smoke --out t.jsonl
"""

import argparse
import os
import sys
import tempfile

from repro.cli import main as cli_main
from repro.obs import read_trace, validate_trace

SCALE = 60000
SEED = 7
SHARDS = 3
SPEC = "mild,kill=0"


def check(condition, message):
    if not condition:
        print("FAIL: %s" % message, file=sys.stderr)
        return 1
    print("ok: %s" % message, file=sys.stderr)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description="trace smoke gate")
    parser.add_argument("--out", default=None,
                        help="trace JSONL path (default: a temp dir, so "
                             "CI can pass a stable path to upload)")
    args = parser.parse_args(argv)
    failures = 0
    trace_path = args.out or os.path.join(
        tempfile.mkdtemp(prefix="trace_smoke_"), "trace.jsonl")
    print("traced chaos scan (scale 1:%d, seed %d, %d shards, %r)..."
          % (SCALE, SEED, SHARDS, SPEC), file=sys.stderr)
    status = cli_main(["scan", "--scale", str(SCALE), "--seed", str(SEED),
                       "--shards", str(SHARDS), "--faults", SPEC,
                       "--retries", "1", "--trace-out", trace_path])
    failures += check(status == 0, "traced scan exits 0 (%r)" % status)
    failures += check(os.path.exists(trace_path),
                      "trace written to %s" % trace_path)

    records = read_trace(trace_path)
    stats = validate_trace(records)
    failures += check(stats["spans"] >= 3,
                      "schema valid: %d spans, %d flight events"
                      % (stats["spans"], stats["flight_events"]))

    spans = [r for r in records if r.get("type") == "span"]
    roots = [s for s in spans if s["stage"] == "scan"]
    shard_spans = [s for s in spans if s["stage"] == "shard"]
    failures += check(len(roots) == 1, "single scan root span")
    failures += check(len(shard_spans) >= 2,
                      "shard spans from >=2 shards (%d)" % len(shard_spans))
    if roots:
        failures += check(
            all(s["parent_id"] == roots[0]["span_id"] for s in shard_spans),
            "every shard span parents under the scan span")
    attempts = sorted(s["attrs"].get("attempt", 0) for s in shard_spans)
    failures += check(attempts and attempts[-1] >= 1,
                      "killed worker's retry visible (attempts %s)"
                      % attempts)

    meta = records[0]
    causes = meta.get("drop_causes", {})
    fault_causes = {c: n for c, n in causes.items()
                    if c.startswith("fault:")}
    failures += check(sum(fault_causes.values()) > 0,
                      "injected faults attributed in flight ring: %s"
                      % sorted(fault_causes.items()))
    failures += check(stats["losses"] > 0
                      and stats["losses"] == stats["losses_attributed"],
                      "100%% loss attribution (%d/%d)"
                      % (stats["losses_attributed"], stats["losses"]))

    failures += check(
        cli_main(["trace", trace_path, "--validate-only"]) == 0,
        "`repro trace --validate-only` accepts the export")
    failures += check(cli_main(["trace", trace_path]) == 0,
                      "`repro trace` renders the report")

    if failures:
        print("trace smoke: %d failure(s)" % failures, file=sys.stderr)
        return 1
    print("trace smoke: all checks passed (%s)" % trace_path,
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
