"""Chaos-resume smoke run: kill-anywhere resume under injected crashes.

The CI gate for the checkpoint subsystem.  It runs one full study
uninterrupted and a second one that is crashed at a campaign week
boundary, crashed again inside the study units, and hit with a torn
journal append — resuming after every death — and asserts:

1. every injected crash actually killed an incarnation (exit via
   ``InjectedCrash``) and none re-fired after resume;
2. the torn journal tail was detected and set aside (nonzero
   ``journal_torn_bytes`` or quarantined records) without aborting;
3. resume provenance shows real replay (``resumed``,
   ``units_restored`` > 0);
4. the resumed study's rendered markdown report is *byte-identical*
   to the uninterrupted run's.

Both runs install the same (otherwise inert) fault plan: a plan's
presence changes which salted draws the network makes, so the fair
baseline shares the profile and differs only in crash/torn points.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.chaos_resume
"""

import shutil
import sys
import tempfile

from repro.checkpoint import CheckpointedRun
from repro.faults import FaultPlan, InjectedCrash, parse_fault_spec
from repro.reporting import render_markdown, run_full_study
from repro.scenario import ScenarioConfig, build_scenario

SCALE = 120000
SEED = 3
WEEKS = 1
SNOOP_SAMPLE = 5
CATEGORIES = ("Alexa", "Banking")
SPEC_CLEAN = "none"
# torn=2 lands on the fingerprint unit's commit record: sequence 0 is
# the week commit and 1 the journaled week-crash occurrence, which is
# appended outside the torn-write draw.
SPEC_CHAOS = "none,crash=week:campaign/0,crash=study:snoop,torn=2"
MAX_RESTARTS = 8


def build_scenario_with(spec):
    scenario = build_scenario(ScenarioConfig(scale=SCALE, seed=SEED))
    scenario.network.install_faults(
        FaultPlan(parse_fault_spec(spec), seed=SEED))
    return scenario


def study(scenario, checkpoint=None):
    return run_full_study(scenario, weeks=WEEKS,
                          snoop_sample=SNOOP_SAMPLE,
                          pipeline_categories=CATEGORIES,
                          checkpoint=checkpoint)


def run_until_done(directory):
    """Restart the checkpointed study until an incarnation survives."""
    crashes = []
    torn_bytes = 0
    quarantined = 0
    for attempt in range(MAX_RESTARTS):
        scenario = build_scenario_with(SPEC_CHAOS)
        checkpoint = CheckpointedRun(directory, resume=attempt > 0,
                                     fault_plan=scenario.network.faults)
        torn_bytes += checkpoint.provenance["journal_torn_bytes"]
        quarantined += checkpoint.provenance["journal_records_quarantined"]
        try:
            results = study(scenario, checkpoint=checkpoint)
        except InjectedCrash as crash:
            crashes.append(str(crash))
            checkpoint.close()
            continue
        provenance = checkpoint.provenance
        checkpoint.close()
        return results, provenance, crashes, torn_bytes, quarantined
    raise RuntimeError("study did not finish within %d restarts"
                       % MAX_RESTARTS)


def check(condition, message):
    if not condition:
        print("FAIL: %s" % message, file=sys.stderr)
        return 1
    print("ok: %s" % message, file=sys.stderr)
    return 0


def main():
    failures = 0
    print("clean study (scale 1:%d, seed %d, %r)..."
          % (SCALE, SEED, SPEC_CLEAN), file=sys.stderr)
    clean = study(build_scenario_with(SPEC_CLEAN))
    clean_report = render_markdown(clean)

    directory = tempfile.mkdtemp(prefix="chaos-resume-")
    try:
        print("chaos study (%r, resume after every death)..."
              % SPEC_CHAOS, file=sys.stderr)
        resumed, provenance, crashes, torn_bytes, quarantined = \
            run_until_done(directory)

        failures += check(len(crashes) == 3,
                          "three injected deaths observed: %s" % crashes)
        failures += check(torn_bytes > 0 or quarantined > 0,
                          "torn journal tail set aside (%d bytes, "
                          "%d records quarantined)"
                          % (torn_bytes, quarantined))
        failures += check(provenance["resumed"],
                          "final incarnation resumed from the journal")
        failures += check(provenance["units_restored"] > 0,
                          "units restored instead of re-run (%d)"
                          % provenance["units_restored"])
        failures += check(provenance["journal_records_replayed"] > 0,
                          "journal replayed (%d records)"
                          % provenance["journal_records_replayed"])

        resumed_report = render_markdown(resumed)
        failures += check(resumed_report == clean_report,
                          "resumed report byte-identical to clean run "
                          "(%d bytes)" % len(clean_report))
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    if failures:
        print("%d chaos resume check(s) failed" % failures,
              file=sys.stderr)
        return 1
    print("chaos resume passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
