"""Scan-engine throughput benchmarks (``python -m benchmarks.perf.bench_scan``)."""
