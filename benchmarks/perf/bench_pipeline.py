"""Classification-pipeline benchmark: sharded domain scan + NN-chain.

Three measurements, written to ``BENCH_pipeline.json``:

1. **Shard equivalence** — the sharded domain scan's concatenated
   observation list must be bit-identical to the sequential
   ``DomainScanner.scan`` for shard counts 1, 2, 4 and 7.  This is the
   bench-side recheck of the engine's keystone invariant (the pinned
   test in ``tests/scanner/test_domainengine.py`` covers it too).
2. **Clustering** — the NN-chain agglomeration against the seed's
   pair-scan, twice: once *cold* on synthetic page profiles with the
   real :class:`PageDistance` (both algorithms evaluate every pair
   exactly once through the memo, so cold times track distance cost),
   and once in the *warm* regime with memo-hit-cost distances, which
   isolates the algorithmic O(n^3) -> O(n^2) win that dominates weekly
   re-runs over cached content.  Both variants must produce identical
   clusters and merge distances.
3. **Composite** — sequential scan + pair-scan clustering versus
   best-shards scan + NN-chain clustering (warm regime); the end-to-end
   speedup gates at 2.0x.  The timed shard count is capped at the
   machine's CPU count: forking past the core count only adds overhead,
   which the ``sharded_requested`` row records for the curious.

A real pipeline run with a :class:`PerfRegistry` rides along so the new
instrumentation (``pipeline_domain_scan_qps``, distance/feature cache
hit rates, ``pipeline_distance_evals_avoided``) lands in the report.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_pipeline
    PYTHONPATH=src python -m benchmarks.perf.bench_pipeline --quick
"""

import argparse
import json
import os
import random
import sys
import time

from repro.core.clustering import hierarchical_cluster
from repro.core.distance import FeatureCache, MemoizedDistance, PageDistance
from repro.datasets import DOMAIN_SETS
from repro.perf import PerfRegistry
from repro.scanner import DomainScanEngine, DomainScanner
from repro.scenario import ScenarioConfig, build_scenario

SHARD_COUNTS = (1, 2, 4, 7)
PIPELINE_SET = "Dating"


def _build(scale, seed):
    return build_scenario(ScenarioConfig(scale=scale, seed=seed))


def fingerprint(observations):
    """Every field of every observation, order-preserving."""
    return [(o.domain, o.resolver_ip, o.rcode, tuple(o.addresses),
             o.source_ip, o.ns_record_count,
             tuple((r, tuple(a)) for r, a in o.all_responses),
             o.injected_suspect)
            for o in observations]


def scan_fixture(scenario, resolver_count):
    resolvers = sorted(scenario.online_resolver_ips())[:resolver_count]
    domains = [d.name for d in DOMAIN_SETS["Banking"]] \
        + [d.name for d in DOMAIN_SETS["NX"]]
    return resolvers, domains


def check_equivalence(scale, seed, resolver_count):
    """Fingerprint the scan at every shard count; all must agree."""
    scenario = _build(scale, seed)
    resolvers, domains = scan_fixture(scenario, resolver_count)
    baseline = None
    for shards in SHARD_COUNTS:
        engine = DomainScanEngine(
            DomainScanner(scenario.network, scenario.pipeline_source_ip),
            shards=shards)
        # Flow-keyed packet fates are per clock epoch; the campaign
        # advances the clock between scans, so the bench must too.
        scenario.network.clock.advance(1)
        observed = fingerprint(engine.scan(resolvers, domains))
        if baseline is None:
            baseline = observed
        elif observed != baseline:
            return {"identical": False, "first_mismatch_shards": shards,
                    "observations": len(baseline)}
    return {"identical": True, "shard_counts": list(SHARD_COUNTS),
            "observations": len(baseline), "resolvers": len(resolvers),
            "domains": len(domains)}


def measure_scan(scale, seed, shards, repeats, resolver_count):
    """Best-of-``repeats`` wall time of the domain scan, fresh scenario
    per repetition."""
    samples = []
    for __ in range(repeats):
        scenario = _build(scale, seed)
        resolvers, domains = scan_fixture(scenario, resolver_count)
        engine = DomainScanEngine(
            DomainScanner(scenario.network, scenario.pipeline_source_ip),
            shards=shards)
        scenario.network.clock.advance(1)
        start = time.perf_counter()
        observations = engine.scan(resolvers, domains)
        samples.append((time.perf_counter() - start, len(observations)))
    elapsed, count = min(samples, key=lambda item: item[0])
    queries = resolver_count * len(domains)
    return {
        "shards": shards,
        "observations": count,
        "queries": queries,
        "seconds": round(elapsed, 4),
        "queries_per_sec": round(queries / elapsed, 1),
    }


def synthetic_bodies(count, seed):
    """Pages in a handful of families with per-page noise, so clustering
    has real structure to find."""
    rng = random.Random(seed)
    words = ["alpha", "beta", "gamma", "delta", "block", "proxy",
             "login", "bank", "search", "ads", "portal", "error"]
    bodies = []
    for i in range(count):
        family = i % 12
        filler = " ".join(rng.choice(words)
                          for __ in range(rng.randint(5, 30)))
        bodies.append(
            "<html><head><title>Family %d portal</title></head>"
            "<body><h1>site %d</h1><p>%s</p>"
            "<a href='/landing%d'>go</a></body></html>"
            % (family, family, filler, family))
    return bodies


def _cluster_key(clusters):
    return [frozenset(c.indices) for c in clusters]


def measure_clustering_cold(count, seed, threshold=0.30):
    """Both algorithms on real page profiles through the shared caches;
    every pair is evaluated once, so times track distance cost."""
    features = FeatureCache()
    profiles = [features.profile_of(body)
                for body in synthetic_bodies(count, seed)]
    rows = {}
    outputs = {}
    for algorithm in ("pair-scan", "nn-chain"):
        distance = MemoizedDistance(PageDistance())
        start = time.perf_counter()
        clusters, dendrogram = hierarchical_cluster(
            profiles, distance, threshold, algorithm=algorithm)
        elapsed = time.perf_counter() - start
        rows[algorithm] = {
            "seconds": round(elapsed, 4),
            "clusters": len(clusters),
            "distance_evals": distance.evaluations,
        }
        outputs[algorithm] = (_cluster_key(clusters),
                              dendrogram.merge_distances())
    return rows, outputs


def measure_clustering_warm(count, seed, threshold=5.0):
    """Memo-hit-cost distances: isolates the O(n^3) -> O(n^2) win."""
    rng = random.Random(seed)
    values = [round(rng.uniform(0, 1000), 3) for __ in range(count)]

    def warm_distance(a, b):
        return abs(a - b)

    rows = {}
    outputs = {}
    for algorithm in ("pair-scan", "nn-chain"):
        start = time.perf_counter()
        clusters, dendrogram = hierarchical_cluster(
            values, warm_distance, threshold, algorithm=algorithm)
        elapsed = time.perf_counter() - start
        rows[algorithm] = {
            "seconds": round(elapsed, 4),
            "clusters": len(clusters),
        }
        outputs[algorithm] = (_cluster_key(clusters),
                              dendrogram.merge_distances())
    return rows, outputs


def _approx_equal(left, right, tolerance=1e-9):
    return len(left) == len(right) and all(
        abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))
        for a, b in zip(left, right))


def measure_pipeline_perf(scale, seed, shards):
    """One real pipeline run; returns the new instrumentation."""
    scenario = _build(scale, seed)
    perf = PerfRegistry()
    resolvers = sorted(
        scenario.new_campaign(verify=False).run_week().result.noerror)
    pipeline = scenario.new_pipeline(shards=shards, perf=perf)
    report = pipeline.run(resolvers, list(DOMAIN_SETS[PIPELINE_SET]))
    return {
        "domain_set": PIPELINE_SET,
        "resolvers": len(resolvers),
        "observations": len(report.observations),
        "clusters": len(report.clusters),
        "degraded": report.degraded,
        "pipeline_domain_scan_qps": round(
            perf.gauge_value("pipeline_domain_scan_qps"), 1),
        "pipeline_distance_evals_avoided": perf.counter(
            "pipeline_distance_evals_avoided"),
        "pipeline_distance_cache_hit_rate": round(
            perf.gauge_value("pipeline_distance_cache_hit_rate"), 4),
        "pipeline_feature_cache_hit_rate": round(
            perf.gauge_value("pipeline_feature_cache_hit_rate"), 4),
        "distance_evals": perf.counter("distance_evals"),
        "feature_extractions": perf.counter("feature_extractions"),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="classification-pipeline benchmark")
    parser.add_argument("--scale", type=int, default=20000,
                        help="1:N scale of the simulated Internet")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=4,
                        help="requested worker count for the sharded "
                             "scan timing (capped at the CPU count)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller fixtures (CI smoke run)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per timed variant")
    parser.add_argument("--out", default="BENCH_pipeline.json")
    args = parser.parse_args(argv)
    scale = 60000 if args.quick else args.scale
    repeats = 2 if args.quick else max(1, args.repeats)
    scan_resolvers = 120 if args.quick else 300
    check_resolvers = 40 if args.quick else 60
    cold_pages = 90 if args.quick else 150
    warm_items = 600 if args.quick else 900
    cpu = os.cpu_count() or 1
    effective_shards = max(1, min(args.shards, cpu))

    print("pipeline bench at scale 1:%d (seed %d, best of %d, %d cpus)..."
          % (scale, args.seed, repeats, cpu), file=sys.stderr)

    equivalence = check_equivalence(scale, args.seed, check_resolvers)
    print("  equivalence: shards %s -> %s" % (
        list(SHARD_COUNTS),
        "identical" if equivalence["identical"] else "MISMATCH"),
        file=sys.stderr)

    sequential = measure_scan(scale, args.seed, shards=1,
                              repeats=repeats,
                              resolver_count=scan_resolvers)
    print("  scan seq:        %8.0f q/s" % sequential["queries_per_sec"],
          file=sys.stderr)
    best_scan = sequential
    sharded = None
    if effective_shards > 1:
        sharded = measure_scan(scale, args.seed, shards=effective_shards,
                               repeats=repeats,
                               resolver_count=scan_resolvers)
        print("  scan sharded(%d): %8.0f q/s"
              % (effective_shards, sharded["queries_per_sec"]),
              file=sys.stderr)
        if sharded["seconds"] < best_scan["seconds"]:
            best_scan = sharded
    sharded_requested = None
    if args.shards > effective_shards:
        # Over-forking past the core count: informational only.
        sharded_requested = measure_scan(scale, args.seed,
                                         shards=args.shards, repeats=1,
                                         resolver_count=scan_resolvers)
        print("  scan sharded(%d): %8.0f q/s (over core count)"
              % (args.shards, sharded_requested["queries_per_sec"]),
              file=sys.stderr)

    cold_rows, cold_outputs = measure_clustering_cold(cold_pages,
                                                      args.seed)
    warm_rows, warm_outputs = measure_clustering_warm(warm_items,
                                                      args.seed)
    clusters_identical = True
    for outputs in (cold_outputs, warm_outputs):
        scan_clusters, scan_merges = outputs["pair-scan"]
        chain_clusters, chain_merges = outputs["nn-chain"]
        if scan_clusters != chain_clusters \
                or not _approx_equal(scan_merges, chain_merges):
            clusters_identical = False
    warm_speedup = (warm_rows["pair-scan"]["seconds"]
                    / warm_rows["nn-chain"]["seconds"])
    print("  clustering cold (n=%d): pair-scan %.2fs, nn-chain %.2fs"
          % (cold_pages, cold_rows["pair-scan"]["seconds"],
             cold_rows["nn-chain"]["seconds"]), file=sys.stderr)
    print("  clustering warm (n=%d): pair-scan %.2fs, nn-chain %.2fs "
          "(%.1fx)" % (warm_items, warm_rows["pair-scan"]["seconds"],
                       warm_rows["nn-chain"]["seconds"], warm_speedup),
          file=sys.stderr)

    baseline_seconds = (sequential["seconds"]
                        + warm_rows["pair-scan"]["seconds"])
    optimised_seconds = (best_scan["seconds"]
                         + warm_rows["nn-chain"]["seconds"])
    composite_speedup = baseline_seconds / optimised_seconds

    pipeline_perf = measure_pipeline_perf(scale, args.seed,
                                          shards=effective_shards)
    print("  pipeline run: %.0f q/s, distance cache hit rate %.0f%%"
          % (pipeline_perf["pipeline_domain_scan_qps"],
             100 * pipeline_perf["pipeline_distance_cache_hit_rate"]),
          file=sys.stderr)

    report = {
        "benchmark": "classification_pipeline",
        "scale": scale,
        "seed": args.seed,
        "cpus": cpu,
        "shard_equivalence": equivalence,
        "scan": {
            "sequential": sequential,
            "sharded": sharded,
            "sharded_requested": sharded_requested,
        },
        "clustering": {
            "cold": cold_rows,
            "warm": warm_rows,
            "warm_speedup": round(warm_speedup, 2),
            "identical_clusters": clusters_identical,
        },
        "composite": {
            "baseline_seconds": round(baseline_seconds, 4),
            "optimised_seconds": round(optimised_seconds, 4),
            "speedup": round(composite_speedup, 2),
            "baseline": "sequential scan + pair-scan clustering",
            "optimised": "best-shards scan + nn-chain clustering",
        },
        "pipeline_perf": pipeline_perf,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("composite speedup: %.2fx; equivalence: %s; clusters: %s; "
          "wrote %s"
          % (composite_speedup,
             "OK" if equivalence["identical"] else "MISMATCH",
             "OK" if clusters_identical else "MISMATCH", args.out),
          file=sys.stderr)

    if not equivalence["identical"]:
        print("FAIL: sharded domain scan differs from sequential",
              file=sys.stderr)
        return 1
    if not clusters_identical:
        print("FAIL: nn-chain clusters differ from pair-scan",
              file=sys.stderr)
        return 1
    if composite_speedup < 2.0:
        print("FAIL: composite speedup below 2.0x (%.2fx)"
              % composite_speedup, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
