"""Chaos smoke run: scan + pipeline under aggressive injected faults.

The CI gate for the fault-injection plane and the supervision/recovery
machinery.  It runs a small sharded scan under the ``aggressive``
profile with a forced worker kill and retries enabled, then a
classification pipeline with bounded fetches and a tight error budget,
and asserts:

1. faults actually fired (nonzero ``fault_*`` counters);
2. the killed worker was recovered without a full-space rescan and the
   degradation is visible in the result's provenance;
3. the degraded run is bit-identical across two same-seed executions;
4. the pipeline completes and reports instead of raising.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.chaos_smoke
"""

import sys

from repro.faults import FaultPlan, parse_fault_spec
from repro.perf import PerfRegistry
from repro.scenario import ScenarioConfig, build_scenario

SCALE = 60000
SEED = 7
SHARDS = 3
SPEC = "aggressive,kill=0"


def chaos_scan():
    """One sharded scan of a fresh world under the chaos plan."""
    scenario = build_scenario(ScenarioConfig(scale=SCALE, seed=SEED))
    scenario.network.install_faults(
        FaultPlan(parse_fault_spec(SPEC), seed=SEED))
    perf = PerfRegistry()
    campaign = scenario.new_campaign(verify=False, shards=SHARDS,
                                     perf=perf, retries=1)
    result = campaign.run_week().result
    return scenario, result, perf


def fingerprint(result):
    return (result.counts(), sorted(result.responders),
            sorted(result.divergent_sources), result.probes_sent,
            result.retransmissions,
            [tuple(sorted(e.items())) for e in result.provenance])


def check(condition, message):
    if not condition:
        print("FAIL: %s" % message, file=sys.stderr)
        return 1
    print("ok: %s" % message, file=sys.stderr)
    return 0


def hostile_scan():
    """A sharded adaptive scan of a fresh world behind the default
    hostile defensive population (no injected faults: the defenses are
    the chaos)."""
    from repro.netsim.defense import install_hostile_population
    scenario = build_scenario(ScenarioConfig(scale=SCALE, seed=SEED))
    install_hostile_population(scenario.network,
                               scenario.target_space().prefixes,
                               seed=SEED)
    campaign = scenario.new_campaign(verify=False, shards=SHARDS,
                                     pacing="adaptive")
    result = campaign.run_week().result
    return scenario, result


def hostile_fingerprint(result):
    return fingerprint(result) + (sorted(result.suppressed.items()),)


def delta_chaos_campaign():
    """A differential campaign under injected faults.

    The aggressive profile's loss/bursts fail enough audit probes to
    blow a tight drift budget: the campaign must fall back to a full
    sweep *and say so* — escalation provenance, not silent staleness.
    """
    from repro.scanner import DeltaConfig
    scenario = build_scenario(ScenarioConfig(scale=SCALE, seed=SEED))
    scenario.network.install_faults(
        FaultPlan(parse_fault_spec("aggressive"), seed=SEED))
    campaign = scenario.new_campaign(
        verify=False, shards=SHARDS,
        delta=DeltaConfig(audit_fraction=0.5, drift_budget=0.05,
                          full_sweep_every=4))
    campaign.run(3)
    return scenario, campaign


def delta_fingerprint(campaign):
    return [fingerprint(snapshot.result)
            + (sorted(snapshot.result.carried.items()),)
            for snapshot in campaign.snapshots]


def main():
    failures = 0
    print("chaos scan 1/2 (scale 1:%d, seed %d, %d shards, %r)..."
          % (SCALE, SEED, SHARDS, SPEC), file=sys.stderr)
    scenario, first, perf = chaos_scan()
    counters = scenario.network.fault_counters

    failures += check(counters.get("injected_loss", 0) > 0,
                      "injected loss fired (%d)"
                      % counters.get("injected_loss", 0))
    failures += check(sum(counters.values()) > 0,
                      "fault counters nonzero: %s"
                      % sorted(counters.items()))
    failures += check(perf.counter("worker_deaths") >= 1,
                      "forced worker death observed (%d)"
                      % perf.counter("worker_deaths"))
    failures += check(first.degraded_shards,
                      "degraded shards recorded in provenance: %s"
                      % [e["status"] for e in first.degraded_shards])
    failures += check(len(first.provenance) >= SHARDS,
                      "every work item has a provenance entry (%d)"
                      % len(first.provenance))
    failures += check(first.responders,
                      "scan still found %d responders"
                      % len(first.responders))
    failures += check(first.retransmissions > 0,
                      "retries active (%d retransmissions)"
                      % first.retransmissions)
    # Recovery stayed narrow: total probes = one per allowed target per
    # attempt; a full-space fallback rescan would double the volume.
    space = len(scenario.target_space())
    failures += check(first.probes_sent <= 2 * space,
                      "no full-space rescan (%d probes over %d targets)"
                      % (first.probes_sent, space))

    print("chaos scan 2/2 (rerun, same seed)...", file=sys.stderr)
    __, second, __unused = chaos_scan()
    failures += check(fingerprint(first) == fingerprint(second),
                      "degraded run bit-identical across reruns")

    print("hostile population (defenses up, adaptive pacing)...",
          file=sys.stderr)
    hostile_scenario, hostile = hostile_scan()
    defense_counters = {key: count for key, count
                        in hostile_scenario.network.fault_counters.items()
                        if key.startswith("defense:")}
    failures += check(sum(defense_counters.values()) > 0,
                      "defensive middleboxes fired: %s"
                      % sorted(defense_counters.items()))
    failures += check(hostile.suppressed_targets > 0,
                      "pacing suppressions recorded (%d targets)"
                      % hostile.suppressed_targets)
    failures += check(
        all(entry["cause"].startswith("defense:")
            for entry in hostile.degraded_shards
            if entry["status"] == "suppressed"),
        "suppressed provenance carries defense:* causes")
    failures += check(hostile.responders,
                      "adaptive scan still found %d responders"
                      % len(hostile.responders))
    __, hostile_again = hostile_scan()
    failures += check(
        hostile_fingerprint(hostile) == hostile_fingerprint(hostile_again),
        "hostile-population run bit-identical across reruns")

    print("delta campaign under faults...", file=sys.stderr)
    __, delta_campaign = delta_chaos_campaign()
    statuses = [entry.get("status")
                for snapshot in delta_campaign.snapshots
                for entry in snapshot.result.degraded_shards]
    failures += check(
        "delta_full_sweep" in statuses or "delta_escalated" in statuses,
        "fault-driven drift escalated and was reported: %s"
        % sorted(set(statuses)))
    causes = {entry.get("cause")
              for snapshot in delta_campaign.snapshots
              for entry in snapshot.result.provenance
              if entry.get("kind") == "delta"
              or str(entry.get("status", "")).startswith("delta")}
    failures += check(
        all(cause is None or cause.startswith("delta:")
            for cause in causes),
        "escalation provenance carries delta:* causes: %s"
        % sorted(cause for cause in causes if cause))
    failures += check(
        delta_campaign.last().result.responders,
        "delta campaign under faults still found %d responders"
        % len(delta_campaign.last().result.responders))
    __, delta_again = delta_chaos_campaign()
    failures += check(
        delta_fingerprint(delta_campaign) == delta_fingerprint(delta_again),
        "faulted delta campaign bit-identical across reruns")

    print("pipeline under faults...", file=sys.stderr)
    from repro.datasets import DOMAIN_SETS
    pipeline = scenario.new_pipeline(fetch_timeout=5.0, error_budget=25)
    resolvers = sorted(first.noerror)[:40]
    report = pipeline.run(resolvers, list(DOMAIN_SETS["Banking"]))
    failures += check(len(report.observations) > 0,
                      "pipeline produced %d observations"
                      % len(report.observations))
    failures += check(isinstance(report.degraded, list),
                      "degradation provenance present (%d entries)"
                      % len(report.degraded))

    if failures:
        print("%d chaos smoke check(s) failed" % failures,
              file=sys.stderr)
        return 1
    print("chaos smoke passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
