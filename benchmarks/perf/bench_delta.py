"""Delta-scanning benchmark: probe savings, fidelity, drift fallback.

Runs the weekly campaign twice over identical worlds — once as full
sweeps every week (the baseline), once differentially
(:mod:`repro.scanner.delta`) — and gates on:

* **probe volume**: steady-state delta weeks must spend at most
  ``1/SAVINGS_GATE`` of a full sweep's probes;
* **fidelity**: the Figure 2 survival curve may deviate at most
  ``SURVIVAL_TOLERANCE_PP`` percentage points at any week, and the
  Table 1 country ranking must keep the same top-10 set and top-3
  order (first and last weeks are always measured full sweeps);
* **robustness**: an injected churn spike — hosts killed out-of-model
  in prefixes the forecast calls stable — must drive an automatic
  escalation back to a full sweep, reported in provenance and
  attributed in the flight recorder with 100% ``delta:*`` causes.

Writes ``BENCH_delta.json``; exits 1 when a gate fails.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.bench_delta
    PYTHONPATH=src python -m benchmarks.perf.bench_delta --quick
"""

import argparse
import json
import sys
import time

from repro.obs import Observability
from repro.perf import PerfRegistry
from repro.scanner import DeltaConfig
from repro.scanner.delta import DELTA_CAUSE_PREFIX, delta_summary
from repro.scenario import ScenarioConfig, build_scenario

SAVINGS_GATE = 5.0
SURVIVAL_TOLERANCE_PP = 2.0
WEEKS = 8
FULL_SWEEP_EVERY = 4
SPIKE_WEEK = 2
SPIKE_KILL_SHARE = 0.8


def _spike(scenario, share):
    """Kill ``share`` of the online hosts in pools the churn forecast
    calls stable — drift the model cannot predict, only audits catch."""
    churn = scenario.churn
    pending = set(churn.pending_churn())
    victims = [host for host in churn.hosts()
               if host.online and host.pool.cidr not in pending]
    killed = victims[:int(len(victims) * share)]
    for host in killed:
        churn.take_offline(host)
    return len(killed)


def _measure(scale, seed, delta=None, shards=1, observe=False,
             spike=False):
    scenario = build_scenario(ScenarioConfig(scale=scale, seed=seed,
                                             loss_rate=0.0))
    if observe:
        obs = Observability(clock=scenario.network.clock, seed=seed)
        obs.install(scenario.network)
    perf = PerfRegistry()
    campaign = scenario.new_campaign(verify=False, shards=shards,
                                     perf=perf, delta=delta)
    start = time.perf_counter()
    killed = 0
    if not spike:
        campaign.run(WEEKS)
    else:
        for week in range(WEEKS):
            if week == SPIKE_WEEK:
                killed = _spike(scenario, SPIKE_KILL_SHARE)
            campaign.run_week(force_full=(delta is not None
                                          and week == WEEKS - 1))
    elapsed = time.perf_counter() - start
    weekly_probes = [snapshot.result.probes_sent
                     for snapshot in campaign.snapshots]
    return {
        "scenario": scenario,
        "campaign": campaign,
        "recorder": scenario.network.recorder,
        "weekly_probes": weekly_probes,
        "total_probes": sum(weekly_probes),
        "responders_first": len(campaign.first().result.responders),
        "responders_last": len(campaign.last().result.responders),
        "spiked_hosts": killed,
        "seconds": round(elapsed, 4),
        "delta_totals": delta_summary(campaign.snapshots),
    }


def _week_modes(campaign):
    """Per-week scan mode: "full" or "delta" (full when delta is off)."""
    modes = []
    for snapshot in campaign.snapshots:
        mode = "full"
        for entry in snapshot.result.provenance:
            if entry.get("kind") == "delta" and entry.get("status") == "ok":
                mode = entry["mode"]
        modes.append(mode)
    return modes


def _survival(campaign):
    from repro.analysis import churn_survival
    return churn_survival(campaign.snapshots)


def _country_rows(run):
    from repro.analysis import country_fluctuation
    campaign, scenario = run["campaign"], run["scenario"]
    rows, __ = country_fluctuation(campaign.first().result,
                                   campaign.last().result,
                                   scenario.geoip)
    return [row["country"] for row in rows]


def _public(run):
    return {key: value for key, value in run.items()
            if key not in ("scenario", "campaign", "recorder")}


def check(condition, message):
    if not condition:
        print("FAIL: %s" % message, file=sys.stderr)
        return 1
    print("ok: %s" % message, file=sys.stderr)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=int, default=20000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="smaller world (CI smoke)")
    parser.add_argument("--out", default="BENCH_delta.json")
    args = parser.parse_args(argv)
    scale = 60000 if args.quick else args.scale
    delta = DeltaConfig(full_sweep_every=FULL_SWEEP_EVERY)

    failures = 0
    print("delta campaign @ scale 1:%d seed %d, %d weeks"
          % (scale, args.seed, WEEKS), file=sys.stderr)

    print("baseline (full sweep every week)...", file=sys.stderr)
    baseline = _measure(scale, args.seed, delta=None)
    print("differential campaign...", file=sys.stderr)
    differential = _measure(scale, args.seed, delta=delta)

    modes = _week_modes(differential["campaign"])
    delta_probes = [probes for probes, mode
                    in zip(differential["weekly_probes"], modes)
                    if mode == "delta"]
    full_week_probes = baseline["total_probes"] / WEEKS
    mean_delta = (sum(delta_probes) / len(delta_probes)
                  if delta_probes else float("inf"))
    savings = full_week_probes / mean_delta if mean_delta else 0.0

    failures += check(baseline["responders_first"] > 0,
                      "baseline found %d responders"
                      % baseline["responders_first"])
    failures += check(
        len(delta_probes) >= WEEKS // 2,
        "steady state is differential (%d of %d weeks delta: %s)"
        % (len(delta_probes), WEEKS, modes))
    failures += check(
        mean_delta * SAVINGS_GATE <= full_week_probes,
        "delta weeks spend %.0f probes vs %.0f full (%.1fx savings, "
        "gate %.0fx)" % (mean_delta, full_week_probes, savings,
                         SAVINGS_GATE))
    totals = differential["delta_totals"]
    failures += check(
        totals["carried"] > 0 and totals["audited"] > 0,
        "verdicts carried (%d) under audit (%d probes)"
        % (totals["carried"], totals["audited"]))

    survival_full = _survival(baseline["campaign"])
    survival_delta = _survival(differential["campaign"])
    max_diff = max(abs(full_pct - delta_pct)
                   for (__, full_pct), (__, delta_pct)
                   in zip(survival_full, survival_delta))
    failures += check(
        max_diff <= SURVIVAL_TOLERANCE_PP,
        "Figure 2 survival within %.2fpp of baseline (tolerance %.1fpp)"
        % (max_diff, SURVIVAL_TOLERANCE_PP))

    countries_full = _country_rows(baseline)
    countries_delta = _country_rows(differential)
    failures += check(
        set(countries_full) == set(countries_delta)
        and countries_full[:3] == countries_delta[:3],
        "Table 1 stable: top-10 set equal, top-3 order %s preserved"
        % countries_full[:3])

    print("churn spike (%d%% of stable hosts killed at week %d)..."
          % (int(100 * SPIKE_KILL_SHARE), SPIKE_WEEK), file=sys.stderr)
    spiked = _measure(scale, args.seed, delta=delta, observe=True,
                      spike=True)
    spike_snapshot = spiked["campaign"].snapshots[SPIKE_WEEK]
    escalations = [entry for entry in spike_snapshot.result.provenance
                   if entry.get("status") in ("delta_full_sweep",
                                              "delta_escalated")]
    failures += check(
        escalations,
        "spike escalated automatically (%s) after killing %d hosts"
        % (sorted({entry["status"] for entry in escalations}),
           spiked["spiked_hosts"]))
    failures += check(
        spike_snapshot.result.probes_sent * SAVINGS_GATE
        > full_week_probes,
        "escalation actually re-probed (%d probes at the spike week)"
        % spike_snapshot.result.probes_sent)

    recorder = spiked["recorder"]
    delta_events = recorder.event_counts.get("delta", 0)
    unattributed = [cause for cause in recorder.cause_counts
                    if not cause.startswith(DELTA_CAUSE_PREFIX)]
    failures += check(
        delta_events > 0 and not unattributed,
        "100%% delta:* attribution (%d delta events, causes: %s)"
        % (delta_events, sorted(recorder.cause_counts)))

    report = {
        "scale": scale,
        "seed": args.seed,
        "weeks": WEEKS,
        "savings_gate": SAVINGS_GATE,
        "survival_tolerance_pp": SURVIVAL_TOLERANCE_PP,
        "baseline": _public(baseline),
        "differential": _public(differential),
        "spiked": _public(spiked),
        "week_modes": modes,
        "mean_delta_week_probes": round(mean_delta, 1),
        "full_week_probes": round(full_week_probes, 1),
        "probe_savings": round(savings, 2),
        "max_survival_diff_pp": round(max_diff, 3),
        "top_countries_full": countries_full,
        "top_countries_delta": countries_delta,
        "spike_escalations": sorted({entry["status"]
                                     for entry in escalations}),
        "delta_events_attributed": delta_events,
        "passed": failures == 0,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out, file=sys.stderr)

    if failures:
        print("%d delta gate(s) failed" % failures, file=sys.stderr)
        return 1
    print("delta passed: %.1fx probe savings, %.2fpp max survival drift"
          % (savings, max_diff), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
