"""Ablation: linkage choice for the hierarchical clustering (§3.6).

The paper groups "similar instances using average linkage".  This
ablation clusters the same labeled corpus with average, single, and
complete linkage: single linkage is prone to chaining unrelated pages
together (fewer, dirtier clusters), complete linkage to shattering
families (more clusters); average linkage balances both.
"""

from benchmarks.test_ablation_distance import (
    THRESHOLD,
    build_corpus,
    purity,
)
from repro.core.clustering import hierarchical_cluster
from repro.core.distance import PageDistance
from repro.core.features import extract_features


def test_ablation_linkage(benchmark):
    corpus = build_corpus()
    families = [family for family, __ in corpus]
    profiles = [extract_features(html) for __, html in corpus]
    distance = PageDistance()

    def run_all():
        results = {}
        for linkage in ("average", "single", "complete"):
            clusters, dendrogram = hierarchical_cluster(
                profiles, distance, THRESHOLD, linkage=linkage)
            results[linkage] = (clusters, dendrogram)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("Linkage ablation (%d pages, 6 families, threshold %.2f)"
          % (len(corpus), THRESHOLD))
    stats = {}
    for linkage, (clusters, dendrogram) in results.items():
        stats[linkage] = {"clusters": len(clusters),
                          "purity": purity(clusters, families),
                          "merges": len(dendrogram)}
        print("  %-9s clusters=%2d  purity=%.2f  merges=%d"
              % (linkage, len(clusters), stats[linkage]["purity"],
                 stats[linkage]["merges"]))

    # Average linkage (the paper's choice) keeps families pure.
    assert stats["average"]["purity"] >= 0.9
    # Single linkage merges at least as eagerly as average; complete
    # linkage merges at most as eagerly.
    assert stats["single"]["clusters"] <= stats["average"]["clusters"]
    assert stats["complete"]["clusters"] >= stats["average"]["clusters"]
    # Average linkage is no worse than the eager single linkage.
    assert stats["average"]["purity"] >= stats["single"]["purity"] - 1e-9
