"""Section 2.3: AS-level drops, dark networks, and the Top-25 mix.

Paper: the largest single drop is an Argentinean telco (-97.8%,
737,424 -> <17,000); a South Korean ISP goes from 434,567 to 22; 28
networks with >1,000 resolvers vanish entirely — 21 were blocking the
scanner (still visible to the verification scan), 5 deployed DNS
filtering, 2 shut everything down.  In the Feb-2015 Top 25 networks,
broadband/telecommunication providers host 76.4% of the resolvers.
"""

from repro.analysis.fluctuation import (
    EXPLANATION_BLOCKED,
    EXPLANATION_FILTERED,
    EXPLANATION_SHUTDOWN,
    as_fluctuation,
    broadband_share_of_top_networks,
    classify_dark_networks,
    dark_networks,
)
from benchmarks.conftest import paper_vs


def test_sec23_as_drops(scenario, campaign, benchmark):
    rows = benchmark(as_fluctuation, campaign.first().result,
                     campaign.last().result, scenario.as_registry, 10)

    print()
    print("Section 2.3 — largest per-AS resolver drops")
    for row in rows[:6]:
        print("  AS%-6d %-28s %-3s %6d -> %6d (%+.1f%%)" % (
            row["asn"], row["name"], row["country"], row["first"],
            row["last"], row["delta_pct"]))

    # The Argentinean telco's collapse must rank near the top.
    argentina = [row for row in rows if row["country"] == "AR"
                 and "Telecom" in row["name"]]
    assert argentina, "the AR telco should be among the biggest drops"
    print(paper_vs("AR telco change", -97.8, argentina[0]["delta_pct"]))
    assert argentina[0]["delta_pct"] < -70
    korea = [row for row in rows if row["country"] == "KR"]
    if korea:
        print(paper_vs("KR ISP change", -99.99, korea[0]["delta_pct"]))
        assert korea[0]["delta_pct"] < -90


def test_sec23_dark_network_classification(scenario, campaign, benchmark):
    dark = dark_networks(campaign.first().result, campaign.last().result,
                         scenario.as_registry, min_first=3)
    verification = campaign.last().verification
    assert verification is not None
    # Weekly per-AS history lets the classifier see whether a network
    # vanished abruptly (filtering) or wound down gradually (shutdown).
    from repro.analysis.fluctuation import weekly_as_history
    history = weekly_as_history(campaign.snapshots, scenario.as_registry,
                                asns=[row["asn"] for row in dark])
    threshold = max(2, scenario.config.scaled(100, minimum=2))
    classified = benchmark(
        classify_dark_networks, dark, verification,
        scenario.as_registry, history, threshold)

    print()
    print("Section 2.3 — dark-network attribution "
          "(paper: 21 blocked / 5 filtered / 2 shutdown)")
    by_explanation = {}
    for row in classified:
        by_explanation.setdefault(row["explanation"], []).append(row)
    for explanation, rows in sorted(by_explanation.items()):
        print("  %-16s %d networks: %s" % (
            explanation, len(rows),
            ", ".join(sorted(row["name"] for row in rows))[:70]))

    named_dark = {row["name"]: row["explanation"] for row in classified}
    blocked = [name for name, expl in named_dark.items()
               if expl == EXPLANATION_BLOCKED and "Blocked" in name]
    assert blocked, "scanner-blocked networks must be identified"
    assert any(expl in (EXPLANATION_FILTERED, EXPLANATION_SHUTDOWN)
               and "Filtered" in name or "Shutdown" in name
               for name, expl in named_dark.items())
    # Every deliberately-darkened scenario network is found dark.
    dark_names = set(named_dark)
    assert sum(1 for name in dark_names if name.startswith("DarkNet")) \
        >= 4


def test_sec22_verification_scan(scenario, campaign, benchmark):
    """§2.2 Scan Verification: a second-vantage scan finds resolvers the
    weekly scanner misses (networks blocking the primary source); the
    missed NOERROR population is under 1% of all identified resolvers."""
    weekly = campaign.last().result
    verification = campaign.last().verification
    assert verification is not None

    def missed():
        return verification.noerror - weekly.noerror

    missed_noerror = benchmark(missed)
    share = 100.0 * len(missed_noerror) / max(1, len(weekly.noerror))
    print()
    print(paper_vs("NOERROR resolvers missed by the weekly scan",
                   "<1% (145,304)", "%.2f%% (%d)" % (share,
                                                     len(missed_noerror))))
    # The missed resolvers live almost entirely in scanner-blocked
    # networks; ordinary packet loss contributes a few stragglers.
    blocked_names = {"DarkNet Blocked %d" % i for i in range(4)}
    in_blocked = sum(
        1 for ip in missed_noerror
        if (scenario.as_registry.lookup(ip) is not None
            and scenario.as_registry.lookup(ip).name in blocked_names))
    print(paper_vs("missed resolvers inside blocked networks",
                   "most", "%d/%d" % (in_blocked, len(missed_noerror))))
    # The rest are ordinary per-probe packet loss (the paper likewise
    # attributes part of its 692k verification-only responders to the
    # unreliability of single UDP probes).
    assert in_blocked >= 3, \
        "the scanner-blocked networks must appear in the gap"
    assert share < 5.0, "the verification scan gap must stay small"
    assert missed_noerror, \
        "scanner-blocked networks must be visible to the second vantage"


def test_sec23_top25_broadband_share(scenario, campaign, benchmark):
    share, rows = benchmark(broadband_share_of_top_networks,
                            campaign.last().result, scenario.as_registry,
                            25)
    print()
    print("Section 2.3 — Top-25 networks by resolver count")
    broadband_networks = sum(1 for row in rows
                             if row["kind"] == "broadband")
    print(paper_vs("broadband share of Top-25 resolvers", 76.4, share))
    print(paper_vs("broadband networks in Top 25", "20+/25",
                   "%d/25" % broadband_networks))
    assert 60 < share < 97, "broadband ISPs dominate the Top 25"
    assert 17 <= broadband_networks <= 24, \
        "a handful of hosting fleets share the Top 25"
