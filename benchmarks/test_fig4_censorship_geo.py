"""Figure 4: resolver countries for Facebook/Twitter/YouTube responses.

Paper: over all responses the resolvers spread across the globe (no
country above ~13%); isolating the *unexpected* responses, 83.6% of the
suspicious resolvers sit in China and 12.9% in Iran — together 96.5%.
(Note: the paper's absolute CN count is inflated by IP churn across the
multi-day scans; our single-snapshot share is lower but the ordering and
dominance are the reproducible shape.)
"""

from repro.analysis.manipulation import social_geography
from benchmarks.conftest import paper_vs

SOCIAL = ("facebook.com", "twitter.com", "youtube.com")


def test_fig4_censorship_geo(scenario, pipeline_reports, benchmark):
    report = pipeline_reports["Alexa"]
    fig4 = benchmark(social_geography, report, scenario.geoip, SOCIAL)

    all_shares = fig4.all_shares()
    unexpected = fig4.unexpected_shares()
    print()
    print("Figure 4a — all responses (top 6 countries)")
    for country, share in all_shares[:6]:
        print("  %-3s %5.1f%%" % (country, share))
    print("Figure 4b — unexpected responses (top 6 countries)")
    for country, share in unexpected[:6]:
        print("  %-3s %5.1f%%" % (country, share))
    unexpected_by_country = dict(unexpected)
    print(paper_vs("CN share of unexpected", 83.6,
                   unexpected_by_country.get("CN", 0.0)))
    print(paper_vs("IR share of unexpected", 12.9,
                   unexpected_by_country.get("IR", 0.0)))

    # Figure 4a: globally distributed, no single country dominates.
    assert all_shares[0][1] < 25
    # Figure 4b: China first by a wide margin, Iran second.
    assert unexpected[0][0] == "CN"
    assert unexpected[1][0] == "IR"
    assert unexpected_by_country["CN"] > 40
    assert unexpected_by_country["CN"] > \
        2 * unexpected_by_country["IR"]
    # CN + IR dominate the unexpected population.
    assert unexpected_by_country["CN"] + unexpected_by_country["IR"] > 70
