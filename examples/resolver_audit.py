#!/usr/bin/env python
"""Audit a single resolver: is it lying to its clients?

The downstream-user scenario: you suspect one DNS resolver of
manipulating answers.  This example points the paper's machinery at
individual resolvers — query the 13-category domain set, prefilter
against trusted resolution, fetch the content behind any unexpected
answers, and print a verdict per resolver.

Run:  python examples/resolver_audit.py [scale]
"""

import sys
from collections import Counter

from repro import ScenarioConfig, build_scenario
from repro.datasets import DOMAIN_SETS
from repro.resolvers.behaviors import (
    CensorshipBehavior,
    PhishingBehavior,
    ProxyAllBehavior,
)


def audit(scenario, pipeline, resolver_ip, domains):
    """Run the full chain against one resolver; return a verdict dict."""
    report = pipeline.run([resolver_ip], domains)
    labels = Counter()
    examples = {}
    for item in report.labeled:
        labels[(item.label, item.sublabel)] += 1
        examples.setdefault((item.label, item.sublabel),
                            item.capture.domain)
    stats = report.prefilter.stats()
    return {
        "resolver": resolver_ip,
        "observations": stats["observations"],
        "legitimate_share": stats["legitimate_share"],
        "suspicious": len(report.prefilter.unknown),
        "labels": labels,
        "examples": examples,
    }


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 30000
    scenario = build_scenario(ScenarioConfig(scale=scale, seed=7))
    pipeline = scenario.new_pipeline()
    domains = (list(DOMAIN_SETS["Banking"]) + list(DOMAIN_SETS["Alexa"])
               + list(DOMAIN_SETS["Adult"]) + list(DOMAIN_SETS["Gambling"])
               + list(DOMAIN_SETS["NX"]))

    # Pick a few interesting subjects: one honest resolver, one known
    # phisher, one proxy, one censor.
    population = scenario.population.resolvers
    subjects = []
    for node in population:
        kinds = {type(b) for b in node.behaviors}
        if not node.behaviors and len(subjects) < 1 \
                and node.response_mode == "normal":
            subjects.append(("honest", node.ip))
        elif PhishingBehavior in kinds and \
                all(tag != "phisher" for tag, __ in subjects):
            subjects.append(("phisher", node.ip))
        elif ProxyAllBehavior in kinds and \
                all(tag != "proxy" for tag, __ in subjects):
            subjects.append(("proxy", node.ip))
        elif CensorshipBehavior in kinds and \
                all(tag != "censor" for tag, __ in subjects):
            subjects.append(("censor", node.ip))
        if len(subjects) >= 4:
            break

    for tag, resolver_ip in subjects:
        verdict = audit(scenario, pipeline, resolver_ip, domains)
        print("\n=== %s (%s) ===" % (resolver_ip, tag))
        print("  responses: %d, prefiltered legitimate: %.1f%%, "
              "suspicious tuples: %d"
              % (verdict["observations"],
                 100 * verdict["legitimate_share"],
                 verdict["suspicious"]))
        if not verdict["labels"]:
            print("  verdict: CLEAN — all answers match trusted "
                  "resolution")
            continue
        print("  verdict: MANIPULATING")
        for (label, sublabel), count in verdict["labels"].most_common():
            name = label if not sublabel else "%s/%s" % (label, sublabel)
            print("    %-28s x%d (e.g. %s)"
                  % (name, count,
                     verdict["examples"][(label, sublabel)]))


if __name__ == "__main__":
    main()
