#!/usr/bin/env python
"""Long-term monitoring: resolver magnitude, churn, and dark networks.

Reproduces the paper's §2 longitudinal study in miniature: a weekly scan
campaign with a verification scan from a second vantage point, the
Figure-1 magnitude series, the Figure-2 churn survival curve, and the
attribution of networks that went completely dark.

Run:  python examples/churn_monitor.py [weeks] [scale]
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.analysis import (
    as_fluctuation,
    churn_survival,
    classify_dark_networks,
    country_fluctuation,
    magnitude_series,
    rir_fluctuation,
)
from repro.analysis.churn import format_survival
from repro.analysis.fluctuation import dark_networks
from repro.analysis.geography import format_fluctuation
from repro.analysis.magnitude import decline_ratio, format_series


def main():
    weeks = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 20000
    scenario = build_scenario(ScenarioConfig(scale=scale, seed=7))
    campaign = scenario.new_campaign(verify=True)
    print("Running %d weekly scans (scale 1:%d)..." % (weeks, scale))
    campaign.run(weeks, verify_last=True)

    print("\nFigure 1 — responding resolvers per week")
    series = magnitude_series(campaign.snapshots)
    print(format_series(series))
    print("decline ratio so far: %.2f" % decline_ratio(series))

    print("\nFigure 2 — cohort without IP churn")
    curve = churn_survival(campaign.snapshots)
    print(format_survival(curve[:6] + curve[-2:]))

    print("\nTable 1 — top countries")
    rows, top_share = country_fluctuation(
        campaign.first().result, campaign.last().result, scenario.geoip)
    print(format_fluctuation(rows, "Country"))
    print("top-10 share: %.1f%%" % top_share)

    print("\nTable 2 — per RIR")
    print(format_fluctuation(rir_fluctuation(
        campaign.first().result, campaign.last().result,
        scenario.geoip), "RIR"))

    print("\nLargest per-AS drops")
    for row in as_fluctuation(campaign.first().result,
                              campaign.last().result,
                              scenario.as_registry, top=5):
        print("  AS%-6d %-26s %-3s %6d -> %6d (%+.1f%%)"
              % (row["asn"], row["name"], row["country"], row["first"],
                 row["last"], row["delta_pct"]))

    dark = dark_networks(campaign.first().result, campaign.last().result,
                         scenario.as_registry, min_first=3)
    if dark:
        from repro.analysis import weekly_as_history
        history = weekly_as_history(campaign.snapshots,
                                    scenario.as_registry,
                                    asns=[row["asn"] for row in dark])
        print("\nNetworks gone completely dark, attributed via the "
              "verification scan:")
        for row in classify_dark_networks(
                dark, campaign.last().verification,
                scenario.as_registry, weekly_history=history,
                filtering_threshold=2):
            print("  %-28s %-3s %5d resolvers -> %s"
                  % (row["name"], row["country"], row["first"],
                     row["explanation"]))


if __name__ == "__main__":
    main()
