#!/usr/bin/env python
"""Does DNSSEC protect you from the Great Firewall?  (§5, executable.)

The paper's discussion argues that injected responses win the race
against legitimate ones, so DNSSEC only helps a client that (a) waits
for a correctly signed answer and (b) already knows the domain signs.
This example stages the race and prints what each client strategy
receives.

Run:  python examples/dnssec_vs_gfw.py
"""

from repro.authdns import HierarchyBuilder
from repro.authdns.dnssec import (
    DnssecValidator,
    STRATEGY_FIRST,
    STRATEGY_WAIT_SIGNED,
    ValidatingClient,
)
from repro.inetmodel import PrefixAllocator
from repro.netsim import GreatFirewall, Ipv4Network, Network, SimClock
from repro.resolvers import ResolutionService, ResolverNode

ZONE_KEY = "examples-zone-key"


def main():
    network = Network(SimClock(), seed=17)
    allocator = PrefixAllocator()
    infra = allocator.allocate(16)
    builder = HierarchyBuilder(network, infra)

    signed = builder.register_domain("signed.example",
                                     {"signed.example": ["198.18.0.5"]})
    signed.sign_with(ZONE_KEY)
    builder.register_domain("unsigned.example",
                            {"unsigned.example": ["198.18.0.6"]})

    network.add_middlebox(GreatFirewall(
        [Ipv4Network("110.0.0.0/16")],
        ["signed.example", "unsigned.example"], seed=5))

    service = ResolutionService(builder.hierarchy.root_ips,
                                infra.address_at(50000))
    resolver = ResolverNode("110.0.0.10", resolution_service=service,
                            gfw_immune=True)
    network.register(resolver)

    validator = DnssecValidator({"signed.example": ZONE_KEY})
    print("Resolver behind the firewall: %s" % resolver.ip)
    print("True addresses: signed.example=198.18.0.5, "
          "unsigned.example=198.18.0.6\n")
    for strategy in (STRATEGY_FIRST, STRATEGY_WAIT_SIGNED):
        client = ValidatingClient(network, infra.address_at(50001),
                                  validator=validator,
                                  strategy=strategy)
        print("strategy = %s" % strategy)
        for domain in ("signed.example", "unsigned.example"):
            addresses, authenticated = client.query(resolver.ip, domain)
            truth = {"signed.example": "198.18.0.5",
                     "unsigned.example": "198.18.0.6"}[domain]
            verdict = ("OK (authentic)" if addresses == [truth]
                       else "POISONED -> %s" % (addresses or "no answer"))
            print("  %-18s %-28s signed-valid=%s"
                  % (domain, verdict, authenticated))
        print()
    print("Conclusion: only wait-for-signed protects, and only for the")
    print("domain the client KNOWS deploys DNSSEC — the paper's point")
    print("about why <1% global DNSSEC coverage left clients exposed.")


if __name__ == "__main__":
    main()
