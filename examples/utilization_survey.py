#!/usr/bin/env python
"""Are open resolvers actually used?  The §2.6 cache-snooping survey.

Snoops the caches of discovered resolvers with non-recursive NS queries
for 15 TLDs, hourly over 36 simulated hours, and classifies each
resolver's TTL trace: in use (entries re-added by real clients after
expiry), frequently used (re-added within five seconds), idle, TTL
anomalies, and so on.

Run:  python examples/utilization_survey.py [sample] [scale]
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.analysis import classify_trace, utilization_summary
from repro.analysis.utilization import format_utilization
from repro.datasets import SNOOPING_TLDS
from repro.scanner import CacheSnoopingProber


def main():
    sample = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 20000
    scenario = build_scenario(ScenarioConfig(scale=scale, seed=7))
    campaign = scenario.new_campaign(verify=False)
    resolvers = sorted(campaign.run_week().result.noerror)[:sample]
    print("Snooping %d resolvers for 36 hours (15 TLDs, hourly)..."
          % len(resolvers))

    prober = CacheSnoopingProber(scenario.network, scenario.scanner_ip,
                                 SNOOPING_TLDS, interval_minutes=60,
                                 duration_hours=36)
    traces = prober.run(resolvers)
    summary = utilization_summary(traces)
    print()
    print(format_utilization(summary))

    # Show one in-use resolver's TTL trace for a single TLD, the raw
    # signal behind the classification.
    for trace in traces:
        cls, detail = classify_trace(trace)
        if cls == "in-use":
            tld = next(iter(trace.observations))
            print("\nSample TTL trace (%s, TLD .%s):"
                  % (trace.resolver_ip, tld))
            for timestamp, value in trace.observations[tld][:10]:
                print("  t=%5.1fh  ttl=%s"
                      % ((timestamp - trace.observations[tld][0][0])
                         / 3600.0, value))
            break


if __name__ == "__main__":
    main()
