#!/usr/bin/env python
"""Quickstart: build a simulated Internet, scan it, classify resolvers.

Builds a small paper-calibrated world, runs one Internet-wide IPv4 DNS
scan, fingerprints the discovered resolvers (software + devices), and
runs the manipulation-classification pipeline over the Banking domain
set — the whole study in miniature, in about a minute.

Run:  python examples/quickstart.py [scale]
"""

import sys
from collections import Counter

from repro import ScenarioConfig, build_scenario
from repro.analysis import software_table, device_table
from repro.analysis.software import format_software_table
from repro.analysis.devices import format_device_table
from repro.datasets import DOMAIN_SETS
from repro.scanner import BannerGrabber, ChaosScanner, FingerprintMatcher


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    print("Building a 1:%d-scale simulated Internet..." % scale)
    scenario = build_scenario(ScenarioConfig(scale=scale, seed=7))
    print("  %d hosts on the network, %d resolvers built"
          % (scenario.network.node_count,
             len(scenario.population.resolvers)))

    print("\n[1] Internet-wide IPv4 DNS scan (LFSR-permuted)")
    campaign = scenario.new_campaign(verify=False)
    snapshot = campaign.run_week()
    counts = snapshot.result.counts()
    print("  probes sent: %d" % snapshot.result.probes_sent)
    print("  responders:  %(all)d  (NOERROR %(noerror)d, REFUSED "
          "%(refused)d, SERVFAIL %(servfail)d)" % counts)
    resolvers = sorted(snapshot.result.noerror)

    print("\n[2] CHAOS software fingerprinting (version.bind)")
    chaos = ChaosScanner(scenario.network, scenario.scanner_ip)
    print(format_software_table(software_table(chaos.scan(resolvers))))

    print("\n[3] TCP banner device fingerprinting")
    grabber = BannerGrabber(scenario.network, scenario.scanner_ip)
    banners = grabber.grab_all(resolvers)
    table = device_table(FingerprintMatcher().classify_all(banners),
                         total_scanned=len(resolvers))
    print(format_device_table(table))

    print("\n[4] Manipulation pipeline over the Banking domain set")
    pipeline = scenario.new_pipeline()
    report = pipeline.run(resolvers, list(DOMAIN_SETS["Banking"]))
    stats = report.prefilter.stats()
    print("  DNS responses analysed:   %d" % stats["observations"])
    print("  prefiltered legitimate:   %.1f%%"
          % (100 * stats["legitimate_share"]))
    print("  empty answers:            %.1f%%"
          % (100 * stats["empty_share"]))
    print("  unexpected (suspicious):  %.1f%%"
          % (100 * stats["unknown_share"]))
    print("  HTTP captures clustered into %d groups"
          % len(report.clusters))
    labels = Counter(l.label for l in report.labeled)
    for label, count in labels.most_common():
        print("    %-12s %d responses" % (label, count))
    print("  classified: %.1f%%" % (100 * report.classified_share()))


if __name__ == "__main__":
    main()
