#!/usr/bin/env python
"""Censorship study: who tampers with social, adult, and gambling domains.

Reproduces the paper's §4.2 censorship analysis end to end: scans for
open resolvers, queries them for censorship-prone domains, prefilters
legitimate answers, and breaks the suspicious remainder down by country
— including the Great Firewall's double-response artefact and the
Estonian-resolvers-pointing-at-Russian-infrastructure case.

Run:  python examples/censorship_study.py [scale]
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.analysis import censorship_coverage, social_geography
from repro.analysis.manipulation import (
    gfw_double_responses,
    legit_addresses_from_report,
)
from repro.core.labeling import LABEL_CENSORSHIP
from repro.datasets import DOMAIN_SETS

SOCIAL = ("facebook.com", "twitter.com", "youtube.com")


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    scenario = build_scenario(ScenarioConfig(scale=scale, seed=7))
    campaign = scenario.new_campaign(verify=False)
    resolvers = sorted(campaign.run_week().result.noerror)
    print("Scanning done: %d open resolvers to interrogate" % len(resolvers))

    print("\n--- Social networks (Facebook / Twitter / YouTube) ---")
    pipeline = scenario.new_pipeline()
    report = pipeline.run(resolvers, [d for d in DOMAIN_SETS["Alexa"]
                                      if d.name in SOCIAL])
    fig4 = social_geography(report, scenario.geoip, SOCIAL)
    print("All responses by resolver country (top 5):")
    for country, share in fig4.all_shares()[:5]:
        print("  %-3s %5.1f%%" % (country, share))
    print("UNEXPECTED responses by resolver country (top 5):")
    for country, share in fig4.unexpected_shares()[:5]:
        print("  %-3s %5.1f%%" % (country, share))

    cn = censorship_coverage(report, scenario.geoip, SOCIAL, "CN")
    print("Chinese resolvers with bogus answers: %.1f%% of %d"
          % (cn["coverage_pct"], cn["responders"]))
    gfw = gfw_double_responses(report, scenario.geoip,
                               legit_addresses_from_report(report))
    print("GFW double responses (forged first, genuine second): "
          "%.1f%% of Chinese resolvers" % gfw["share_pct"])

    print("\n--- Adult and gambling domains ---")
    adult_report = scenario.new_pipeline().run(
        resolvers, list(DOMAIN_SETS["Adult"]))
    gambling_report = scenario.new_pipeline().run(
        resolvers, list(DOMAIN_SETS["Gambling"]))
    for country, what, rep, domains in (
            ("ID", "adultfinder.com", adult_report, ["adultfinder.com"]),
            ("TR", "youporn.com", adult_report, ["youporn.com"]),
            ("GR", "gambling", gambling_report,
             [d.name for d in DOMAIN_SETS["Gambling"]]),
            ("BE", "gambling", gambling_report,
             [d.name for d in DOMAIN_SETS["Gambling"]]),
            ("MN", "adult", adult_report,
             [d.name for d in DOMAIN_SETS["Adult"]])):
        coverage = censorship_coverage(rep, scenario.geoip, domains,
                                       country)
        print("  %s blocks %-16s %5.1f%% of its %d resolvers"
              % (country, what, coverage["coverage_pct"],
                 coverage["responders"]))

    # Estonian resolvers answering with Russian landing pages.
    russian_landing = set(scenario.landing_ips["RU"])
    ee_hits = [l for l in gambling_report.labeled
               if l.label == LABEL_CENSORSHIP
               and scenario.geoip.country(l.capture.resolver_ip) == "EE"]
    if ee_hits:
        on_ru = sum(1 for l in ee_hits if l.capture.ip in russian_landing)
        print("  EE gambling censorship answers: %d, of which %d point "
              "at Russian censorship IPs" % (len(ee_hits), on_ru))

    print("\nA censorship landing page as the pipeline sees it:")
    example = next((l.capture for l in adult_report.labeled
                    if l.label == LABEL_CENSORSHIP), None)
    if example is not None:
        body = example.body or ""
        start = body.find("This website has been blocked")
        print("  ...%s..." % body[start:start + 110])


if __name__ == "__main__":
    main()
