"""Shim for legacy editable installs in offline environments without the
``wheel`` package (``pip install -e . --no-build-isolation``)."""

from setuptools import setup

setup()
